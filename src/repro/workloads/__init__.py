"""Benchmark workloads: IQ1-IQ16 (IMDb), DQ1-DQ5 (DBLP), AQ* (Adult)."""

from . import adult_queries, dblp_queries, imdb_queries
from .registry import Workload, WorkloadRegistry

__all__ = [
    "Workload",
    "WorkloadRegistry",
    "adult_queries",
    "dblp_queries",
    "imdb_queries",
]
