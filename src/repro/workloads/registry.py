"""Uniform benchmark-workload records.

A :class:`Workload` ties one benchmark query (IQ1..IQ16, DQ1..DQ5, AQ*) to
the entity it targets, its ground-truth query over the original schema,
and the join/selection counts the paper reports for it (Figures 19/20).

Ground truth is evaluated by executing the query with the entity key
projected, so result comparison is robust to duplicate display names.
Queries outside the executor's expressiveness (IQ10's compound derived
condition) provide a programmatic ``evaluator`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Set

from ..relational.database import Database
from ..sql.ast import AnyQuery, ColumnRef, IntersectQuery, Query
from ..sql.executor import execute


@dataclass
class Workload:
    """One benchmark query with its ground truth."""

    qid: str
    dataset: str
    description: str
    entity_table: str
    entity_key: str
    display: str
    query: Optional[AnyQuery] = None
    """Ground-truth SPJ(A/I) query over the original schema, projecting
    ``(entity_key, display)``."""

    evaluator: Optional[Callable[[Database], Set[Any]]] = None
    """Programmatic ground truth for intents outside the query AST."""

    num_joins: int = 0
    num_selections: int = 0
    """The paper's reported J and S for context in reports."""

    def __post_init__(self) -> None:
        if self.query is None and self.evaluator is None:
            raise ValueError(f"{self.qid}: needs a query or an evaluator")

    def ground_truth_keys(self, db: Database) -> Set[Any]:
        """Entity keys of the intended result set."""
        if self.evaluator is not None:
            return set(self.evaluator(db))
        assert self.query is not None
        result = execute(db, self.query)
        return {row[0] for row in result.rows}

    def ground_truth_examples(self, db: Database) -> List[str]:
        """Display values of the intended result (for sampling examples).

        Values whose display string maps to several entities of which some
        are *not* in the result are kept — SQuID's disambiguation is
        expected to handle them (Fig. 12 relies on this).
        """
        keys = self.ground_truth_keys(db)
        relation = db.relation(self.entity_table)
        key_store = relation.column(self.entity_key)
        display_store = relation.column(self.display)
        by_key = dict(zip(key_store, display_store))
        return [by_key[k] for k in sorted(keys, key=repr) if by_key.get(k)]

    def cardinality(self, db: Database) -> int:
        """|Q(D)| of the ground truth."""
        return len(self.ground_truth_keys(db))


class WorkloadRegistry:
    """Named collection of workloads for one dataset."""

    def __init__(self, dataset: str, workloads: Sequence[Workload]) -> None:
        self.dataset = dataset
        self._by_id = {w.qid: w for w in workloads}
        if len(self._by_id) != len(workloads):
            raise ValueError("duplicate workload ids")

    def extend(self, workloads: Iterable[Workload]) -> None:
        """Register additional workloads (e.g. synthetic scenarios
        merging into a registry); duplicate ids raise ``ValueError``."""
        for workload in workloads:
            if workload.qid in self._by_id:
                raise ValueError(f"duplicate workload id {workload.qid!r}")
            self._by_id[workload.qid] = workload

    def get(self, qid: str) -> Workload:
        """One workload by id (raises KeyError)."""
        return self._by_id[qid]

    def all(self) -> List[Workload]:
        """All workloads in insertion order."""
        return list(self._by_id.values())

    def ids(self) -> List[str]:
        """All workload ids."""
        return list(self._by_id)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())
