"""Randomized Adult benchmark queries (Figure 22 protocol).

The paper "generated 20 queries, randomizing the attributes and predicate
values, ranging the number of selection predicates (2 to 7) and the result
cardinality (8 to 1404 tuples)".  We follow the same protocol: a seeded
sampler draws conjunctive queries over the Adult attributes, sampling
categorical equality predicates and numeric ranges from the data itself,
and keeps those whose cardinality lands inside the target band.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..relational.database import Database
from ..sql.ast import ColumnRef, Op, Predicate, Query, TableRef
from ..sql.executor import execute
from ..datasets.adult import ATTRIBUTE_COLUMNS
from ..datasets.seeds import make_rng
from ..relational.types import ColumnType
from .registry import Workload, WorkloadRegistry

CATEGORICAL = [n for n, t in ATTRIBUTE_COLUMNS if t is ColumnType.TEXT]
NUMERIC = [n for n, t in ATTRIBUTE_COLUMNS if t is ColumnType.INT]


def _sample_predicate(
    rng: np.random.Generator,
    db: Database,
    attribute: str,
) -> Optional[Predicate]:
    column = ColumnRef("adult", attribute)
    values = [v for v in db.relation("adult").column(attribute) if v is not None]
    if not values:
        return None
    if attribute in CATEGORICAL:
        value = values[int(rng.integers(0, len(values)))]
        return Predicate(column, Op.EQ, value)
    ordered = sorted(values)
    lo_idx = int(rng.integers(0, len(ordered)))
    width = int(rng.integers(1, max(2, len(ordered) // 4)))
    hi_idx = min(len(ordered) - 1, lo_idx + width)
    low, high = ordered[lo_idx], ordered[hi_idx]
    if low == high:
        return Predicate(column, Op.EQ, low)
    return Predicate(column, Op.BETWEEN, (low, high))


def generate_queries(
    db: Database,
    count: int = 20,
    seed: int = 2024,
    min_cardinality: int = 8,
    max_cardinality: int = 1500,
    max_attempts: int = 4000,
) -> WorkloadRegistry:
    """Sample ``count`` Adult queries within the cardinality band."""
    rng = make_rng(seed, "adult-queries")
    attributes = CATEGORICAL + NUMERIC
    workloads: List[Workload] = []
    attempts = 0
    while len(workloads) < count and attempts < max_attempts:
        attempts += 1
        n_preds = int(rng.integers(2, 8))
        chosen = rng.choice(len(attributes), size=n_preds, replace=False)
        predicates = []
        for idx in chosen:
            pred = _sample_predicate(rng, db, attributes[int(idx)])
            if pred is not None:
                predicates.append(pred)
        if len(predicates) < 2:
            continue
        query = Query(
            select=(ColumnRef("adult", "id"), ColumnRef("adult", "name")),
            tables=(TableRef("adult"),),
            predicates=tuple(predicates),
        )
        cardinality = len(execute(db, query))
        if not (min_cardinality <= cardinality <= max_cardinality):
            continue
        qid = f"AQ{len(workloads) + 1}"
        workloads.append(
            Workload(
                qid=qid,
                dataset="adult",
                description=f"random conjunctive query ({len(predicates)} preds)",
                entity_table="adult",
                entity_key="id",
                display="name",
                query=query,
                num_joins=0,
                num_selections=sum(p.atom_count() for p in predicates),
            )
        )
    if len(workloads) < count:
        raise RuntimeError(
            f"only sampled {len(workloads)}/{count} queries in the band "
            f"[{min_cardinality}, {max_cardinality}]"
        )
    return WorkloadRegistry("adult", workloads)
