"""The 16 IMDb benchmark queries (Figure 19) over the synthetic IMDb.

Each IQ keeps the intent and structural shape of the paper's query (join
count, selection count, aggregation); constants reference the planted
entities of :mod:`repro.datasets.imdb`.  IQ7 ("all movie genres", a pure
projection with no selection) is realised as "all persons" because our
metadata treats ``genre`` as a dimension, preserving the phenomenon the
paper discusses — a PJ query whose example set shares no significant
property.  IQ10's intent (more than 10 *Russian movies released after
2010*) cannot be expressed as a single SPJ(A) query — exactly why it
falls outside SQuID's search space — so its ground truth is programmatic.
"""

from __future__ import annotations

from typing import Any, Dict, Set

from ..relational.database import Database
from ..sql.ast import (
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)
from .registry import Workload, WorkloadRegistry


def col(table: str, column: str) -> ColumnRef:
    return ColumnRef(table, column)


def _person_select():
    return (col("person", "id"), col("person", "name"))


def _movie_select():
    return (col("movie", "id"), col("movie", "title"))


def _movies_of_person(person_name: str, role: str | None = None) -> Query:
    predicates = [Predicate(col("person", "name"), Op.EQ, person_name)]
    joins = [
        JoinCondition(col("castinfo", "person_id"), col("person", "id")),
        JoinCondition(col("castinfo", "movie_id"), col("movie", "id")),
    ]
    tables = [TableRef("movie"), TableRef("castinfo"), TableRef("person")]
    if role is not None:
        tables.append(TableRef("roletype"))
        joins.append(
            JoinCondition(col("castinfo", "role_id"), col("roletype", "id"))
        )
        predicates.append(Predicate(col("roletype", "name"), Op.EQ, role))
    return Query(
        select=_movie_select(),
        tables=tuple(tables),
        joins=tuple(joins),
        predicates=tuple(predicates),
    )


def _movie_genre_block(genre: str) -> Query:
    return Query(
        select=_movie_select(),
        tables=(TableRef("movie"), TableRef("movietogenre"), TableRef("genre")),
        joins=(
            JoinCondition(col("movietogenre", "movie_id"), col("movie", "id")),
            JoinCondition(col("movietogenre", "genre_id"), col("genre", "id")),
        ),
        predicates=(Predicate(col("genre", "name"), Op.EQ, genre),),
    )


def _iq2_block(title: str) -> Query:
    """Actors of one movie (used as an INTERSECT block for the trilogy)."""
    return Query(
        select=_person_select(),
        tables=(TableRef("person"), TableRef("castinfo"), TableRef("movie")),
        joins=(
            JoinCondition(col("castinfo", "person_id"), col("person", "id")),
            JoinCondition(col("castinfo", "movie_id"), col("movie", "id")),
        ),
        predicates=(Predicate(col("movie", "title"), Op.EQ, title),),
    )


def _iq10_evaluator(db: Database) -> Set[Any]:
    """Actors with > 10 Russian movies released after 2010 (compound)."""
    country_rel = db.relation("country")
    russia = next(
        country_rel.value(rid, "id")
        for rid in country_rel.row_ids()
        if country_rel.value(rid, "name") == "Russia"
    )
    russian_movies = {
        mid
        for mid, cid in zip(
            db.relation("movietocountry").column("movie_id"),
            db.relation("movietocountry").column("country_id"),
        )
        if cid == russia
    }
    movie = db.relation("movie")
    years = dict(zip(movie.column("id"), movie.column("year")))
    qualifying = {m for m in russian_movies if years[m] > 2010}
    counts: Dict[Any, int] = {}
    cast = db.relation("castinfo")
    for pid, mid in zip(cast.column("person_id"), cast.column("movie_id")):
        if mid in qualifying:
            counts[pid] = counts.get(pid, 0) + 1
    return {pid for pid, count in counts.items() if count > 10}


def build_registry() -> WorkloadRegistry:
    """All 16 IMDb workloads."""
    person = dict(entity_table="person", entity_key="id", display="name")
    movie = dict(entity_table="movie", entity_key="id", display="title")
    workloads = [
        Workload(
            qid="IQ1",
            dataset="imdb",
            description="Entire cast of Pulp Fiction",
            query=Query(
                select=_person_select(),
                tables=(TableRef("person"), TableRef("castinfo"), TableRef("movie")),
                joins=(
                    JoinCondition(col("castinfo", "person_id"), col("person", "id")),
                    JoinCondition(col("castinfo", "movie_id"), col("movie", "id")),
                ),
                predicates=(
                    Predicate(col("movie", "title"), Op.EQ, "Pulp Fiction"),
                ),
            ),
            num_joins=3,
            num_selections=1,
            **person,
        ),
        Workload(
            qid="IQ2",
            dataset="imdb",
            description="Actors who appeared in all of the LOTR trilogy",
            query=IntersectQuery(
                (
                    _iq2_block("The Lord of the Rings: The Fellowship of the Ring"),
                    _iq2_block("The Lord of the Rings: The Two Towers"),
                    _iq2_block("The Lord of the Rings: The Return of the King"),
                )
            ),
            num_joins=8,
            num_selections=7,
            **person,
        ),
        Workload(
            qid="IQ3",
            dataset="imdb",
            description="Canadian actresses born after 1970",
            query=Query(
                select=_person_select(),
                tables=(
                    TableRef("person"),
                    TableRef("country"),
                    TableRef("castinfo"),
                    TableRef("roletype"),
                ),
                joins=(
                    JoinCondition(col("person", "country_id"), col("country", "id")),
                    JoinCondition(col("castinfo", "person_id"), col("person", "id")),
                    JoinCondition(col("castinfo", "role_id"), col("roletype", "id")),
                ),
                predicates=(
                    Predicate(col("country", "name"), Op.EQ, "Canada"),
                    Predicate(col("person", "gender"), Op.EQ, "Female"),
                    Predicate(col("person", "birth_year"), Op.GE, 1971),
                    Predicate(col("roletype", "name"), Op.EQ, "Actress"),
                ),
            ),
            num_joins=3,
            num_selections=4,
            **person,
        ),
        Workload(
            qid="IQ4",
            dataset="imdb",
            description="Sci-Fi movies released in USA in 2016",
            query=Query(
                select=_movie_select(),
                tables=(
                    TableRef("movie"),
                    TableRef("movietogenre"),
                    TableRef("genre"),
                    TableRef("movietocountry"),
                    TableRef("country"),
                ),
                joins=(
                    JoinCondition(col("movietogenre", "movie_id"), col("movie", "id")),
                    JoinCondition(col("movietogenre", "genre_id"), col("genre", "id")),
                    JoinCondition(
                        col("movietocountry", "movie_id"), col("movie", "id")
                    ),
                    JoinCondition(
                        col("movietocountry", "country_id"), col("country", "id")
                    ),
                ),
                predicates=(
                    Predicate(col("genre", "name"), Op.EQ, "Sci-Fi"),
                    Predicate(col("country", "name"), Op.EQ, "USA"),
                    Predicate(col("movie", "year"), Op.EQ, 2016),
                ),
            ),
            num_joins=5,
            num_selections=3,
            **movie,
        ),
        Workload(
            qid="IQ5",
            dataset="imdb",
            description="Movies Tom Cruise and Nicole Kidman acted together",
            query=Query(
                select=_movie_select(),
                tables=(
                    TableRef("movie"),
                    TableRef("castinfo", "c1"),
                    TableRef("person", "p1"),
                    TableRef("castinfo", "c2"),
                    TableRef("person", "p2"),
                ),
                joins=(
                    JoinCondition(col("c1", "movie_id"), col("movie", "id")),
                    JoinCondition(col("c1", "person_id"), col("p1", "id")),
                    JoinCondition(col("c2", "movie_id"), col("movie", "id")),
                    JoinCondition(col("c2", "person_id"), col("p2", "id")),
                ),
                predicates=(
                    Predicate(col("p1", "name"), Op.EQ, "Tom Cruise"),
                    Predicate(col("p2", "name"), Op.EQ, "Nicole Kidman"),
                ),
            ),
            num_joins=5,
            num_selections=2,
            **movie,
        ),
        Workload(
            qid="IQ6",
            dataset="imdb",
            description="Movies directed by Clint Eastwood",
            query=_movies_of_person("Clint Eastwood", role="Director"),
            num_joins=4,
            num_selections=2,
            **movie,
        ),
        Workload(
            qid="IQ7",
            dataset="imdb",
            description="All persons (pure projection, no selection)",
            query=Query(select=_person_select(), tables=(TableRef("person"),)),
            num_joins=1,
            num_selections=0,
            **person,
        ),
        Workload(
            qid="IQ8",
            dataset="imdb",
            description="Movies by Al Pacino",
            query=_movies_of_person("Al Pacino"),
            num_joins=4,
            num_selections=2,
            **movie,
        ),
        Workload(
            qid="IQ9",
            dataset="imdb",
            description="Indian actors who acted in at least 15 USA movies",
            query=Query(
                select=_person_select(),
                tables=(
                    TableRef("person"),
                    TableRef("country", "pc"),
                    TableRef("castinfo"),
                    TableRef("movietocountry"),
                    TableRef("country", "mc"),
                ),
                joins=(
                    JoinCondition(col("person", "country_id"), col("pc", "id")),
                    JoinCondition(col("castinfo", "person_id"), col("person", "id")),
                    JoinCondition(
                        col("movietocountry", "movie_id"), col("castinfo", "movie_id")
                    ),
                    JoinCondition(
                        col("movietocountry", "country_id"), col("mc", "id")
                    ),
                ),
                predicates=(
                    Predicate(col("pc", "name"), Op.EQ, "India"),
                    Predicate(col("mc", "name"), Op.EQ, "USA"),
                ),
                group_by=(col("person", "id"),),
                having=HavingCount(Op.GE, 15),
            ),
            num_joins=6,
            num_selections=4,
            **person,
        ),
        Workload(
            qid="IQ10",
            dataset="imdb",
            description="Actors with more than 10 Russian movies after 2010",
            evaluator=_iq10_evaluator,
            num_joins=6,
            num_selections=4,
            **person,
        ),
        Workload(
            qid="IQ11",
            dataset="imdb",
            description="USA Horror-Drama movies in 2005-2008",
            query=Query(
                select=_movie_select(),
                tables=(
                    TableRef("movie"),
                    TableRef("movietogenre", "mg1"),
                    TableRef("genre", "g1"),
                    TableRef("movietogenre", "mg2"),
                    TableRef("genre", "g2"),
                    TableRef("movietocountry"),
                    TableRef("country"),
                ),
                joins=(
                    JoinCondition(col("mg1", "movie_id"), col("movie", "id")),
                    JoinCondition(col("mg1", "genre_id"), col("g1", "id")),
                    JoinCondition(col("mg2", "movie_id"), col("movie", "id")),
                    JoinCondition(col("mg2", "genre_id"), col("g2", "id")),
                    JoinCondition(
                        col("movietocountry", "movie_id"), col("movie", "id")
                    ),
                    JoinCondition(
                        col("movietocountry", "country_id"), col("country", "id")
                    ),
                ),
                predicates=(
                    Predicate(col("g1", "name"), Op.EQ, "Horror"),
                    Predicate(col("g2", "name"), Op.EQ, "Drama"),
                    Predicate(col("country", "name"), Op.EQ, "USA"),
                    Predicate(col("movie", "year"), Op.BETWEEN, (2005, 2008)),
                ),
            ),
            num_joins=7,
            num_selections=5,
            **movie,
        ),
        Workload(
            qid="IQ12",
            dataset="imdb",
            description="Movies produced by Walt Disney Pictures",
            query=Query(
                select=_movie_select(),
                tables=(
                    TableRef("movie"),
                    TableRef("movietocompany"),
                    TableRef("company"),
                ),
                joins=(
                    JoinCondition(
                        col("movietocompany", "movie_id"), col("movie", "id")
                    ),
                    JoinCondition(
                        col("movietocompany", "company_id"), col("company", "id")
                    ),
                ),
                predicates=(
                    Predicate(
                        col("company", "name"), Op.EQ, "Walt Disney Pictures"
                    ),
                ),
            ),
            num_joins=3,
            num_selections=1,
            **movie,
        ),
        Workload(
            qid="IQ13",
            dataset="imdb",
            description="Animation movies produced by Pixar",
            query=Query(
                select=_movie_select(),
                tables=(
                    TableRef("movie"),
                    TableRef("movietocompany"),
                    TableRef("company"),
                    TableRef("movietogenre"),
                    TableRef("genre"),
                ),
                joins=(
                    JoinCondition(
                        col("movietocompany", "movie_id"), col("movie", "id")
                    ),
                    JoinCondition(
                        col("movietocompany", "company_id"), col("company", "id")
                    ),
                    JoinCondition(col("movietogenre", "movie_id"), col("movie", "id")),
                    JoinCondition(col("movietogenre", "genre_id"), col("genre", "id")),
                ),
                predicates=(
                    Predicate(col("company", "name"), Op.EQ, "Pixar"),
                    Predicate(col("genre", "name"), Op.EQ, "Animation"),
                ),
            ),
            num_joins=5,
            num_selections=2,
            **movie,
        ),
        Workload(
            qid="IQ14",
            dataset="imdb",
            description="Sci-Fi movies acted by Patrick Stewart",
            query=Query(
                select=_movie_select(),
                tables=(
                    TableRef("movie"),
                    TableRef("castinfo"),
                    TableRef("person"),
                    TableRef("movietogenre"),
                    TableRef("genre"),
                ),
                joins=(
                    JoinCondition(col("castinfo", "movie_id"), col("movie", "id")),
                    JoinCondition(col("castinfo", "person_id"), col("person", "id")),
                    JoinCondition(col("movietogenre", "movie_id"), col("movie", "id")),
                    JoinCondition(col("movietogenre", "genre_id"), col("genre", "id")),
                ),
                predicates=(
                    Predicate(col("person", "name"), Op.EQ, "Patrick Stewart"),
                    Predicate(col("genre", "name"), Op.EQ, "Sci-Fi"),
                ),
            ),
            num_joins=6,
            num_selections=3,
            **movie,
        ),
        Workload(
            qid="IQ15",
            dataset="imdb",
            description="Japanese Animation movies",
            query=Query(
                select=_movie_select(),
                tables=(
                    TableRef("movie"),
                    TableRef("movietogenre"),
                    TableRef("genre"),
                    TableRef("movietocountry"),
                    TableRef("country"),
                ),
                joins=(
                    JoinCondition(col("movietogenre", "movie_id"), col("movie", "id")),
                    JoinCondition(col("movietogenre", "genre_id"), col("genre", "id")),
                    JoinCondition(
                        col("movietocountry", "movie_id"), col("movie", "id")
                    ),
                    JoinCondition(
                        col("movietocountry", "country_id"), col("country", "id")
                    ),
                ),
                predicates=(
                    Predicate(col("genre", "name"), Op.EQ, "Animation"),
                    Predicate(col("country", "name"), Op.EQ, "Japan"),
                ),
            ),
            num_joins=5,
            num_selections=2,
            **movie,
        ),
        Workload(
            qid="IQ16",
            dataset="imdb",
            description="Disney movies with more than 15 American cast members",
            query=Query(
                select=_movie_select(),
                tables=(
                    TableRef("movie"),
                    TableRef("movietocompany"),
                    TableRef("company"),
                    TableRef("castinfo"),
                    TableRef("person"),
                    TableRef("country"),
                ),
                joins=(
                    JoinCondition(
                        col("movietocompany", "movie_id"), col("movie", "id")
                    ),
                    JoinCondition(
                        col("movietocompany", "company_id"), col("company", "id")
                    ),
                    JoinCondition(col("castinfo", "movie_id"), col("movie", "id")),
                    JoinCondition(col("castinfo", "person_id"), col("person", "id")),
                    JoinCondition(col("person", "country_id"), col("country", "id")),
                ),
                predicates=(
                    Predicate(
                        col("company", "name"), Op.EQ, "Walt Disney Pictures"
                    ),
                    Predicate(col("country", "name"), Op.EQ, "USA"),
                ),
                group_by=(col("movie", "id"),),
                having=HavingCount(Op.GE, 16),
            ),
            num_joins=5,
            num_selections=3,
            **movie,
        ),
    ]
    return WorkloadRegistry("imdb", workloads)
