"""The 5 DBLP benchmark queries (Figure 20) over the synthetic DBLP."""

from __future__ import annotations

from ..sql.ast import (
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)
from .registry import Workload, WorkloadRegistry


def col(table: str, column: str) -> ColumnRef:
    return ColumnRef(table, column)


def _author_select():
    return (col("author", "id"), col("author", "name"))


def _pub_select():
    return (col("publication", "id"), col("publication", "title"))


def _dq2_block(venue: str) -> Query:
    """Authors with >= 10 publications in one venue."""
    return Query(
        select=_author_select(),
        tables=(
            TableRef("author"),
            TableRef("authortopub"),
            TableRef("publication"),
            TableRef("venue"),
        ),
        joins=(
            JoinCondition(col("authortopub", "author_id"), col("author", "id")),
            JoinCondition(col("authortopub", "pub_id"), col("publication", "id")),
            JoinCondition(col("publication", "venue_id"), col("venue", "id")),
        ),
        predicates=(Predicate(col("venue", "name"), Op.EQ, venue),),
        group_by=(col("author", "id"),),
        having=HavingCount(Op.GE, 10),
    )


def _dq4_block(author_name: str) -> Query:
    """Publications of one named author (INTERSECT block)."""
    return Query(
        select=_pub_select(),
        tables=(
            TableRef("publication"),
            TableRef("authortopub"),
            TableRef("author"),
        ),
        joins=(
            JoinCondition(col("authortopub", "pub_id"), col("publication", "id")),
            JoinCondition(col("authortopub", "author_id"), col("author", "id")),
        ),
        predicates=(Predicate(col("author", "name"), Op.EQ, author_name),),
    )


def _dq5_block(country: str) -> Query:
    """Publications having at least one author from ``country``."""
    return Query(
        select=_pub_select(),
        tables=(
            TableRef("publication"),
            TableRef("authortopub"),
            TableRef("author"),
            TableRef("country"),
        ),
        joins=(
            JoinCondition(col("authortopub", "pub_id"), col("publication", "id")),
            JoinCondition(col("authortopub", "author_id"), col("author", "id")),
            JoinCondition(col("author", "country_id"), col("country", "id")),
        ),
        predicates=(Predicate(col("country", "name"), Op.EQ, country),),
    )


def _dq1_block(institution: str) -> Query:
    """Authors affiliated with one institution (INTERSECT block)."""
    return Query(
        select=_author_select(),
        tables=(
            TableRef("author"),
            TableRef("authortoinstitution"),
            TableRef("institution"),
        ),
        joins=(
            JoinCondition(
                col("authortoinstitution", "author_id"), col("author", "id")
            ),
            JoinCondition(
                col("authortoinstitution", "institution_id"),
                col("institution", "id"),
            ),
        ),
        predicates=(Predicate(col("institution", "name"), Op.EQ, institution),),
    )


def build_registry() -> WorkloadRegistry:
    """All 5 DBLP workloads."""
    author = dict(entity_table="author", entity_key="id", display="name")
    pub = dict(entity_table="publication", entity_key="id", display="title")
    workloads = [
        Workload(
            qid="DQ1",
            dataset="dblp",
            description=(
                "Authors affiliated with both U Washington and "
                "Microsoft Research Redmond"
            ),
            query=IntersectQuery(
                (
                    _dq1_block("University of Washington"),
                    _dq1_block("Microsoft Research Redmond"),
                )
            ),
            num_joins=5,
            num_selections=2,
            **author,
        ),
        Workload(
            qid="DQ2",
            dataset="dblp",
            description=(
                "Authors with at least 10 SIGMOD and at least 10 VLDB papers"
            ),
            query=IntersectQuery((_dq2_block("SIGMOD"), _dq2_block("VLDB"))),
            num_joins=8,
            num_selections=4,
            **author,
        ),
        Workload(
            qid="DQ3",
            dataset="dblp",
            description="SIGMOD publications in 2010-2012",
            query=Query(
                select=_pub_select(),
                tables=(TableRef("publication"), TableRef("venue")),
                joins=(
                    JoinCondition(
                        col("publication", "venue_id"), col("venue", "id")
                    ),
                ),
                predicates=(
                    Predicate(col("venue", "name"), Op.EQ, "SIGMOD"),
                    Predicate(
                        col("publication", "year"), Op.BETWEEN, (2010, 2012)
                    ),
                ),
            ),
            num_joins=3,
            num_selections=3,
            **pub,
        ),
        Workload(
            qid="DQ4",
            dataset="dblp",
            description=(
                "Publications Jiawei Han, Xifeng Yan, and Philip S. Yu "
                "published together"
            ),
            query=IntersectQuery(
                (
                    _dq4_block("Jiawei Han"),
                    _dq4_block("Xifeng Yan"),
                    _dq4_block("Philip S. Yu"),
                )
            ),
            num_joins=7,
            num_selections=3,
            **pub,
        ),
        Workload(
            qid="DQ5",
            dataset="dblp",
            description="Publications between USA and Canada",
            query=IntersectQuery((_dq5_block("USA"), _dq5_block("Canada"))),
            num_joins=5,
            num_selections=2,
            **pub,
        ),
    ]
    return WorkloadRegistry("dblp", workloads)
