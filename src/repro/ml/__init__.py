"""Learning substrate: feature encoding, decision tree, random forest.

scikit-learn is unavailable in the offline reproduction environment, so
the estimators the evaluation needs (TALOS's decision tree, the
PU-learning DT/RF variants of Figure 16) are implemented from scratch on
numpy.
"""

from .decision_tree import DecisionTreeClassifier, TreeNode
from .encoding import (
    FeatureColumn,
    FeatureMatrix,
    encode_categorical,
    encode_numeric,
    encode_table,
)
from .random_forest import RandomForestClassifier

__all__ = [
    "DecisionTreeClassifier",
    "FeatureColumn",
    "FeatureMatrix",
    "RandomForestClassifier",
    "TreeNode",
    "encode_categorical",
    "encode_numeric",
    "encode_table",
]
