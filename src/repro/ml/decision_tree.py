"""CART-style decision tree classifier on mixed-type features.

Built from scratch (no scikit-learn offline): gini impurity, numeric
threshold splits (``x <= t``), and one-vs-rest categorical equality splits
(``x == c``), which keeps high-cardinality attributes (movie titles)
usable without one-hot encoding.  The fitted tree exposes its structure so
the TALOS baseline can extract root-to-leaf predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from .encoding import FeatureColumn, FeatureMatrix


@dataclass
class TreeNode:
    """One node of a fitted tree."""

    counts: np.ndarray
    """Per-class sample counts at this node."""

    feature: int = -1
    kind: str = ""  # "numeric" | "categorical"
    threshold: float = 0.0
    category: int = 0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def prediction(self) -> int:
        """Majority class at this node."""
        return int(np.argmax(self.counts))

    @property
    def probabilities(self) -> np.ndarray:
        """Class distribution at this node."""
        total = self.counts.sum()
        if total == 0:
            return np.ones_like(self.counts, dtype=float) / len(self.counts)
        return self.counts / total

    def condition_str(self, columns: Sequence[FeatureColumn]) -> str:
        """Human-readable split condition (left-branch form)."""
        col = columns[self.feature]
        if self.kind == "numeric":
            return f"{col.name} <= {self.threshold:g}"
        return f"{col.name} = {col.decode(self.category)!r}"


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


@dataclass
class _Split:
    feature: int
    kind: str
    threshold: float = 0.0
    category: int = 0
    impurity: float = float("inf")
    left_mask: Optional[np.ndarray] = None


class DecisionTreeClassifier:
    """Binary/multiclass CART with gini impurity."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 6,
        min_samples_leaf: int = 2,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(random_state)
        self.root: Optional[TreeNode] = None
        self.n_classes = 0
        self._columns: List[FeatureColumn] = []

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, X: FeatureMatrix, y: Sequence[int]) -> "DecisionTreeClassifier":
        """Fit the tree; ``y`` holds class indices 0..k-1."""
        y_arr = np.asarray(y, dtype=np.int64)
        if X.num_rows != y_arr.shape[0]:
            raise ValueError("X and y disagree on the number of rows")
        if X.num_rows == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_classes = int(y_arr.max()) + 1 if y_arr.size else 1
        self._columns = X.columns
        indices = np.arange(X.num_rows)
        self.root = self._build(X, y_arr, indices, depth=0)
        return self

    def _class_counts(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=self.n_classes).astype(float)

    def _build(
        self, X: FeatureMatrix, y: np.ndarray, indices: np.ndarray, depth: int
    ) -> TreeNode:
        y_here = y[indices]
        counts = self._class_counts(y_here)
        node = TreeNode(counts=counts)
        if (
            depth >= self.max_depth
            or indices.size < self.min_samples_split
            or _gini(counts) == 0.0
        ):
            return node
        split = self._best_split(X, y_here, indices)
        if split is None:
            return node
        left_idx = indices[split.left_mask]
        right_idx = indices[~split.left_mask]
        if (
            left_idx.size < self.min_samples_leaf
            or right_idx.size < self.min_samples_leaf
        ):
            return node
        node.feature = split.feature
        node.kind = split.kind
        node.threshold = split.threshold
        node.category = split.category
        node.left = self._build(X, y, left_idx, depth + 1)
        node.right = self._build(X, y, right_idx, depth + 1)
        return node

    def _candidate_features(self, n: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n:
            return np.arange(n)
        return self._rng.choice(n, size=self.max_features, replace=False)

    def _best_split(
        self, X: FeatureMatrix, y_here: np.ndarray, indices: np.ndarray
    ) -> Optional[_Split]:
        best: Optional[_Split] = None
        parent_impurity = _gini(self._class_counts(y_here))
        for feature in self._candidate_features(X.num_features):
            col = X.columns[int(feature)]
            values = col.values[indices]
            if col.kind == "numeric":
                split = self._best_numeric(int(feature), values, y_here)
            else:
                split = self._best_categorical(int(feature), values, y_here)
            if split is not None and (best is None or split.impurity < best.impurity):
                best = split
        if best is None or best.impurity >= parent_impurity - 1e-12:
            return None
        return best

    def _best_numeric(
        self, feature: int, values: np.ndarray, y: np.ndarray
    ) -> Optional[_Split]:
        finite = ~np.isnan(values)
        if finite.sum() < 2:
            return None
        order = np.argsort(values, kind="stable")
        ordered_values = values[order]
        ordered_y = y[order]
        n = values.shape[0]
        n_finite = int(finite.sum())
        # one-hot prefix counts per class over the sorted order
        onehot = np.zeros((n, self.n_classes))
        onehot[np.arange(n), ordered_y] = 1.0
        prefix = np.cumsum(onehot, axis=0)
        total = prefix[-1]
        # candidate cut positions: between distinct finite values
        distinct = np.nonzero(
            np.diff(ordered_values[:n_finite]) > 0
        )[0]
        if distinct.size == 0:
            return None
        best_impurity, best_pos = float("inf"), -1
        for pos in distinct:
            left = prefix[pos]
            right = total - left
            nl, nr = left.sum(), right.sum()
            impurity = (nl * _gini(left) + nr * _gini(right)) / n
            if impurity < best_impurity:
                best_impurity = impurity
                best_pos = int(pos)
        if best_pos < 0:
            return None
        threshold = float(
            (ordered_values[best_pos] + ordered_values[best_pos + 1]) / 2.0
        )
        left_mask = values <= threshold  # NaN compares False -> right branch
        return _Split(
            feature=feature,
            kind="numeric",
            threshold=threshold,
            impurity=best_impurity,
            left_mask=left_mask,
        )

    def _best_categorical(
        self, feature: int, values: np.ndarray, y: np.ndarray
    ) -> Optional[_Split]:
        n = values.shape[0]
        categories = np.unique(values)
        categories = categories[categories != 0]  # 0 encodes missing
        if categories.size < 1:
            return None
        total = self._class_counts(y)
        best_impurity, best_cat, best_mask = float("inf"), -1, None
        for cat in categories:
            mask = values == cat
            if not mask.any() or mask.all():
                continue
            left = self._class_counts(y[mask])
            right = total - left
            impurity = (mask.sum() * _gini(left) + (~mask).sum() * _gini(right)) / n
            if impurity < best_impurity:
                best_impurity = impurity
                best_cat = int(cat)
                best_mask = mask
        if best_mask is None:
            return None
        return _Split(
            feature=feature,
            kind="categorical",
            category=best_cat,
            impurity=best_impurity,
            left_mask=best_mask,
        )

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _leaf_for_row(self, X: FeatureMatrix, row: int) -> TreeNode:
        assert self.root is not None, "tree is not fitted"
        node = self.root
        while not node.is_leaf:
            col = X.columns[node.feature]
            value = col.values[row]
            if node.kind == "numeric":
                go_left = bool(value <= node.threshold)  # NaN -> False
            else:
                go_left = bool(value == node.category)
            node = node.left if go_left else node.right  # type: ignore[assignment]
        return node

    def predict(self, X: FeatureMatrix) -> np.ndarray:
        """Majority-class predictions."""
        return np.array(
            [self._leaf_for_row(X, row).prediction for row in range(X.num_rows)],
            dtype=np.int64,
        )

    def predict_proba(self, X: FeatureMatrix) -> np.ndarray:
        """Per-class probabilities (leaf class distributions)."""
        return np.vstack(
            [self._leaf_for_row(X, row).probabilities for row in range(X.num_rows)]
        )

    # ------------------------------------------------------------------
    # structure inspection (used by the TALOS baseline)
    # ------------------------------------------------------------------
    def positive_paths(self, positive_class: int = 1) -> List[List[str]]:
        """Root-to-leaf condition lists for leaves predicting ``positive_class``.

        Each path is a conjunction; the set of paths is the disjunction the
        tree encodes.  Right-branch steps are rendered with negated
        comparisons (``>`` / ``!=``).
        """
        assert self.root is not None, "tree is not fitted"
        paths: List[List[str]] = []

        def walk(node: TreeNode, conditions: List[str]) -> None:
            if node.is_leaf:
                if node.prediction == positive_class and node.counts.sum() > 0:
                    paths.append(list(conditions))
                return
            col = self._columns[node.feature]
            if node.kind == "numeric":
                walk(node.left, conditions + [f"{col.name} <= {node.threshold:g}"])
                walk(node.right, conditions + [f"{col.name} > {node.threshold:g}"])
            else:
                value = col.decode(node.category)
                walk(node.left, conditions + [f"{col.name} = {value!r}"])
                walk(node.right, conditions + [f"{col.name} != {value!r}"])

        walk(self.root, [])
        return paths

    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""

        def count(node: Optional[TreeNode]) -> int:
            if node is None:
                return 0
            return 1 + count(node.left) + count(node.right)

        return count(self.root)
