"""Random forest on top of the from-scratch decision tree.

Bootstrap-aggregated CART trees with per-split feature subsampling;
``predict_proba`` averages leaf distributions, which the Elkan–Noto
estimator relies on.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .decision_tree import DecisionTreeClassifier
from .encoding import FeatureMatrix


class RandomForestClassifier:
    """Bagged decision trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 15,
        max_depth: int = 12,
        min_samples_split: int = 6,
        min_samples_leaf: int = 2,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(random_state)
        self.trees: List[DecisionTreeClassifier] = []
        self.n_classes = 0

    def fit(self, X: FeatureMatrix, y: Sequence[int]) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples."""
        y_arr = np.asarray(y, dtype=np.int64)
        n = X.num_rows
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_classes = int(y_arr.max()) + 1 if y_arr.size else 1
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(math.sqrt(X.num_features)))
        self.trees = []
        for i in range(self.n_estimators):
            sample = self._rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(self._rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X.take(sample), y_arr[sample])
            # bootstrap may miss classes; align class count
            tree.n_classes = max(tree.n_classes, self.n_classes)
            self.trees.append(tree)
        return self

    def predict_proba(self, X: FeatureMatrix) -> np.ndarray:
        """Average per-class probabilities over the ensemble."""
        if not self.trees:
            raise ValueError("forest is not fitted")
        total = np.zeros((X.num_rows, self.n_classes))
        for tree in self.trees:
            proba = tree.predict_proba(X)
            if proba.shape[1] < self.n_classes:
                padded = np.zeros((proba.shape[0], self.n_classes))
                padded[:, : proba.shape[1]] = proba
                proba = padded
            total += proba
        return total / len(self.trees)

    def predict(self, X: FeatureMatrix) -> np.ndarray:
        """Majority-probability predictions."""
        return np.argmax(self.predict_proba(X), axis=1)
