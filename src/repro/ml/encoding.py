"""Mixed-type feature encoding for the learning substrate.

Classifiers operate on :class:`FeatureMatrix`: a list of typed columns.
Numeric columns hold float arrays (NaN for missing); categorical columns
hold integer codes with a category table (code 0 is reserved for missing),
which lets the decision tree do one-vs-rest equality splits on high-
cardinality attributes without one-hot blow-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class FeatureColumn:
    """One encoded feature."""

    name: str
    kind: str  # "numeric" | "categorical"
    values: np.ndarray
    categories: Tuple[Any, ...] = ()
    """For categorical columns: code -> original value (code 0 = missing)."""

    def __post_init__(self) -> None:
        if self.kind not in ("numeric", "categorical"):
            raise ValueError(f"unknown column kind {self.kind!r}")

    def decode(self, code: int) -> Any:
        """Original value for a categorical code."""
        return self.categories[code]

    def take(self, indices: np.ndarray) -> "FeatureColumn":
        """Column restricted to a row subset."""
        return FeatureColumn(
            name=self.name,
            kind=self.kind,
            values=self.values[indices],
            categories=self.categories,
        )


@dataclass
class FeatureMatrix:
    """A set of aligned feature columns."""

    columns: List[FeatureColumn]

    def __post_init__(self) -> None:
        lengths = {len(col.values) for col in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged feature columns: {lengths}")

    @property
    def num_rows(self) -> int:
        return len(self.columns[0].values) if self.columns else 0

    @property
    def num_features(self) -> int:
        return len(self.columns)

    def take(self, indices: np.ndarray) -> "FeatureMatrix":
        """Row subset of the whole matrix."""
        return FeatureMatrix([col.take(indices) for col in self.columns])

    def column(self, name: str) -> FeatureColumn:
        """Look up a column by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(name)


def encode_numeric(name: str, values: Sequence[Any]) -> FeatureColumn:
    """Encode a numeric attribute (None -> NaN)."""
    arr = np.array(
        [float(v) if v is not None else np.nan for v in values], dtype=float
    )
    return FeatureColumn(name=name, kind="numeric", values=arr)


def encode_categorical(
    name: str,
    values: Sequence[Any],
    categories: Optional[Sequence[Any]] = None,
) -> FeatureColumn:
    """Encode a categorical attribute as integer codes (0 = missing)."""
    if categories is None:
        seen: Dict[Any, int] = {}
        for v in values:
            if v is not None and v not in seen:
                seen[v] = len(seen) + 1
        table: Tuple[Any, ...] = (None,) + tuple(seen)
        lookup = seen
    else:
        table = (None,) + tuple(categories)
        lookup = {v: i + 1 for i, v in enumerate(categories)}
    codes = np.array(
        [lookup.get(v, 0) if v is not None else 0 for v in values], dtype=np.int64
    )
    return FeatureColumn(name=name, kind="categorical", values=codes, categories=table)


def encode_table(
    rows: Sequence[Sequence[Any]],
    names: Sequence[str],
    kinds: Sequence[str],
) -> FeatureMatrix:
    """Encode row tuples into a :class:`FeatureMatrix` column-wise."""
    if len(names) != len(kinds):
        raise ValueError("names and kinds must align")
    columns: List[FeatureColumn] = []
    for i, (name, kind) in enumerate(zip(names, kinds)):
        values = [row[i] for row in rows]
        if kind == "numeric":
            columns.append(encode_numeric(name, values))
        else:
            columns.append(encode_categorical(name, values))
    return FeatureMatrix(columns)
