"""Synthetic dataset substrate: IMDb-like, DBLP-like, and Adult generators.

Each module exposes ``generate(size)`` returning a fully-loaded
:class:`~repro.relational.Database` plus ``metadata()`` returning the αDB
annotations for that schema.  Variants (sm/bs/bd IMDb, replicated Adult)
and the Section 7.4 case-study lists live alongside.
"""

from . import adult, case_studies, dblp, imdb
from .adult import AdultSize
from .case_studies import CaseStudy
from .dblp import DblpSize
from .imdb import ImdbSize

__all__ = [
    "AdultSize",
    "CaseStudy",
    "DblpSize",
    "ImdbSize",
    "adult",
    "case_studies",
    "dblp",
    "imdb",
]
