"""Synthetic DBLP-like bibliography database (14 relations).

Mirrors the paper's DBLP subset: authors, publications in top venues over
2000-2015, affiliations, research areas, keywords, and awards.  Planted
structure backs the five DQ benchmark queries of Figure 20:

* DQ1 — authors affiliated with both "University of Washington" and
  "Microsoft Research Redmond";
* DQ2 — prolific database authors with >= 10 SIGMOD and >= 10 VLDB papers;
* DQ3 — SIGMOD publications in 2010-2012;
* DQ4 — publications co-authored by Jiawei Han, Xifeng Yan, and
  Philip S. Yu together;
* DQ5 — publications with authors from both USA and Canada.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.metadata import AdbMetadata, DimensionSpec, EntitySpec
from ..relational import ColumnDef, ColumnType, Database, ForeignKey, TableSchema
from . import names
from .seeds import make_rng, sample_unique_names, zipf_weights

INT = ColumnType.INT
TEXT = ColumnType.TEXT

VENUES = [
    ("SIGMOD", "conference", "Databases"),
    ("VLDB", "conference", "Databases"),
    ("PODS", "conference", "Databases"),
    ("ICDE", "conference", "Databases"),
    ("EDBT", "conference", "Databases"),
    ("CIDR", "conference", "Databases"),
    ("TODS", "journal", "Databases"),
    ("VLDBJ", "journal", "Databases"),
    ("KDD", "conference", "Data Mining"),
    ("ICDM", "conference", "Data Mining"),
    ("WSDM", "conference", "Data Mining"),
    ("ICML", "conference", "Machine Learning"),
    ("NeurIPS", "conference", "Machine Learning"),
    ("AAAI", "conference", "Artificial Intelligence"),
    ("IJCAI", "conference", "Artificial Intelligence"),
    ("ACL", "conference", "Natural Language Processing"),
    ("EMNLP", "conference", "Natural Language Processing"),
    ("SIGIR", "conference", "Information Retrieval"),
    ("WWW", "conference", "Web"),
    ("CHI", "conference", "Human-Computer Interaction"),
    ("SOSP", "conference", "Systems"),
    ("OSDI", "conference", "Systems"),
    ("NSDI", "conference", "Networking"),
    ("SIGCOMM", "conference", "Networking"),
    ("S&P", "conference", "Security"),
]
AREAS = [
    "Databases", "Data Mining", "Machine Learning",
    "Artificial Intelligence", "Natural Language Processing",
    "Information Retrieval", "Web", "Human-Computer Interaction",
    "Systems", "Networking", "Security",
]
COUNTRIES = [
    "USA", "Canada", "UK", "Germany", "France", "China", "India",
    "Switzerland", "Netherlands", "Israel", "Singapore", "Australia",
    "Italy", "South Korea", "Japan",
]
COUNTRY_WEIGHTS = [45, 7, 7, 6, 4, 8, 4, 3, 3, 3, 2, 3, 2, 2, 2]

INSTITUTIONS = [
    ("University of Washington", "USA"),
    ("Microsoft Research Redmond", "USA"),
    ("MIT", "USA"),
    ("Stanford University", "USA"),
    ("UC Berkeley", "USA"),
    ("Carnegie Mellon University", "USA"),
    ("University of Massachusetts Amherst", "USA"),
    ("University of Wisconsin-Madison", "USA"),
    ("Cornell University", "USA"),
    ("Georgia Tech", "USA"),
    ("University of Toronto", "Canada"),
    ("University of Waterloo", "Canada"),
    ("University of British Columbia", "Canada"),
    ("Simon Fraser University", "Canada"),
    ("University of Oxford", "UK"),
    ("University of Cambridge", "UK"),
    ("Imperial College London", "UK"),
    ("TU Munich", "Germany"),
    ("Max Planck Institute", "Germany"),
    ("INRIA", "France"),
    ("Tsinghua University", "China"),
    ("Peking University", "China"),
    ("IIT Bombay", "India"),
    ("ETH Zurich", "Switzerland"),
    ("CWI", "Netherlands"),
    ("Technion", "Israel"),
    ("NUS", "Singapore"),
    ("University of Melbourne", "Australia"),
    ("Politecnico di Milano", "Italy"),
    ("KAIST", "South Korea"),
    ("University of Tokyo", "Japan"),
]
AWARDS = [
    "Test of Time Award", "Best Paper Award", "ACM Fellow",
    "SIGMOD Contributions Award", "Dissertation Award",
]

PLANTED_AUTHORS = ["Jiawei Han", "Xifeng Yan", "Philip S. Yu"]


@dataclass(frozen=True)
class DblpSize:
    """Scale knobs of the DBLP generator."""

    authors: int = 800
    publications: int = 2600
    avg_authors_per_pub: float = 2.8
    ambiguity_rate: float = 0.02
    seed: int = 1337

    @classmethod
    def small(cls) -> "DblpSize":
        return cls(authors=300, publications=900)

    @classmethod
    def base(cls) -> "DblpSize":
        return cls()


def metadata() -> AdbMetadata:
    """αDB metadata for the DBLP schema."""
    return AdbMetadata(
        entities=[
            EntitySpec("author", "id", "name"),
            EntitySpec("publication", "id", "title"),
        ],
        dimensions=[
            DimensionSpec("venue", "id", "name"),
            DimensionSpec("venuetype", "id", "name"),
            DimensionSpec("area", "id", "name"),
            DimensionSpec("country", "id", "name"),
            DimensionSpec("institution", "id", "name"),
            DimensionSpec("keyword", "id", "name"),
            DimensionSpec("award", "id", "name"),
        ],
        property_attributes={
            "publication": ["year"],
        },
    )


def _schema(db: Database) -> None:
    """Create the 14 DBLP relations."""
    for name in ("venuetype", "area", "country", "keyword", "award"):
        db.create_table(
            TableSchema(
                name,
                [ColumnDef("id", INT, nullable=False), ColumnDef("name", TEXT)],
                primary_key="id",
            )
        )
    db.create_table(
        TableSchema(
            "venue",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("name", TEXT),
                ColumnDef("type_id", INT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("type_id", "venuetype", "id")],
        )
    )
    db.create_table(
        TableSchema(
            "venuetoarea",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("venue_id", INT),
                ColumnDef("area_id", INT),
            ],
            primary_key="id",
            foreign_keys=[
                ForeignKey("venue_id", "venue", "id"),
                ForeignKey("area_id", "area", "id"),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "institution",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("name", TEXT),
                ColumnDef("country_id", INT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("country_id", "country", "id")],
        )
    )
    db.create_table(
        TableSchema(
            "author",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("name", TEXT),
                ColumnDef("country_id", INT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("country_id", "country", "id")],
        )
    )
    db.create_table(
        TableSchema(
            "publication",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("title", TEXT),
                ColumnDef("year", INT),
                ColumnDef("venue_id", INT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("venue_id", "venue", "id")],
        )
    )
    db.create_table(
        TableSchema(
            "authortopub",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("author_id", INT),
                ColumnDef("pub_id", INT),
            ],
            primary_key="id",
            foreign_keys=[
                ForeignKey("author_id", "author", "id"),
                ForeignKey("pub_id", "publication", "id"),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "authortoinstitution",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("author_id", INT),
                ColumnDef("institution_id", INT),
            ],
            primary_key="id",
            foreign_keys=[
                ForeignKey("author_id", "author", "id"),
                ForeignKey("institution_id", "institution", "id"),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "pubtokeyword",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("pub_id", INT),
                ColumnDef("keyword_id", INT),
            ],
            primary_key="id",
            foreign_keys=[
                ForeignKey("pub_id", "publication", "id"),
                ForeignKey("keyword_id", "keyword", "id"),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "authortoaward",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("author_id", INT),
                ColumnDef("award_id", INT),
            ],
            primary_key="id",
            foreign_keys=[
                ForeignKey("author_id", "author", "id"),
                ForeignKey("award_id", "award", "id"),
            ],
        )
    )


def _pub_title(rng: np.random.Generator, used: set) -> str:
    for _ in range(50):
        adj = names.RESEARCH_TITLE_WORDS[
            int(rng.integers(0, len(names.RESEARCH_TITLE_WORDS)))
        ]
        topic = names.RESEARCH_TITLE_TOPICS[
            int(rng.integers(0, len(names.RESEARCH_TITLE_TOPICS)))
        ]
        title = f"{adj} {topic}"
        if rng.random() < 0.4:
            suffix = names.RESEARCH_TITLE_SUFFIXES[
                int(rng.integers(0, len(names.RESEARCH_TITLE_SUFFIXES)))
            ]
            title = f"{title} {suffix}"
        if title not in used:
            used.add(title)
            return title
    return title


def generate(size: Optional[DblpSize] = None) -> Database:
    """Generate the DBLP-like database (background + planted DQ data)."""
    size = size or DblpSize.base()
    db = Database("dblp")
    _schema(db)
    rng = make_rng(size.seed, "dblp")

    # --- dimensions ------------------------------------------------------
    venuetype_ids = {"conference": 1, "journal": 2}
    db.bulk_load("venuetype", [(v, k) for k, v in venuetype_ids.items()])
    area_ids = {name: i + 1 for i, name in enumerate(AREAS)}
    db.bulk_load("area", [(v, k) for k, v in area_ids.items()])
    country_ids = {name: i + 1 for i, name in enumerate(COUNTRIES)}
    db.bulk_load("country", [(v, k) for k, v in country_ids.items()])
    keyword_pool = names.KEYWORD_POOL[:80]
    keyword_ids = {name: i + 1 for i, name in enumerate(keyword_pool)}
    db.bulk_load("keyword", [(v, k) for k, v in keyword_ids.items()])
    award_ids = {name: i + 1 for i, name in enumerate(AWARDS)}
    db.bulk_load("award", [(v, k) for k, v in award_ids.items()])

    venue_ids: Dict[str, int] = {}
    venue_rows, vta_rows = [], []
    for i, (venue, vtype, area) in enumerate(VENUES):
        venue_ids[venue] = i + 1
        venue_rows.append((i + 1, venue, venuetype_ids[vtype]))
        vta_rows.append((i + 1, i + 1, area_ids[area]))
    db.bulk_load("venue", venue_rows)
    db.bulk_load("venuetoarea", vta_rows)

    institution_ids: Dict[str, int] = {}
    inst_rows = []
    for i, (inst, country) in enumerate(INSTITUTIONS):
        institution_ids[inst] = i + 1
        inst_rows.append((i + 1, inst, country_ids[country]))
    db.bulk_load("institution", inst_rows)

    # --- authors ----------------------------------------------------------
    n = size.authors
    author_names = sample_unique_names(
        rng,
        names.MALE_FIRST_NAMES + names.FEMALE_FIRST_NAMES,
        names.LAST_NAMES,
        n,
        size.ambiguity_rate,
    )
    planted = set(PLANTED_AUTHORS)
    country_probs = np.asarray(COUNTRY_WEIGHTS, dtype=float)
    country_probs = country_probs / country_probs.sum()
    author_rows = []
    author_country: List[str] = []
    for i in range(n):
        name = author_names[i]
        if name in planted:
            name = f"{name} Jr."
        country = COUNTRIES[int(rng.choice(len(COUNTRIES), p=country_probs))]
        author_rows.append((i + 1, name, country_ids[country]))
        author_country.append(country)
    # planted DQ4 authors
    for j, name in enumerate(PLANTED_AUTHORS):
        author_rows.append((n + 1 + j, name, country_ids["USA"]))
        author_country.append("USA")
    db.bulk_load("author", author_rows)
    planted_ids = [n + 1, n + 2, n + 3]
    total_authors = n + 3

    # affiliations: most authors 1, some 2; DQ1 group holds UW + MSR
    a2i_rows = []
    a2i_next = 1
    institutions = list(institution_ids)
    country_institutions: Dict[str, List[str]] = {}
    for inst, country in INSTITUTIONS:
        country_institutions.setdefault(country, []).append(inst)
    for aid in range(1, total_authors + 1):
        country = author_country[aid - 1]
        pool = country_institutions.get(country) or institutions
        inst = pool[int(rng.integers(0, len(pool)))]
        a2i_rows.append((a2i_next, aid, institution_ids[inst]))
        a2i_next += 1
        if rng.random() < 0.15:
            other = institutions[int(rng.integers(0, len(institutions)))]
            if other != inst:
                a2i_rows.append((a2i_next, aid, institution_ids[other]))
                a2i_next += 1
    # DQ1: 12 authors explicitly at both UW and MSR Redmond
    dq1_authors = list(rng.choice(np.arange(1, n + 1), size=12, replace=False))
    for aid in dq1_authors:
        for inst in ("University of Washington", "Microsoft Research Redmond"):
            a2i_rows.append((a2i_next, int(aid), institution_ids[inst]))
            a2i_next += 1
    db.bulk_load("authortoinstitution", a2i_rows)

    # awards: sparse
    award_rows = []
    award_next = 1
    for aid in range(1, total_authors + 1):
        if rng.random() < 0.06:
            award = AWARDS[int(rng.integers(0, len(AWARDS)))]
            award_rows.append((award_next, aid, award_ids[award]))
            award_next += 1
    db.bulk_load("authortoaward", award_rows)

    # --- publications -----------------------------------------------------
    # authors have a home venue-area; prolific DB authors get many DB papers
    activity = zipf_weights(total_authors, exponent=1.02)
    rng.shuffle(activity)
    # DQ2: make 14 authors prolific in both SIGMOD and VLDB
    dq2_authors = [int(a) for a in rng.choice(
        np.arange(1, n + 1), size=14, replace=False
    )]
    home_venue = [
        VENUES[int(rng.integers(0, len(VENUES)))][0]
        for _ in range(total_authors)
    ]

    used_titles: set = set()
    pub_rows, a2p_rows, p2k_rows = [], [], []
    a2p_next = p2k_next = 1
    pub_id = 0

    def add_pub(venue: str, year: int, authors: Sequence[int]) -> int:
        nonlocal pub_id, a2p_next, p2k_next
        pub_id += 1
        title = _pub_title(rng, used_titles)
        pub_rows.append((pub_id, title, year, venue_ids[venue]))
        for aid in dict.fromkeys(int(a) for a in authors):
            a2p_rows.append((a2p_next, aid, pub_id))
            a2p_next += 1
        for _ in range(int(rng.integers(1, 4))):
            kw = keyword_pool[int(rng.integers(0, len(keyword_pool)))]
            p2k_rows.append((p2k_next, pub_id, keyword_ids[kw]))
            p2k_next += 1
        return pub_id

    weights = activity / activity.sum()
    for _ in range(size.publications):
        lead = int(rng.choice(total_authors, p=weights)) + 1
        venue = home_venue[lead - 1] if rng.random() < 0.6 else (
            VENUES[int(rng.integers(0, len(VENUES)))][0]
        )
        year = int(rng.integers(2000, 2016))
        coauthors = [lead]
        k = max(1, int(rng.normal(size.avg_authors_per_pub, 1.2)))
        for _ in range(k - 1):
            coauthors.append(int(rng.choice(total_authors, p=weights)) + 1)
        add_pub(venue, year, coauthors)

    # DQ2 planted: 10-16 SIGMOD and 10-16 VLDB papers per prolific author
    for aid in dq2_authors:
        for venue in ("SIGMOD", "VLDB"):
            for _ in range(int(rng.integers(10, 17))):
                year = int(rng.integers(2000, 2016))
                coauthors = [aid]
                for _ in range(int(rng.integers(0, 3))):
                    coauthors.append(int(rng.choice(total_authors, p=weights)) + 1)
                add_pub(venue, year, coauthors)

    # DQ3 planted: ensure a healthy SIGMOD 2010-2012 slice
    for _ in range(60):
        year = int(rng.integers(2010, 2013))
        lead = int(rng.choice(total_authors, p=weights)) + 1
        add_pub("SIGMOD", year, [lead])

    # DQ4 planted: 8 joint papers of the three named authors
    for _ in range(8):
        venue = ("KDD", "ICDM", "ICDE")[int(rng.integers(0, 3))]
        year = int(rng.integers(2002, 2016))
        add_pub(venue, year, planted_ids)
    # solo / pairwise work so the triple is informative
    for aid in planted_ids:
        for _ in range(10):
            venue = ("KDD", "ICDM", "SIGIR")[int(rng.integers(0, 3))]
            add_pub(venue, int(rng.integers(2000, 2016)), [aid])

    # DQ5 planted: 25 USA-Canada collaborations
    usa_authors = [
        i + 1 for i, c in enumerate(author_country) if c == "USA"
    ]
    canada_authors = [
        i + 1 for i, c in enumerate(author_country) if c == "Canada"
    ]
    for _ in range(25):
        venue = VENUES[int(rng.integers(0, len(VENUES)))][0]
        a_us = usa_authors[int(rng.integers(0, len(usa_authors)))]
        a_ca = canada_authors[int(rng.integers(0, len(canada_authors)))]
        add_pub(venue, int(rng.integers(2000, 2016)), [a_us, a_ca])

    db.bulk_load("publication", pub_rows)
    db.bulk_load("authortopub", a2p_rows)
    db.bulk_load("pubtokeyword", p2k_rows)
    return db
