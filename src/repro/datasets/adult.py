"""Synthetic census-style Adult dataset (single relation, UCI schema).

The UCI Adult table has no name column; like the paper (whose Figure 22
queries SELECT DISTINCT name) we add a synthetic unique ``name`` per row so
examples can be provided by value.  Marginal distributions approximate the
UCI dataset: peaked hours-per-week at 40, mostly-zero capital gains/losses
with a heavy tail, a dominant native country, and correlated
education/income structure.

``replicate`` scales the table by an integer factor for the Fig. 16(b)
scalability experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.metadata import AdbMetadata, EntitySpec
from ..relational import ColumnDef, ColumnType, Database, TableSchema
from .seeds import make_rng

INT = ColumnType.INT
TEXT = ColumnType.TEXT

WORKCLASSES = [
    "Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
    "Local-gov", "State-gov", "Without-pay", "Never-worked",
]
WORKCLASS_WEIGHTS = [70, 8, 4, 3, 6, 4, 0.5, 0.5]

EDUCATIONS = [
    "Bachelors", "Some-college", "11th", "HS-grad", "Prof-school",
    "Assoc-acdm", "Assoc-voc", "9th", "7th-8th", "12th", "Masters",
    "1st-4th", "10th", "Doctorate", "5th-6th", "Preschool",
]
EDUCATION_WEIGHTS = [16, 22, 4, 32, 2, 3, 4, 2, 2, 1, 5, 1, 3, 1.5, 1, 0.5]

MARITAL_STATUSES = [
    "Married-civ-spouse", "Divorced", "Never-married", "Separated",
    "Widowed", "Married-spouse-absent", "Married-AF-spouse",
]
MARITAL_WEIGHTS = [46, 14, 33, 3, 3, 1, 0.2]

OCCUPATIONS = [
    "Tech-support", "Craft-repair", "Other-service", "Sales",
    "Exec-managerial", "Prof-specialty", "Handlers-cleaners",
    "Machine-op-inspct", "Adm-clerical", "Farming-fishing",
    "Transport-moving", "Priv-house-serv", "Protective-serv",
    "Armed-Forces",
]
OCCUPATION_WEIGHTS = [3, 13, 10, 11, 13, 13, 4, 6, 12, 3, 5, 0.5, 2, 0.2]

RELATIONSHIPS = [
    "Wife", "Own-child", "Husband", "Not-in-family", "Other-relative",
    "Unmarried",
]
RELATIONSHIP_WEIGHTS = [5, 15, 40, 26, 3, 11]

RACES = ["White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black"]
RACE_WEIGHTS = [85, 3, 1, 1, 10]

SEXES = ["Male", "Female"]
SEX_WEIGHTS = [67, 33]

NATIVE_COUNTRIES = [
    "United-States", "Mexico", "Philippines", "Germany", "Canada",
    "Puerto-Rico", "El-Salvador", "India", "Cuba", "England", "Jamaica",
    "South", "China", "Italy", "Dominican-Republic", "Vietnam",
    "Guatemala", "Japan", "Poland", "Columbia",
]
NATIVE_WEIGHTS = [
    89.5, 2.0, 0.6, 0.4, 0.4, 0.4, 0.3, 0.3, 0.3, 0.3, 0.25, 0.25, 0.25,
    0.22, 0.21, 0.2, 0.2, 0.2, 0.18, 0.18,
]

INCOMES = ["<=50K", ">50K"]


@dataclass(frozen=True)
class AdultSize:
    """Scale knobs of the Adult generator."""

    rows: int = 8000
    seed: int = 4242

    @classmethod
    def small(cls) -> "AdultSize":
        return cls(rows=2500)

    @classmethod
    def base(cls) -> "AdultSize":
        return cls()


def metadata() -> AdbMetadata:
    """αDB metadata for the single-relation Adult schema."""
    return AdbMetadata(
        entities=[EntitySpec("adult", "id", "name", derive_properties=False)],
        property_attributes={
            "adult": [
                "age", "workclass", "fnlwgt", "education", "educationnum",
                "maritalstatus", "occupation", "relationship", "race",
                "sex", "capitalgain", "capitalloss", "hoursperweek",
                "nativecountry", "income",
            ],
        },
    )


ATTRIBUTE_COLUMNS: List[Tuple[str, ColumnType]] = [
    ("age", INT),
    ("workclass", TEXT),
    ("fnlwgt", INT),
    ("education", TEXT),
    ("educationnum", INT),
    ("maritalstatus", TEXT),
    ("occupation", TEXT),
    ("relationship", TEXT),
    ("race", TEXT),
    ("sex", TEXT),
    ("capitalgain", INT),
    ("capitalloss", INT),
    ("hoursperweek", INT),
    ("nativecountry", TEXT),
    ("income", TEXT),
]


def _schema(db: Database) -> None:
    columns = [
        ColumnDef("id", INT, nullable=False),
        ColumnDef("name", TEXT, nullable=False),
    ] + [ColumnDef(name, ctype) for name, ctype in ATTRIBUTE_COLUMNS]
    db.create_table(TableSchema("adult", columns, primary_key="id"))


def _categorical(
    rng: np.random.Generator, values: Sequence[str], weights: Sequence[float], n: int
) -> List[str]:
    probs = np.asarray(weights, dtype=float)
    probs = probs / probs.sum()
    idx = rng.choice(len(values), size=n, p=probs)
    return [values[int(i)] for i in idx]


def generate(size: Optional[AdultSize] = None) -> Database:
    """Generate the Adult table with UCI-like marginals."""
    size = size or AdultSize.base()
    rng = make_rng(size.seed, "adult")
    n = size.rows

    ages = np.clip(rng.gamma(6.5, 6.0, size=n) + 17, 17, 90).astype(int)
    fnlwgt = np.clip(rng.lognormal(12.0, 0.45, size=n), 20_000, 900_000).astype(int)
    education = _categorical(rng, EDUCATIONS, EDUCATION_WEIGHTS, n)
    edu_num = {name: i + 1 for i, name in enumerate(EDUCATIONS)}
    workclass = _categorical(rng, WORKCLASSES, WORKCLASS_WEIGHTS, n)
    marital = _categorical(rng, MARITAL_STATUSES, MARITAL_WEIGHTS, n)
    occupation = _categorical(rng, OCCUPATIONS, OCCUPATION_WEIGHTS, n)
    relationship = _categorical(rng, RELATIONSHIPS, RELATIONSHIP_WEIGHTS, n)
    race = _categorical(rng, RACES, RACE_WEIGHTS, n)
    sex = _categorical(rng, SEXES, SEX_WEIGHTS, n)
    native = _categorical(rng, NATIVE_COUNTRIES, NATIVE_WEIGHTS, n)

    # capital gains/losses: mostly zero with a heavy positive tail
    gain = np.where(
        rng.random(n) < 0.08,
        np.clip(rng.lognormal(8.4, 0.9, size=n), 100, 99_999),
        0,
    ).astype(int)
    loss = np.where(
        rng.random(n) < 0.05,
        np.clip(rng.normal(1870, 320, size=n), 100, 4_400),
        0,
    ).astype(int)

    hours = np.clip(rng.normal(40, 11, size=n), 1, 99).astype(int)
    hours[rng.random(n) < 0.45] = 40  # the UCI spike at 40

    rows = []
    for i in range(n):
        edu = education[i]
        # income loosely correlated with education and hours
        p_high = 0.08 + 0.03 * edu_num[edu] + (0.1 if hours[i] > 45 else 0.0)
        income = ">50K" if rng.random() < min(0.75, p_high) else "<=50K"
        rows.append(
            (
                i + 1,
                f"Resident {i + 1:06d}",
                int(ages[i]),
                workclass[i],
                int(fnlwgt[i]),
                edu,
                edu_num[edu],
                marital[i],
                occupation[i],
                relationship[i],
                race[i],
                sex[i],
                int(gain[i]),
                int(loss[i]),
                int(hours[i]),
                native[i],
                income,
            )
        )
    db = Database("adult")
    _schema(db)
    db.bulk_load("adult", rows)
    return db


def replicate(source: Database, factor: int) -> Database:
    """Scale the Adult table by an integer factor (Fig. 16(b))."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    db = Database(f"adult_x{factor}")
    _schema(db)
    base_rows = list(source.relation("adult").rows())
    n = len(base_rows)
    out = []
    for rep in range(factor):
        for row in base_rows:
            rid = row[0] + rep * n
            out.append((rid, f"Resident {rid:06d}", *row[2:]))
    db.bulk_load("adult", out)
    return db
