"""Case-study example lists (Section 7.4).

The paper's case studies feed SQuID *human-made* lists (funny actors,
2000s Sci-Fi movies, prolific database researchers) whose intent has no
exact SQL counterpart.  We reproduce the protocol synthetically:

1. a *latent intent* is defined over the generated data (e.g. actors whose
   portfolio is predominantly Comedy);
2. a noisy, popularity-biased list is sampled from the intent holders —
   public lists favour well-known entities and include a few spurious
   entries;
3. a *popularity mask* (the paper's "Top 1000 actors" filter, footnote 14)
   restricts both the list and any query output during evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..relational.database import Database
from .seeds import make_rng


@dataclass
class CaseStudy:
    """A human-list-style benchmark: examples, intent holders, and mask."""

    name: str
    entity_table: str
    display: str
    examples: List[str]
    """The "public list": display values, popularity-biased and noisy."""

    intent_keys: Set[int]
    """Entity keys that truly satisfy the latent intent."""

    mask_keys: Set[int]
    """Popularity mask: evaluation restricts to these entities."""


def _person_popularity(db: Database) -> Dict[int, int]:
    """Person popularity = number of cast appearances."""
    counts: Dict[int, int] = {}
    for pid in db.relation("castinfo").column("person_id"):
        counts[pid] = counts.get(pid, 0) + 1
    return counts


def _movie_popularity(db: Database) -> Dict[int, int]:
    """Movie popularity = vote count."""
    movie = db.relation("movie")
    return dict(zip(movie.column("id"), movie.column("votes")))


def _author_popularity(db: Database) -> Dict[int, int]:
    """Author popularity = number of publications."""
    counts: Dict[int, int] = {}
    for aid in db.relation("authortopub").column("author_id"):
        counts[aid] = counts.get(aid, 0) + 1
    return counts


def _display_map(db: Database, table: str, display: str) -> Dict[int, str]:
    relation = db.relation(table)
    return dict(zip(relation.column("id"), relation.column(display)))


def _sample_list(
    rng: np.random.Generator,
    candidates: Sequence[int],
    popularity: Dict[int, int],
    list_size: int,
    noise_pool: Sequence[int],
    noise_rate: float = 0.06,
) -> List[int]:
    """Popularity-biased sample with a small fraction of spurious entries."""
    if not candidates:
        return []
    weights = np.asarray(
        [1.0 + popularity.get(k, 0) for k in candidates], dtype=float
    )
    weights = weights / weights.sum()
    take = min(list_size, len(candidates))
    chosen = list(
        rng.choice(np.asarray(candidates), size=take, replace=False, p=weights)
    )
    n_noise = int(len(chosen) * noise_rate)
    if noise_pool and n_noise:
        spurious = rng.choice(np.asarray(noise_pool), size=n_noise, replace=False)
        chosen[-n_noise:] = list(spurious)
    return [int(k) for k in chosen]


def _genre_portfolio(db: Database, genre_name: str) -> Dict[int, Tuple[int, int]]:
    """Per person: (movies in the genre, total movie appearances)."""
    genre_rel = db.relation("genre")
    genre_id = None
    for rid in genre_rel.row_ids():
        if genre_rel.value(rid, "name") == genre_name:
            genre_id = genre_rel.value(rid, "id")
            break
    assert genre_id is not None, f"genre {genre_name!r} missing"
    genre_movies = {
        mid
        for mid, gid in zip(
            db.relation("movietogenre").column("movie_id"),
            db.relation("movietogenre").column("genre_id"),
        )
        if gid == genre_id
    }
    out: Dict[int, Tuple[int, int]] = {}
    cast = db.relation("castinfo")
    for pid, mid in zip(cast.column("person_id"), cast.column("movie_id")):
        in_genre, total = out.get(pid, (0, 0))
        out[pid] = (in_genre + (mid in genre_movies), total + 1)
    return out


def funny_actors(db: Database, list_size: int = 120, seed: int = 99) -> CaseStudy:
    """IMDb case study (a): actors with predominantly-Comedy portfolios."""
    rng = make_rng(seed, "funny")
    portfolio = _genre_portfolio(db, "Comedy")
    intent = {
        pid
        for pid, (comedy, total) in portfolio.items()
        if total >= 4 and comedy / total >= 0.6
    }
    popularity = _person_popularity(db)
    ranked = sorted(popularity, key=lambda k: -popularity[k])
    mask = set(ranked[: max(200, len(ranked) // 3)])
    noise_pool = [p for p in ranked[:300] if p not in intent]
    chosen = _sample_list(
        rng, sorted(intent & mask), popularity, list_size, noise_pool
    )
    display = _display_map(db, "person", "name")
    return CaseStudy(
        name="funny_actors",
        entity_table="person",
        display="name",
        examples=[display[k] for k in chosen],
        intent_keys=intent,
        mask_keys=mask,
    )


def scifi_2000s_movies(db: Database, list_size: int = 100, seed: int = 77) -> CaseStudy:
    """IMDb case study (b): Sci-Fi movies released in the 2000s."""
    rng = make_rng(seed, "scifi")
    genre_rel = db.relation("genre")
    scifi_id = next(
        genre_rel.value(rid, "id")
        for rid in genre_rel.row_ids()
        if genre_rel.value(rid, "name") == "Sci-Fi"
    )
    scifi_movies = {
        mid
        for mid, gid in zip(
            db.relation("movietogenre").column("movie_id"),
            db.relation("movietogenre").column("genre_id"),
        )
        if gid == scifi_id
    }
    movie = db.relation("movie")
    years = dict(zip(movie.column("id"), movie.column("year")))
    intent = {mid for mid in scifi_movies if 2000 <= years[mid] <= 2009}
    popularity = _movie_popularity(db)
    ranked = sorted(popularity, key=lambda k: -popularity[k])
    mask = set(ranked[: max(300, len(ranked) // 2)])
    noise_pool = [m for m in ranked[:400] if m not in intent]
    chosen = _sample_list(
        rng, sorted(intent & mask), popularity, list_size, noise_pool
    )
    display = _display_map(db, "movie", "title")
    return CaseStudy(
        name="scifi_2000s",
        entity_table="movie",
        display="title",
        examples=[display[k] for k in chosen],
        intent_keys=intent,
        mask_keys=mask,
    )


def prolific_db_researchers(
    db: Database, list_size: int = 30, seed: int = 55
) -> CaseStudy:
    """DBLP case study (c): most prolific database-venue authors."""
    rng = make_rng(seed, "prolific")
    venue_rel = db.relation("venue")
    db_venues = {
        venue_rel.value(rid, "id")
        for rid in venue_rel.row_ids()
        if venue_rel.value(rid, "name")
        in ("SIGMOD", "VLDB", "PODS", "ICDE", "EDBT", "CIDR", "TODS", "VLDBJ")
    }
    pub_venue = dict(
        zip(
            db.relation("publication").column("id"),
            db.relation("publication").column("venue_id"),
        )
    )
    counts: Dict[int, int] = {}
    a2p = db.relation("authortopub")
    for aid, pid in zip(a2p.column("author_id"), a2p.column("pub_id")):
        if pub_venue.get(pid) in db_venues:
            counts[aid] = counts.get(aid, 0) + 1
    ranked = sorted(counts, key=lambda k: -counts[k])
    intent = {aid for aid in ranked if counts[aid] >= 10}
    popularity = _author_popularity(db)
    mask = set(sorted(popularity, key=lambda k: -popularity[k])[:400])
    noise_pool = [a for a in ranked[:200] if a not in intent]
    chosen = _sample_list(
        rng, sorted(intent), counts, list_size, noise_pool, noise_rate=0.1
    )
    display = _display_map(db, "author", "name")
    return CaseStudy(
        name="prolific_db_researchers",
        entity_table="author",
        display="name",
        examples=[display[k] for k in chosen],
        intent_keys=intent,
        mask_keys=mask,
    )
