"""Deterministic randomness utilities for the synthetic data generators.

Every generator draws from a ``numpy.random.Generator`` seeded per dataset,
so that identical configurations always produce byte-identical databases —
a requirement for reproducible benchmark tables.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np


def make_rng(seed: int, stream: str = "") -> np.random.Generator:
    """A generator seeded from ``seed`` and an optional named stream.

    Named streams decorrelate the sub-generators of one dataset (persons,
    movies, casting, ...) so adding draws to one stage does not shift the
    randomness of another.  The stream is hashed with CRC-32 — Python's
    built-in ``hash`` is salted per process and would break cross-process
    reproducibility.
    """
    if stream:
        child = np.random.SeedSequence(
            [seed, zlib.crc32(stream.encode("utf-8"))]
        )
        return np.random.default_rng(child)
    return np.random.default_rng(np.random.SeedSequence(seed))


def weighted_choice(
    rng: np.random.Generator,
    items: Sequence[Any],
    weights: Sequence[float],
    size: Optional[int] = None,
):
    """Sample from ``items`` with the given (unnormalised) weights."""
    probs = np.asarray(weights, dtype=float)
    probs = probs / probs.sum()
    idx = rng.choice(len(items), size=size, p=probs)
    if size is None:
        return items[int(idx)]
    return [items[int(i)] for i in np.asarray(idx)]


def span_draw(rng: np.random.Generator, bounds: Tuple[int, int]) -> int:
    """One integer from the *inclusive* ``(low, high)`` range.

    Sampler configs express cardinalities as inclusive bound pairs;
    centralising the draw keeps every generator off-by-one-free on the
    upper bound."""
    low, high = bounds
    return int(rng.integers(low, high + 1))


def zipf_weights(n: int, exponent: float = 1.1) -> np.ndarray:
    """Zipfian weights for ranks 1..n (heavy-tailed activity levels)."""
    ranks = np.arange(1, n + 1, dtype=float)
    return ranks**-exponent


def clipped_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    low: float,
    high: float,
    size: int,
) -> np.ndarray:
    """Normal samples clipped into [low, high]."""
    return np.clip(rng.normal(mean, std, size=size), low, high)


def sample_unique_names(
    rng: np.random.Generator,
    firsts: Sequence[str],
    lasts: Sequence[str],
    count: int,
    duplicate_rate: float = 0.0,
) -> List[str]:
    """Synthesize ``count`` person names from first/last pools.

    ``duplicate_rate`` of the names intentionally reuse an earlier name,
    producing the ambiguity the disambiguation experiments (Fig. 12) need.
    """
    names: List[str] = []
    seen: set = set()
    while len(names) < count:
        if names and rng.random() < duplicate_rate:
            names.append(names[int(rng.integers(0, len(names)))])
            continue
        name = (
            f"{firsts[int(rng.integers(0, len(firsts)))]} "
            f"{lasts[int(rng.integers(0, len(lasts)))]}"
        )
        if name in seen:
            continue
        seen.add(name)
        names.append(name)
    return names
