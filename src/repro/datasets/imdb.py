"""Synthetic IMDb-like database generator (15 relations, Appendix D shape).

The generator reproduces the *statistical structure* the paper's IMDb
experiments rely on, at laptop scale:

* entities: ``person`` and ``movie``; dimensions: genre, country, language,
  certificate, roletype, keyword, company; fact tables: castinfo (with a
  role qualifier) and the four ``movieto*`` association tables;
* skewed country/genre marginals, Zipfian actor activity, per-actor genre
  affinity (the mechanism behind "funny actors appear in many comedies");
* planted entities for every benchmark query of Figure 19 (Pulp Fiction's
  cast, the LOTR trilogy, Clint Eastwood directing *and* acting, Tom
  Cruise + Nicole Kidman co-starring in English-language 1990-2014 films,
  Indian actors with many Hollywood movies, and so on), so the intended
  result sets are non-trivial and the paper's per-query phenomena
  (IQ3/IQ6/IQ10 failure modes) reproduce.

The scaled variants of Appendix D.1 (sm/bs/bd) are provided as transforms
of the base database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.metadata import AdbMetadata, DimensionSpec, EntitySpec, QualifierSpec
from ..relational import ColumnDef, ColumnType, Database, ForeignKey, TableSchema
from . import names
from .seeds import clipped_normal, make_rng, sample_unique_names, zipf_weights

INT = ColumnType.INT
TEXT = ColumnType.TEXT

GENRES = [
    "Action", "Adventure", "Animation", "Biography", "Comedy", "Crime",
    "Documentary", "Drama", "Family", "Fantasy", "History", "Horror",
    "Music", "Mystery", "Romance", "Sci-Fi", "Sport", "Thriller", "War",
    "Western",
]
GENRE_WEIGHTS = [
    8, 6, 4, 3, 14, 6, 3, 16, 4, 4, 2, 5, 2, 4, 7, 5, 2, 8, 2, 2,
]

COUNTRIES = [
    "USA", "UK", "France", "Germany", "Italy", "Spain", "Canada", "India",
    "Japan", "Russia", "China", "Australia", "Mexico", "Brazil", "Sweden",
    "Denmark", "Norway", "Netherlands", "Belgium", "Poland", "Austria",
    "Switzerland", "Ireland", "South Korea", "Argentina",
]
COUNTRY_WEIGHTS = [
    40, 9, 5, 4, 3, 3, 5, 8, 5, 4, 4, 3, 2, 2, 1.5,
    1, 1, 1, 1, 1, 0.8, 0.8, 1, 2, 1,
]

LANGUAGES = [
    "English", "French", "German", "Italian", "Spanish", "Hindi",
    "Japanese", "Russian", "Mandarin", "Portuguese", "Swedish", "Danish",
    "Norwegian", "Dutch", "Polish", "Korean",
]
COUNTRY_LANGUAGE = {
    "USA": "English", "UK": "English", "Canada": "English",
    "Australia": "English", "Ireland": "English", "France": "French",
    "Belgium": "French", "Germany": "German", "Austria": "German",
    "Switzerland": "German", "Italy": "Italian", "Spain": "Spanish",
    "Mexico": "Spanish", "Argentina": "Spanish", "India": "Hindi",
    "Japan": "Japanese", "Russia": "Russian", "China": "Mandarin",
    "Brazil": "Portuguese", "Sweden": "Swedish", "Denmark": "Danish",
    "Norway": "Norwegian", "Netherlands": "Dutch", "Poland": "Polish",
    "South Korea": "Korean",
}

CERTIFICATES = ["G", "PG", "PG-13", "R", "NC-17", "TV-14", "TV-MA", "Unrated"]
ROLETYPES = [
    "Actor", "Actress", "Director", "Producer", "Writer", "Editor",
    "Composer", "Cinematographer",
]

PLANTED_PERSONS = [
    "Tom Cruise", "Nicole Kidman", "Clint Eastwood", "Al Pacino",
    "Patrick Stewart",
]
PLANTED_MOVIES = [
    "Pulp Fiction",
    "The Lord of the Rings: The Fellowship of the Ring",
    "The Lord of the Rings: The Two Towers",
    "The Lord of the Rings: The Return of the King",
]
PLANTED_COMPANIES = ["Walt Disney Pictures", "Pixar"]


@dataclass(frozen=True)
class ImdbSize:
    """Scale knobs of the generator."""

    persons: int = 2000
    movies: int = 4000
    companies: int = 80
    keywords: int = 120
    avg_cast: float = 7.0
    ambiguity_rate: float = 0.03
    seed: int = 701

    @classmethod
    def small(cls) -> "ImdbSize":
        """Test-suite scale: builds plus αDB in a couple of seconds."""
        return cls(persons=450, movies=900, companies=40, keywords=60)

    @classmethod
    def base(cls) -> "ImdbSize":
        """Benchmark scale (the reproduction's stand-in for 633 MB IMDb)."""
        return cls()

    def scaled(self, factor: float) -> "ImdbSize":
        """A proportionally resized configuration."""
        return ImdbSize(
            persons=max(50, int(self.persons * factor)),
            movies=max(80, int(self.movies * factor)),
            companies=max(10, int(self.companies * factor)),
            keywords=max(20, int(self.keywords * factor)),
            avg_cast=self.avg_cast,
            ambiguity_rate=self.ambiguity_rate,
            seed=self.seed,
        )


def metadata() -> AdbMetadata:
    """αDB metadata for the IMDb schema (the administrator's one-off input)."""
    return AdbMetadata(
        entities=[
            EntitySpec("person", "id", "name"),
            EntitySpec("movie", "id", "title"),
        ],
        dimensions=[
            DimensionSpec("genre", "id", "name"),
            DimensionSpec("country", "id", "name"),
            DimensionSpec("language", "id", "name"),
            DimensionSpec("certificate", "id", "name"),
            DimensionSpec("roletype", "id", "name"),
            DimensionSpec("keyword", "id", "name"),
            DimensionSpec("company", "id", "name"),
        ],
        property_attributes={
            "person": ["gender", "birth_year"],
            "movie": ["year"],
        },
        qualifiers=[QualifierSpec("castinfo", "role_id", "roletype")],
        excluded_attributes={
            "movie": ["runtime", "votes"],
        },
    )


def _schema(db: Database) -> None:
    """Create the 15 IMDb relations."""
    for name in ("genre", "country", "language", "certificate", "roletype", "keyword"):
        db.create_table(
            TableSchema(
                name,
                [ColumnDef("id", INT, nullable=False), ColumnDef("name", TEXT)],
                primary_key="id",
            )
        )
    db.create_table(
        TableSchema(
            "company",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("name", TEXT),
                ColumnDef("country_id", INT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("country_id", "country", "id")],
        )
    )
    db.create_table(
        TableSchema(
            "person",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("name", TEXT),
                ColumnDef("gender", TEXT),
                ColumnDef("birth_year", INT),
                ColumnDef("country_id", INT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("country_id", "country", "id")],
        )
    )
    db.create_table(
        TableSchema(
            "movie",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("title", TEXT),
                ColumnDef("year", INT),
                ColumnDef("runtime", INT),
                ColumnDef("votes", INT),
                ColumnDef("certificate_id", INT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("certificate_id", "certificate", "id")],
        )
    )
    db.create_table(
        TableSchema(
            "castinfo",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("person_id", INT),
                ColumnDef("movie_id", INT),
                ColumnDef("role_id", INT),
            ],
            primary_key="id",
            foreign_keys=[
                ForeignKey("person_id", "person", "id"),
                ForeignKey("movie_id", "movie", "id"),
                ForeignKey("role_id", "roletype", "id"),
            ],
        )
    )
    for name, dim in (
        ("movietogenre", "genre"),
        ("movietocountry", "country"),
        ("movietolanguage", "language"),
        ("movietocompany", "company"),
        ("movietokeyword", "keyword"),
    ):
        db.create_table(
            TableSchema(
                name,
                [
                    ColumnDef("id", INT, nullable=False),
                    ColumnDef("movie_id", INT),
                    ColumnDef(f"{dim}_id", INT),
                ],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("movie_id", "movie", "id"),
                    ForeignKey(f"{dim}_id", dim, "id"),
                ],
            )
        )


class _Builder:
    """Accumulates rows and hands out sequential ids per table."""

    def __init__(self) -> None:
        self.rows: Dict[str, List[tuple]] = {}
        self._next: Dict[str, int] = {}

    def add(self, table: str, *values: Any) -> int:
        rid = self._next.get(table, 1)
        self._next[table] = rid + 1
        self.rows.setdefault(table, []).append((rid, *values))
        return rid

    def load_into(self, db: Database) -> None:
        for table, rows in self.rows.items():
            db.bulk_load(table, rows)


def generate(size: Optional[ImdbSize] = None) -> Database:
    """Generate the full IMDb-like database (background + planted data)."""
    size = size or ImdbSize.base()
    db = Database("imdb")
    _schema(db)
    b = _Builder()

    dims = _build_dimensions(b, size)
    persons, affinity, activity = _build_persons(b, size, dims)
    movies = _build_movies(b, size, dims)
    _build_cast(b, size, dims, persons, affinity, activity, movies)
    _plant_benchmarks(b, size, dims, movies)
    b.load_into(db)
    return db


# ----------------------------------------------------------------------
# background generation
# ----------------------------------------------------------------------
def _build_dimensions(b: _Builder, size: ImdbSize) -> Dict[str, Dict[str, int]]:
    rng = make_rng(size.seed, "dims")
    ids: Dict[str, Dict[str, int]] = {}
    ids["genre"] = {name: b.add("genre", name) for name in GENRES}
    ids["country"] = {name: b.add("country", name) for name in COUNTRIES}
    ids["language"] = {name: b.add("language", name) for name in LANGUAGES}
    ids["certificate"] = {name: b.add("certificate", name) for name in CERTIFICATES}
    ids["roletype"] = {name: b.add("roletype", name) for name in ROLETYPES}
    keywords = names.KEYWORD_POOL[: size.keywords]
    ids["keyword"] = {name: b.add("keyword", name) for name in keywords}
    company_ids: Dict[str, int] = {}
    for name in PLANTED_COMPANIES:
        company_ids[name] = b.add("company", name, ids["country"]["USA"])
    suffixes = ["Pictures", "Films", "Studios", "Entertainment", "Productions"]
    while len(company_ids) < size.companies:
        word = names.TITLE_NOUNS[int(rng.integers(0, len(names.TITLE_NOUNS)))]
        suffix = suffixes[int(rng.integers(0, len(suffixes)))]
        name = f"{word} {suffix}"
        if name in company_ids:
            continue
        country = _weighted_country(rng)
        company_ids[name] = b.add("company", name, ids["country"][country])
    ids["company"] = company_ids
    return ids


def _weighted_country(rng: np.random.Generator) -> str:
    probs = np.asarray(COUNTRY_WEIGHTS, dtype=float)
    return COUNTRIES[int(rng.choice(len(COUNTRIES), p=probs / probs.sum()))]


def _build_persons(
    b: _Builder, size: ImdbSize, dims: Dict[str, Dict[str, int]]
) -> Tuple[List[dict], np.ndarray, np.ndarray]:
    rng = make_rng(size.seed, "persons")
    n = size.persons
    genders = np.where(rng.random(n) < 0.58, "Male", "Female")
    birth_years = clipped_normal(rng, 1962, 16, 1920, 2000, n).astype(int)
    male_names = sample_unique_names(
        rng, names.MALE_FIRST_NAMES, names.LAST_NAMES, n, size.ambiguity_rate
    )
    female_names = sample_unique_names(
        rng, names.FEMALE_FIRST_NAMES, names.LAST_NAMES, n, size.ambiguity_rate
    )
    planted = set(PLANTED_PERSONS)
    genre_probs = np.asarray(GENRE_WEIGHTS, dtype=float)
    genre_probs = genre_probs / genre_probs.sum()
    affinity = rng.choice(len(GENRES), size=n, p=genre_probs)
    # Zipfian activity: a few persons appear in very many movies
    activity = zipf_weights(n, exponent=1.05)
    rng.shuffle(activity)
    # ~15% of persons never appear in a movie (pure background entities)
    inactive = rng.random(n) < 0.15
    activity[inactive] = 0.0

    persons: List[dict] = []
    mi = fi = 0
    for i in range(n):
        if genders[i] == "Male":
            name = male_names[mi]
            mi += 1
        else:
            name = female_names[fi]
            fi += 1
        if name in planted:
            name = f"{name} Jr."
        country = _weighted_country(rng)
        pid = b.add(
            "person", name, str(genders[i]), int(birth_years[i]),
            dims["country"][country],
        )
        persons.append(
            {"id": pid, "gender": str(genders[i]), "country": country}
        )
    return persons, affinity, activity


def _movie_title(rng: np.random.Generator, used: set) -> str:
    for _ in range(40):
        adj = names.TITLE_ADJECTIVES[int(rng.integers(0, len(names.TITLE_ADJECTIVES)))]
        noun = names.TITLE_NOUNS[int(rng.integers(0, len(names.TITLE_NOUNS)))]
        if rng.random() < 0.25:
            suffix = names.TITLE_SUFFIXES[
                int(rng.integers(0, len(names.TITLE_SUFFIXES)))
            ]
            title = f"The {adj} {noun} {suffix}"
        else:
            title = f"The {adj} {noun}"
        if title not in used:
            used.add(title)
            return title
    # exhausted unique space: allow an intentional duplicate
    return title


def _movie_year(rng: np.random.Generator) -> int:
    # recent-skewed release years, 1930..2017
    r = rng.random()
    if r < 0.5:
        return int(rng.integers(2000, 2018))
    if r < 0.8:
        return int(rng.integers(1980, 2000))
    return int(rng.integers(1930, 1980))


def _build_movies(
    b: _Builder, size: ImdbSize, dims: Dict[str, Dict[str, int]]
) -> List[dict]:
    rng = make_rng(size.seed, "movies")
    used_titles = set(PLANTED_MOVIES)
    genre_probs = np.asarray(GENRE_WEIGHTS, dtype=float)
    genre_probs = genre_probs / genre_probs.sum()
    company_names = list(dims["company"])
    keyword_names = list(dims["keyword"])
    movies: List[dict] = []
    for _ in range(size.movies):
        title = _movie_title(rng, used_titles)
        if rng.random() < 0.02 and movies:
            # intentional title collision for disambiguation experiments
            title = movies[int(rng.integers(0, len(movies)))]["title"]
        year = _movie_year(rng)
        primary = int(rng.choice(len(GENRES), p=genre_probs))
        country = _weighted_country(rng)
        movie = _add_movie(
            b, rng, dims, title=title, year=year, primary_genre=GENRES[primary],
            country=country,
            companies=[
                company_names[int(rng.integers(0, len(company_names)))]
                for _ in range(1 + (rng.random() < 0.3))
            ],
            keywords=[
                keyword_names[int(rng.integers(0, len(keyword_names)))]
                for _ in range(int(rng.integers(0, 4)))
            ],
        )
        movies.append(movie)
    return movies


def _add_movie(
    b: _Builder,
    rng: np.random.Generator,
    dims: Dict[str, Dict[str, int]],
    *,
    title: str,
    year: int,
    primary_genre: str,
    country: str,
    extra_genres: Sequence[str] = (),
    companies: Sequence[str] = (),
    keywords: Sequence[str] = (),
    language: Optional[str] = None,
    votes: Optional[int] = None,
) -> dict:
    runtime = int(clipped_normal(rng, 105, 18, 60, 220, 1)[0])
    votes = int(votes if votes is not None else rng.lognormal(8.0, 1.6))
    certificate = CERTIFICATES[int(rng.integers(0, len(CERTIFICATES)))]
    mid = b.add(
        "movie", title, year, runtime, votes, dims["certificate"][certificate]
    )
    genres = [primary_genre] + [g for g in extra_genres if g != primary_genre]
    if not extra_genres and rng.random() < 0.55:
        other = GENRES[int(rng.integers(0, len(GENRES)))]
        if other not in genres:
            genres.append(other)
    for genre in genres:
        b.add("movietogenre", mid, dims["genre"][genre])
    b.add("movietocountry", mid, dims["country"][country])
    language = language or COUNTRY_LANGUAGE.get(country, "English")
    b.add("movietolanguage", mid, dims["language"][language])
    for company in companies:
        b.add("movietocompany", mid, dims["company"][company])
    for keyword in dict.fromkeys(keywords):
        b.add("movietokeyword", mid, dims["keyword"][keyword])
    return {
        "id": mid,
        "title": title,
        "year": year,
        "primary_genre": primary_genre,
        "country": country,
    }


def _build_cast(
    b: _Builder,
    size: ImdbSize,
    dims: Dict[str, Dict[str, int]],
    persons: List[dict],
    affinity: np.ndarray,
    activity: np.ndarray,
    movies: List[dict],
) -> None:
    rng = make_rng(size.seed, "cast")
    role_ids = dims["roletype"]
    n = len(persons)
    genre_index = {name: i for i, name in enumerate(GENRES)}
    # per-genre sampling distributions biased to affinity + activity
    base = np.maximum(activity, 0.0)
    if base.sum() == 0:
        base = np.ones(n)
    pools: Dict[int, np.ndarray] = {}
    for gi in range(len(GENRES)):
        weights = base * np.where(affinity == gi, 12.0, 1.0)
        total = weights.sum()
        pools[gi] = weights / total if total > 0 else np.ones(n) / n

    for movie in movies:
        gi = genre_index[movie["primary_genre"]]
        cast_size = max(3, int(rng.normal(size.avg_cast, 2.5)))
        chosen = rng.choice(n, size=min(cast_size, n), replace=False, p=pools[gi])
        for idx in chosen:
            person = persons[int(idx)]
            role = "Actor" if person["gender"] == "Male" else "Actress"
            b.add("castinfo", person["id"], movie["id"], role_ids[role])
        # crew: director, producer, writer drawn activity-weighted
        for role in ("Director", "Producer", "Writer"):
            idx = int(rng.choice(n, p=pools[gi]))
            b.add("castinfo", persons[idx]["id"], movie["id"], role_ids[role])


# ----------------------------------------------------------------------
# planted benchmark entities (Figure 19 queries)
# ----------------------------------------------------------------------
def _plant_persons(
    b: _Builder,
    rng: np.random.Generator,
    dims: Dict[str, Dict[str, int]],
    count: int,
    *,
    gender: str = "Male",
    country: str = "USA",
    birth_range: Tuple[int, int] = (1940, 1990),
    name_prefix: str = "",
) -> List[int]:
    firsts = (
        names.MALE_FIRST_NAMES if gender == "Male" else names.FEMALE_FIRST_NAMES
    )
    out = []
    for i in range(count):
        first = firsts[int(rng.integers(0, len(firsts)))]
        last = names.LAST_NAMES[int(rng.integers(0, len(names.LAST_NAMES)))]
        name = f"{name_prefix}{first} {last}"
        birth = int(rng.integers(birth_range[0], birth_range[1] + 1))
        pid = b.add("person", name, gender, birth, dims["country"][country])
        out.append(pid)
    return out


def _cast_actor(b: _Builder, dims, pid: int, mid: int, gender: str = "Male") -> None:
    role = "Actor" if gender == "Male" else "Actress"
    b.add("castinfo", pid, mid, dims["roletype"][role])


def _plant_benchmarks(
    b: _Builder,
    size: ImdbSize,
    dims: Dict[str, Dict[str, int]],
    background_movies: List[dict],
) -> None:
    rng = make_rng(size.seed, "plant")
    role_ids = dims["roletype"]

    def background_career(pid: int, low: int = 2, high: int = 7) -> None:
        """Give a planted person appearances in random background movies.

        Real cast members work across many films; without this, trees like
        TALOS could isolate planted movies by title with zero leakage,
        hiding the mislabelling failure the paper documents for IQ1.
        """
        n = int(rng.integers(low, high + 1))
        picks = rng.choice(len(background_movies), size=n, replace=False)
        for mi in picks:
            _cast_actor(b, dims, pid, background_movies[int(mi)]["id"])

    # --- IQ1: Pulp Fiction and its cast -------------------------------
    pulp = _add_movie(
        b, rng, dims, title="Pulp Fiction", year=1994, primary_genre="Crime",
        country="USA", extra_genres=["Drama"], votes=2_000_000,
    )
    pulp_cast = _plant_persons(b, rng, dims, 36)
    for pid in pulp_cast:
        _cast_actor(b, dims, pid, pulp["id"])
        background_career(pid)

    # --- IQ2: LOTR trilogy with a shared core cast ---------------------
    core = _plant_persons(b, rng, dims, 18, country="UK", birth_range=(1940, 1985))
    for pid in core:
        background_career(pid, low=1, high=4)
    for title in PLANTED_MOVIES[1:]:
        movie = _add_movie(
            b, rng, dims, title=title,
            year={"The Lord of the Rings: The Fellowship of the Ring": 2001,
                  "The Lord of the Rings: The Two Towers": 2002,
                  "The Lord of the Rings: The Return of the King": 2003}[title],
            primary_genre="Fantasy", country="USA", extra_genres=["Adventure"],
            votes=1_700_000,
        )
        for pid in core:
            _cast_actor(b, dims, pid, movie["id"])
        for pid in _plant_persons(b, rng, dims, 8, country="UK"):
            _cast_actor(b, dims, pid, movie["id"])
            background_career(pid, low=0, high=3)

    # --- IQ5: Tom Cruise + Nicole Kidman, English, 1990-2014 ----------
    cruise = b.add("person", "Tom Cruise", "Male", 1962, dims["country"]["USA"])
    kidman = b.add(
        "person", "Nicole Kidman", "Female", 1967, dims["country"]["Australia"]
    )
    for i in range(12):
        movie = _add_movie(
            b, rng, dims, title=f"The Crimson Verdict {i + 1}",
            year=int(1990 + (24 * i) // 11 if i < 12 else 1990),
            primary_genre="Drama", country="USA", language="English",
        )
        _cast_actor(b, dims, cruise, movie["id"])
        _cast_actor(b, dims, kidman, movie["id"], gender="Female")
    # solo careers so the pair filter is informative
    for i in range(10):
        movie = _add_movie(
            b, rng, dims, title=f"The Scarlet Mission {i + 1}",
            year=int(rng.integers(1986, 2017)), primary_genre="Action",
            country="USA", language="English",
        )
        _cast_actor(b, dims, cruise, movie["id"])
    for i in range(9):
        movie = _add_movie(
            b, rng, dims, title=f"The Velvet Hour {i + 1}",
            year=int(rng.integers(1989, 2017)), primary_genre="Drama",
            country="USA", language="English",
        )
        _cast_actor(b, dims, kidman, movie["id"], gender="Female")

    # --- IQ6: Clint Eastwood directs 20, acts in 14 of them ------------
    eastwood = b.add("person", "Clint Eastwood", "Male", 1930, dims["country"]["USA"])
    for i in range(20):
        movie = _add_movie(
            b, rng, dims, title=f"The Iron Frontier {i + 1}",
            year=int(rng.integers(1971, 2017)), primary_genre="Western",
            country="USA",
        )
        b.add("castinfo", eastwood, movie["id"], role_ids["Director"])
        if i < 14:
            _cast_actor(b, dims, eastwood, movie["id"])
    # acting-only appearances
    for i in range(6):
        movie = _add_movie(
            b, rng, dims, title=f"The Hollow Canyon {i + 1}",
            year=int(rng.integers(1964, 2000)), primary_genre="Western",
            country="USA",
        )
        _cast_actor(b, dims, eastwood, movie["id"])

    # --- IQ8: Al Pacino movies -----------------------------------------
    pacino = b.add("person", "Al Pacino", "Male", 1940, dims["country"]["USA"])
    for i in range(30):
        movie = _add_movie(
            b, rng, dims, title=f"The Shattered Covenant {i + 1}",
            year=int(rng.integers(1971, 2017)), primary_genre="Crime",
            country="USA", extra_genres=["Drama"],
        )
        _cast_actor(b, dims, pacino, movie["id"])

    # --- IQ9: Indian actors with >= 15 Hollywood (USA) movies ----------
    indian_pool_movies = [
        _add_movie(
            b, rng, dims, title=f"The Golden Monsoon {i + 1}",
            year=int(rng.integers(1990, 2017)), primary_genre="Drama",
            country="USA", language="English",
        )
        for i in range(30)
    ]
    heavy = _plant_persons(b, rng, dims, 10, country="India")
    for pid in heavy:
        picks = rng.choice(len(indian_pool_movies), size=18, replace=False)
        for mi in picks:
            _cast_actor(b, dims, pid, indian_pool_movies[int(mi)]["id"])
    light = _plant_persons(b, rng, dims, 12, country="India")
    for pid in light:
        picks = rng.choice(len(indian_pool_movies), size=5, replace=False)
        for mi in picks:
            _cast_actor(b, dims, pid, indian_pool_movies[int(mi)]["id"])

    # --- IQ10: actors with > 10 Russian movies after 2010 --------------
    russian_recent = [
        _add_movie(
            b, rng, dims, title=f"The Frozen Meridian {i + 1}",
            year=int(rng.integers(2011, 2018)), primary_genre="Drama",
            country="Russia", language="Russian",
        )
        for i in range(26)
    ]
    russian_old = [
        _add_movie(
            b, rng, dims, title=f"The Distant Tempest {i + 1}",
            year=int(rng.integers(1995, 2010)), primary_genre="Drama",
            country="Russia", language="Russian",
        )
        for i in range(20)
    ]
    # satisfy the intent: many recent Russian movies
    for pid in _plant_persons(b, rng, dims, 8, country="Russia"):
        for mi in rng.choice(len(russian_recent), size=13, replace=False):
            _cast_actor(b, dims, pid, russian_recent[int(mi)]["id"])
    # confounders: many Russian movies but mostly old ones
    for pid in _plant_persons(b, rng, dims, 8, country="Russia"):
        for mi in rng.choice(len(russian_old), size=11, replace=False):
            _cast_actor(b, dims, pid, russian_old[int(mi)]["id"])
        for mi in rng.choice(len(russian_recent), size=4, replace=False):
            _cast_actor(b, dims, pid, russian_recent[int(mi)]["id"])

    # --- IQ3: Canadian actresses born after 1970 -------------------------
    canadian_films = [
        _add_movie(
            b, rng, dims, title=f"The Restless Harbor {i + 1}",
            year=int(rng.integers(1995, 2017)), primary_genre="Drama",
            country="Canada", language="English",
        )
        for i in range(12)
    ]
    actresses = _plant_persons(
        b, rng, dims, 16, gender="Female", country="Canada",
        birth_range=(1971, 1995),
    )
    for pid in actresses:
        for mi in rng.choice(len(canadian_films), size=3, replace=False):
            _cast_actor(b, dims, pid, canadian_films[int(mi)]["id"], gender="Female")
    # confounders: older Canadian actresses and young Canadian women who
    # never act (so each predicate of IQ3 matters)
    older = _plant_persons(
        b, rng, dims, 8, gender="Female", country="Canada",
        birth_range=(1940, 1969),
    )
    for pid in older:
        for mi in rng.choice(len(canadian_films), size=2, replace=False):
            _cast_actor(b, dims, pid, canadian_films[int(mi)]["id"], gender="Female")
    _plant_persons(
        b, rng, dims, 10, gender="Female", country="Canada",
        birth_range=(1971, 1995),
    )

    # --- IQ4: Sci-Fi movies released in USA in 2016 ---------------------
    for i in range(22):
        _add_movie(
            b, rng, dims, title=f"The Neon Paradox {i + 1}", year=2016,
            primary_genre="Sci-Fi", country="USA", language="English",
        )

    # --- IQ11: USA Horror-Drama movies 2005-2008 ------------------------
    for i in range(20):
        _add_movie(
            b, rng, dims, title=f"The Midnight Requiem {i + 1}",
            year=int(rng.integers(2005, 2009)), primary_genre="Horror",
            country="USA", extra_genres=["Drama"],
        )

    # --- IQ12/IQ13/IQ16: Disney & Pixar movies ---------------------------
    us_cast_pool = _plant_persons(b, rng, dims, 60, country="USA")
    for i in range(40):
        movie = _add_movie(
            b, rng, dims, title=f"The Lucky Carnival {i + 1}",
            year=int(rng.integers(1990, 2017)), primary_genre="Family",
            country="USA", companies=["Walt Disney Pictures"],
        )
        # IQ16: half of Disney movies have large American casts
        cast = 18 if i % 2 == 0 else 6
        for pi in rng.choice(len(us_cast_pool), size=cast, replace=False):
            _cast_actor(b, dims, us_cast_pool[int(pi)], movie["id"])
    for i in range(18):
        _add_movie(
            b, rng, dims, title=f"The Gentle Zephyr {i + 1}",
            year=int(rng.integers(1995, 2017)), primary_genre="Animation",
            country="USA", companies=["Pixar"], extra_genres=["Family"],
        )

    # --- IQ14: Sci-Fi movies with Patrick Stewart ------------------------
    stewart = b.add("person", "Patrick Stewart", "Male", 1940, dims["country"]["UK"])
    for i in range(14):
        movie = _add_movie(
            b, rng, dims, title=f"The Electric Odyssey {i + 1}",
            year=int(rng.integers(1987, 2017)), primary_genre="Sci-Fi",
            country="USA", language="English",
        )
        _cast_actor(b, dims, stewart, movie["id"])
    for i in range(6):
        movie = _add_movie(
            b, rng, dims, title=f"The Quiet Sanctuary {i + 1}",
            year=int(rng.integers(1990, 2017)), primary_genre="Drama",
            country="UK", language="English",
        )
        _cast_actor(b, dims, stewart, movie["id"])

    # --- IQ15: Japanese Animation movies ---------------------------------
    for i in range(45):
        _add_movie(
            b, rng, dims, title=f"The Silver Lantern {i + 1}",
            year=int(rng.integers(1985, 2017)), primary_genre="Animation",
            country="Japan", language="Japanese",
        )


# ----------------------------------------------------------------------
# scaled variants (Appendix D.1)
# ----------------------------------------------------------------------
def _copy_schema(source: Database, name: str) -> Database:
    db = Database(name)
    for schema in source.schema.tables.values():
        db.create_table(
            TableSchema(
                schema.name,
                list(schema.columns),
                primary_key=schema.primary_key,
                foreign_keys=list(schema.foreign_keys),
            )
        )
    return db


def downsized_variant(source: Database, keep_fraction: float = 0.35) -> Database:
    """sm-IMDb: drop sparsely-connected persons and empty movies.

    Appendix D.1 drops persons with fewer than 2 movies and movies with no
    cast; ``keep_fraction`` additionally subsamples the surviving movies.
    """
    rng = make_rng(10_101, "sm")
    cast = source.relation("castinfo")
    per_person: Dict[int, int] = {}
    per_movie: Dict[int, int] = {}
    for pid, mid in zip(cast.column("person_id"), cast.column("movie_id")):
        per_person[pid] = per_person.get(pid, 0) + 1
        per_movie[mid] = per_movie.get(mid, 0) + 1

    keep_movies = {
        mid
        for mid in source.relation("movie").column("id")
        if per_movie.get(mid, 0) > 0 and rng.random() < keep_fraction
    }
    keep_persons = {
        pid
        for pid in source.relation("person").column("id")
        if per_person.get(pid, 0) >= 2
    }
    db = _copy_schema(source, "sm-imdb")
    for dim in ("genre", "country", "language", "certificate", "roletype",
                "keyword", "company"):
        db.bulk_load(dim, source.relation(dim).rows())
    db.bulk_load(
        "person",
        (r for r in source.relation("person").rows() if r[0] in keep_persons),
    )
    db.bulk_load(
        "movie",
        (r for r in source.relation("movie").rows() if r[0] in keep_movies),
    )
    db.bulk_load(
        "castinfo",
        (
            r
            for r in source.relation("castinfo").rows()
            if r[1] in keep_persons and r[2] in keep_movies
        ),
    )
    for table in ("movietogenre", "movietocountry", "movietolanguage",
                  "movietocompany", "movietokeyword"):
        db.bulk_load(
            table,
            (r for r in source.relation(table).rows() if r[1] in keep_movies),
        )
    return db


def upsized_variant(source: Database, dense: bool) -> Database:
    """bs-IMDb (sparse) / bd-IMDb (dense) duplication of Appendix D.1.

    Every person and movie is duplicated with fresh ids.  For each original
    association (P1, M1), bs adds (P2, M2); bd additionally adds (P1, M2)
    and (P2, M1), creating denser connections.
    """
    db = _copy_schema(source, "bd-imdb" if dense else "bs-imdb")
    for dim in ("genre", "country", "language", "certificate", "roletype",
                "keyword", "company"):
        db.bulk_load(dim, source.relation(dim).rows())

    person_rows = list(source.relation("person").rows())
    movie_rows = list(source.relation("movie").rows())
    person_offset = max(r[0] for r in person_rows) + 1
    movie_offset = max(r[0] for r in movie_rows) + 1

    db.bulk_load("person", person_rows)
    db.bulk_load(
        "person",
        ((r[0] + person_offset, f"{r[1]} (II)", *r[2:]) for r in person_rows),
    )
    db.bulk_load("movie", movie_rows)
    db.bulk_load(
        "movie",
        ((r[0] + movie_offset, f"{r[1]} (II)", *r[2:]) for r in movie_rows),
    )

    cast_rows = list(source.relation("castinfo").rows())
    out = []
    next_id = max(r[0] for r in cast_rows) + 1 if cast_rows else 1
    for cid, pid, mid, role in cast_rows:
        out.append((cid, pid, mid, role))
        out.append((next_id, pid + person_offset, mid + movie_offset, role))
        next_id += 1
        if dense:
            out.append((next_id, pid, mid + movie_offset, role))
            next_id += 1
            out.append((next_id, pid + person_offset, mid, role))
            next_id += 1
    db.bulk_load("castinfo", out)

    for table in ("movietogenre", "movietocountry", "movietolanguage",
                  "movietocompany", "movietokeyword"):
        rows = list(source.relation(table).rows())
        next_id = max(r[0] for r in rows) + 1 if rows else 1
        dup = []
        for rid, mid, dim_id in rows:
            dup.append((rid, mid, dim_id))
            dup.append((next_id, mid + movie_offset, dim_id))
            next_id += 1
        db.bulk_load(table, dup)
    return db
