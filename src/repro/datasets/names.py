"""Name pools for the synthetic generators.

All strings are synthetic or generic.  A handful of real public-figure
names (Tom Cruise, Clint Eastwood, ...) are planted deliberately because
the paper's benchmark queries reference them by name (Figure 19/20); the
associated data is entirely synthetic.
"""

from __future__ import annotations

from typing import List

MALE_FIRST_NAMES: List[str] = [
    "James", "Robert", "John", "Michael", "David", "William", "Richard",
    "Joseph", "Thomas", "Charles", "Daniel", "Matthew", "Anthony", "Mark",
    "Donald", "Steven", "Paul", "Andrew", "Joshua", "Kenneth", "Kevin",
    "Brian", "George", "Timothy", "Ronald", "Edward", "Jason", "Jeffrey",
    "Ryan", "Jacob", "Gary", "Nicholas", "Eric", "Jonathan", "Stephen",
    "Larry", "Justin", "Scott", "Brandon", "Benjamin", "Samuel", "Gregory",
    "Alexander", "Patrick", "Frank", "Raymond", "Jack", "Dennis", "Jerry",
    "Tyler", "Aaron", "Jose", "Adam", "Nathan", "Henry", "Zachary",
    "Douglas", "Peter", "Kyle", "Noah", "Ethan", "Jeremy", "Walter",
    "Christian", "Keith", "Roger", "Terry", "Austin", "Sean", "Gerald",
    "Carl", "Harold", "Dylan", "Arthur", "Lawrence", "Jordan", "Jesse",
    "Bryan", "Billy", "Bruce", "Gabriel", "Joe", "Logan", "Alan", "Juan",
    "Albert", "Willie", "Elijah", "Wayne", "Randy", "Vincent", "Mason",
    "Roy", "Ralph", "Bobby", "Russell", "Bradley", "Philip", "Eugene",
]

FEMALE_FIRST_NAMES: List[str] = [
    "Mary", "Patricia", "Jennifer", "Linda", "Elizabeth", "Barbara",
    "Susan", "Jessica", "Sarah", "Karen", "Lisa", "Nancy", "Betty",
    "Sandra", "Margaret", "Ashley", "Kimberly", "Emily", "Donna",
    "Michelle", "Carol", "Amanda", "Melissa", "Deborah", "Stephanie",
    "Dorothy", "Rebecca", "Sharon", "Laura", "Cynthia", "Amy", "Kathleen",
    "Angela", "Shirley", "Brenda", "Emma", "Anna", "Pamela", "Nicole",
    "Samantha", "Katherine", "Christine", "Helen", "Debra", "Rachel",
    "Carolyn", "Janet", "Maria", "Catherine", "Heather", "Diane", "Olivia",
    "Julie", "Joyce", "Victoria", "Ruth", "Virginia", "Lauren", "Kelly",
    "Christina", "Joan", "Evelyn", "Judith", "Andrea", "Hannah", "Megan",
    "Cheryl", "Jacqueline", "Martha", "Madison", "Teresa", "Gloria",
    "Sara", "Janice", "Ann", "Kathryn", "Abigail", "Sophia", "Frances",
    "Jean", "Alice", "Judy", "Isabella", "Julia", "Grace", "Amber",
    "Denise", "Danielle", "Marilyn", "Beverly", "Charlotte", "Natalie",
    "Theresa", "Diana", "Brittany", "Doris", "Kayla", "Alexis", "Lori",
]

LAST_NAMES: List[str] = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Taylor", "Moore", "Jackson", "Martin", "Lee",
    "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark", "Ramirez",
    "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
    "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green", "Adams",
    "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell", "Carter",
    "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker",
    "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris", "Morales",
    "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper",
    "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos", "Kim",
    "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez", "Wood",
    "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes", "Price",
    "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long", "Ross",
    "Foster", "Jimenez", "Sharma", "Tanaka", "Suzuki", "Ivanov", "Petrov",
    "Kumar", "Singh", "Chen", "Wang", "Zhang", "Mueller", "Schmidt",
    "Rossi", "Ferrari", "Dubois", "Moreau", "Silva", "Santos", "Kowalski",
]

TITLE_ADJECTIVES: List[str] = [
    "Dark", "Silent", "Broken", "Golden", "Hidden", "Final", "Lost",
    "Eternal", "Crimson", "Frozen", "Burning", "Distant", "Savage",
    "Gentle", "Midnight", "Electric", "Silver", "Scarlet", "Hollow",
    "Rising", "Falling", "Secret", "Wild", "Quiet", "Shattered", "Ancient",
    "Neon", "Velvet", "Iron", "Glass", "Phantom", "Royal", "Lucky",
    "Bitter", "Sweet", "Lonely", "Endless", "Forgotten", "Restless",
]

TITLE_NOUNS: List[str] = [
    "Horizon", "Empire", "River", "Shadow", "Garden", "Mirror", "Storm",
    "Harvest", "Voyage", "Fortress", "Whisper", "Canyon", "Harbor",
    "Symphony", "Carnival", "Labyrinth", "Meridian", "Paradox", "Odyssey",
    "Covenant", "Reckoning", "Masquerade", "Requiem", "Sanctuary",
    "Cascade", "Eclipse", "Monolith", "Serenade", "Tempest", "Vendetta",
    "Wanderer", "Zephyr", "Citadel", "Dominion", "Ember", "Frontier",
    "Gambit", "Haven", "Inferno", "Juncture", "Kingdom", "Legacy",
]

TITLE_SUFFIXES: List[str] = [
    "of the North", "of Tomorrow", "at Dawn", "in Winter", "of Glass",
    "Returns", "Awakens", "Forever", "Reborn", "Unbound", "of the Deep",
    "in the Mist", "of Ashes", "at Midnight", "of Steel", "Rising",
]

KEYWORD_POOL: List[str] = [
    "betrayal", "revenge", "friendship", "heist", "time-travel", "space",
    "robot", "alien", "detective", "murder", "conspiracy", "war",
    "romance", "family", "road-trip", "undercover", "prison", "escape",
    "treasure", "haunted", "vampire", "zombie", "superhero", "magic",
    "dystopia", "apocalypse", "survival", "island", "desert", "jungle",
    "mountain", "ocean", "submarine", "airplane", "train", "race",
    "boxing", "chess", "music", "dance", "painting", "writer", "journalist",
    "lawyer", "doctor", "scientist", "teacher", "soldier", "spy", "pirate",
    "cowboy", "samurai", "gangster", "mafia", "cult", "ghost", "dream",
    "memory", "amnesia", "twins", "clone", "experiment", "virus",
    "pandemic", "flood", "earthquake", "volcano", "comet", "moon", "mars",
    "future", "past", "medieval", "victorian", "noir", "silent-film",
    "documentary-style", "found-footage", "courtroom", "election",
    "politics", "royalty", "inheritance", "wedding", "divorce", "adoption",
    "orphan", "coming-of-age", "midlife", "retirement", "immigration",
    "refugee", "translation", "code-breaking", "hacking", "startup",
    "stock-market", "casino", "poker", "kidnapping", "ransom", "hostage",
    "bodyguard", "assassin", "bounty-hunter", "smuggling", "archaeology",
    "expedition", "first-contact", "parallel-universe", "simulation",
    "artificial-intelligence", "genetics", "nanotech", "steampunk",
    "cyberpunk", "western-frontier", "gold-rush", "prohibition",
    "cold-war", "space-race", "moon-landing", "deep-sea",
]

RESEARCH_TITLE_WORDS: List[str] = [
    "Scalable", "Efficient", "Adaptive", "Distributed", "Incremental",
    "Approximate", "Robust", "Interactive", "Declarative", "Probabilistic",
    "Streaming", "Parallel", "Secure", "Private", "Federated", "Hybrid",
    "Learned", "Automated", "Explainable", "Semantic",
]

RESEARCH_TITLE_TOPICS: List[str] = [
    "Query Processing", "Join Algorithms", "Index Structures",
    "Transaction Management", "Data Cleaning", "Entity Resolution",
    "Schema Mapping", "Data Integration", "Provenance Tracking",
    "Crowdsourcing", "Graph Analytics", "Stream Processing",
    "Columnar Storage", "Query Optimization", "Concurrency Control",
    "Data Exploration", "Visualization Recommendation", "Model Training",
    "Feature Selection", "Representation Learning", "Knowledge Graphs",
    "Question Answering", "Information Extraction", "Text Mining",
    "Recommender Systems", "Anomaly Detection", "Time Series Forecasting",
    "Causal Inference", "Hyperparameter Tuning", "Neural Architecture Search",
]

RESEARCH_TITLE_SUFFIXES: List[str] = [
    "at Scale", "in the Cloud", "on Modern Hardware", "with Guarantees",
    "for Interactive Workloads", "under Uncertainty", "Made Practical",
    "Revisited", "via Sampling", "using Sketches", "with Human Feedback",
    "for Heterogeneous Data", "in Dynamic Environments", "by Example",
]
