"""Global inverted column index over text attributes.

SQuID "uses a global inverted column index, built over all text attributes
and stored in the αDB, to perform fast lookups, matching the provided example
data to entities in the database" (Section 5).  The index maps a normalised
text value to every ``(table, column, row_id)`` where it occurs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .database import Database
from .types import ColumnType, normalize_text


@dataclass(frozen=True)
class Posting:
    """One occurrence of a text value."""

    table: str
    column: str
    row_id: int


class InvertedColumnIndex:
    """Value -> postings over all (or selected) text columns of a database."""

    def __init__(
        self,
        database: Database,
        tables: Optional[Sequence[str]] = None,
    ) -> None:
        self._postings: Dict[str, List[Posting]] = {}
        self._columns: List[Tuple[str, str]] = []
        names = tables if tables is not None else list(database.schema.tables)
        for table in names:
            relation = database.relation(table)
            for col in relation.schema.columns:
                if col.ctype is not ColumnType.TEXT:
                    continue
                self._columns.append((table, col.name))
                for rid, value in enumerate(relation.column(col.name)):
                    if value is None:
                        continue
                    key = normalize_text(value)
                    self._postings.setdefault(key, []).append(
                        Posting(table, col.name, rid)
                    )

    @property
    def indexed_columns(self) -> List[Tuple[str, str]]:
        """All ``(table, column)`` pairs covered by the index."""
        return list(self._columns)

    def lookup(self, value: str) -> List[Posting]:
        """Postings for one text value (case/whitespace-insensitive)."""
        return self._postings.get(normalize_text(value), [])

    def candidate_columns(self, values: Iterable[str]) -> List[Tuple[str, str]]:
        """Columns containing *every* value in ``values``.

        This implements SQuID's first lookup step: given the user's example
        strings, find the attributes (e.g. ``movie.title``) that contain all
        of them, which identifies the candidate entity type.
        """
        values = list(values)
        if not values:
            return []
        survivors: Optional[Set[Tuple[str, str]]] = None
        for value in values:
            cols = {(p.table, p.column) for p in self.lookup(value)}
            survivors = cols if survivors is None else survivors & cols
            if not survivors:
                return []
        assert survivors is not None
        return sorted(survivors)

    def matches_in(self, value: str, table: str, column: str) -> List[int]:
        """Row ids in ``table.column`` holding ``value``."""
        return [
            p.row_id
            for p in self.lookup(value)
            if p.table == table and p.column == column
        ]

    def __len__(self) -> int:
        return len(self._postings)
