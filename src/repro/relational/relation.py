"""Column-oriented relation storage.

A :class:`Relation` stores tuples column-wise in plain Python lists.  This
keeps single-column scans (selectivity computation, aggregation) cheap and
lets statistics code hand columns to numpy without a transpose.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .errors import IntegrityError, SchemaError
from .schema import TableSchema
from .types import coerce_value


class Relation:
    """An in-memory relation (table instance) with column-wise storage."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: List[List[Any]] = [[] for _ in schema.columns]
        self._pk_map: Optional[Dict[Any, int]] = (
            {} if schema.primary_key is not None else None
        )
        self._pk_pos = (
            schema.column_position(schema.primary_key)
            if schema.primary_key is not None
            else -1
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any]) -> int:
        """Append one tuple (declaration order); returns its row id."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"{self.schema.name}: expected {len(self._columns)} values, "
                f"got {len(row)}"
            )
        values = [
            coerce_value(value, col.ctype)
            for value, col in zip(row, self.schema.columns)
        ]
        for value, col in zip(values, self.schema.columns):
            if value is None and not col.nullable:
                raise IntegrityError(
                    f"{self.schema.name}.{col.name} is NOT NULL"
                )
        rid = len(self._columns[0]) if self._columns else 0
        if self._pk_map is not None:
            key = values[self._pk_pos]
            if key in self._pk_map:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in {self.schema.name}"
                )
            self._pk_map[key] = rid
        for store, value in zip(self._columns, values):
            store.append(value)
        return rid

    def insert_dict(self, row: Dict[str, Any]) -> int:
        """Append one tuple given as a ``{column: value}`` mapping."""
        ordered = [row.get(name) for name in self.schema.column_names]
        extra = set(row) - set(self.schema.column_names)
        if extra:
            raise SchemaError(f"{self.schema.name}: unknown columns {sorted(extra)}")
        return self.insert(ordered)

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Bulk append tuples."""
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_rows(self) -> int:
        """Number of stored tuples."""
        return len(self)

    def column(self, name: str) -> List[Any]:
        """The raw value list of one column (do not mutate)."""
        return self._columns[self.schema.column_position(name)]

    def value(self, row_id: int, column: str) -> Any:
        """Value at (row, column)."""
        return self._columns[self.schema.column_position(column)][row_id]

    def row(self, row_id: int) -> Tuple[Any, ...]:
        """One tuple in declaration order."""
        return tuple(col[row_id] for col in self._columns)

    def row_dict(self, row_id: int) -> Dict[str, Any]:
        """One tuple as a ``{column: value}`` mapping."""
        return {
            name: col[row_id]
            for name, col in zip(self.schema.column_names, self._columns)
        }

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over all tuples."""
        for rid in range(len(self)):
            yield self.row(rid)

    def row_ids(self) -> range:
        """All valid row ids."""
        return range(len(self))

    def lookup_pk(self, key: Any) -> Optional[int]:
        """Row id of the tuple with primary key ``key`` (or ``None``)."""
        if self._pk_map is None:
            raise SchemaError(f"{self.schema.name} has no primary key")
        return self._pk_map.get(key)

    def distinct_values(self, column: str) -> List[Any]:
        """Distinct non-NULL values of a column (stable first-seen order)."""
        seen: Dict[Any, None] = {}
        for value in self.column(column):
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema.name}, rows={len(self)})"
