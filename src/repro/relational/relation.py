"""Column-oriented relation storage.

A :class:`Relation` stores tuples column-wise in plain Python lists.  This
keeps single-column scans (selectivity computation, aggregation) cheap and
lets statistics code hand columns to numpy without a transpose.

For the vectorized execution backend the relation additionally exposes
cached numpy *array views* of its columns (:meth:`Relation.column_array`,
:meth:`Relation.sorted_view`).  Views are built lazily on first use and
invalidated whenever the relation mutates; the ``version`` counter (plus a
process-unique ``uid``) lets downstream caches — the SQLite backend's
loaded-table mirror, the shared query-result cache — detect staleness
without subscribing to mutation events.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .errors import IntegrityError, SchemaError
from .schema import TableSchema
from .types import ColumnType, coerce_value

_RELATION_UIDS = itertools.count()


class ColumnArray(NamedTuple):
    """A numpy view of one column: values plus a non-NULL mask.

    ``values`` is ``int64``/``float64`` for numeric columns (NULL slots
    hold a fill value — 0 / NaN — and must be ignored via ``mask``) and
    ``object`` otherwise.  ``mask[i]`` is True iff row ``i`` is non-NULL.
    """

    values: np.ndarray
    mask: np.ndarray


class SortedView(NamedTuple):
    """Non-NULL column values in ascending order, with their row ids.

    The vectorized backend uses this as its "index": equality and range
    probes become :func:`numpy.searchsorted` calls, and join build sides
    skip the per-query sort.
    """

    values: np.ndarray
    row_ids: np.ndarray


class Relation:
    """An in-memory relation (table instance) with column-wise storage."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: List[List[Any]] = [[] for _ in schema.columns]
        self._pk_map: Optional[Dict[Any, int]] = (
            {} if schema.primary_key is not None else None
        )
        self._pk_pos = (
            schema.column_position(schema.primary_key)
            if schema.primary_key is not None
            else -1
        )
        self._uid = next(_RELATION_UIDS)
        self._version = 0
        self._array_cache: Dict[str, ColumnArray] = {}
        self._sorted_cache: Dict[str, Optional[SortedView]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any]) -> int:
        """Append one tuple (declaration order); returns its row id."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"{self.schema.name}: expected {len(self._columns)} values, "
                f"got {len(row)}"
            )
        values = [
            coerce_value(value, col.ctype)
            for value, col in zip(row, self.schema.columns)
        ]
        for value, col in zip(values, self.schema.columns):
            if value is None and not col.nullable:
                raise IntegrityError(
                    f"{self.schema.name}.{col.name} is NOT NULL"
                )
        rid = len(self._columns[0]) if self._columns else 0
        if self._pk_map is not None:
            key = values[self._pk_pos]
            if key in self._pk_map:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in {self.schema.name}"
                )
            self._pk_map[key] = rid
        for store, value in zip(self._columns, values):
            store.append(value)
        self._version += 1
        if self._array_cache:
            self._array_cache.clear()
        if self._sorted_cache:
            self._sorted_cache.clear()
        return rid

    def insert_dict(self, row: Dict[str, Any]) -> int:
        """Append one tuple given as a ``{column: value}`` mapping."""
        ordered = [row.get(name) for name in self.schema.column_names]
        extra = set(row) - set(self.schema.column_names)
        if extra:
            raise SchemaError(f"{self.schema.name}: unknown columns {sorted(extra)}")
        return self.insert(ordered)

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Bulk append tuples."""
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_rows(self) -> int:
        """Number of stored tuples."""
        return len(self)

    def column(self, name: str) -> List[Any]:
        """The raw value list of one column (do not mutate)."""
        return self._columns[self.schema.column_position(name)]

    def value(self, row_id: int, column: str) -> Any:
        """Value at (row, column)."""
        return self._columns[self.schema.column_position(column)][row_id]

    def row(self, row_id: int) -> Tuple[Any, ...]:
        """One tuple in declaration order."""
        return tuple(col[row_id] for col in self._columns)

    def row_dict(self, row_id: int) -> Dict[str, Any]:
        """One tuple as a ``{column: value}`` mapping."""
        return {
            name: col[row_id]
            for name, col in zip(self.schema.column_names, self._columns)
        }

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over all tuples."""
        for rid in range(len(self)):
            yield self.row(rid)

    def row_ids(self) -> range:
        """All valid row ids."""
        return range(len(self))

    def lookup_pk(self, key: Any) -> Optional[int]:
        """Row id of the tuple with primary key ``key`` (or ``None``)."""
        if self._pk_map is None:
            raise SchemaError(f"{self.schema.name} has no primary key")
        return self._pk_map.get(key)

    # ------------------------------------------------------------------
    # cached numpy views (vectorized backend substrate)
    # ------------------------------------------------------------------
    @property
    def uid(self) -> int:
        """Process-unique id, distinguishing re-created same-name tables."""
        return self._uid

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every insert."""
        return self._version

    def column_array(self, name: str) -> ColumnArray:
        """Cached numpy view of one column (invalidated on mutation)."""
        cached = self._array_cache.get(name)
        if cached is not None:
            return cached
        position = self.schema.column_position(name)
        ctype = self.schema.columns[position].ctype
        raw = self._columns[position]
        n = len(raw)
        mask = np.fromiter((v is not None for v in raw), dtype=bool, count=n)
        if ctype is ColumnType.INT:
            try:
                values = np.fromiter(
                    (v if v is not None else 0 for v in raw),
                    dtype=np.int64,
                    count=n,
                )
            except OverflowError:
                values = np.array(raw, dtype=object)
        elif ctype is ColumnType.FLOAT:
            values = np.fromiter(
                (v if v is not None else np.nan for v in raw),
                dtype=np.float64,
                count=n,
            )
        else:
            values = np.empty(n, dtype=object)
            values[:] = raw
        view = ColumnArray(values=values, mask=mask)
        self._array_cache[name] = view
        return view

    def sorted_view(self, name: str) -> Optional[SortedView]:
        """Cached ascending view of one column's non-NULL values.

        Returns ``None`` when the column's values do not admit a total
        order (mixed-type object columns); callers fall back to hash-based
        strategies in that case.
        """
        if name in self._sorted_cache:
            return self._sorted_cache[name]
        arr = self.column_array(name)
        row_ids = np.nonzero(arr.mask)[0]
        values = arr.values[row_ids]
        view: Optional[SortedView]
        try:
            order = np.argsort(values, kind="stable")
        except TypeError:
            view = None
        else:
            view = SortedView(values=values[order], row_ids=row_ids[order])
        self._sorted_cache[name] = view
        return view

    def distinct_values(self, column: str) -> List[Any]:
        """Distinct non-NULL values of a column (stable first-seen order)."""
        seen: Dict[Any, None] = {}
        for value in self.column(column):
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema.name}, rows={len(self)})"
