"""In-memory relational engine substrate.

Stands in for the PostgreSQL instance of the paper's testbed: typed
column-oriented relations, a key--foreign-key schema graph, secondary
indexes (hash / sorted / composite), and the global inverted column index
SQuID's entity lookup relies on.
"""

from .database import Database
from .errors import (
    IntegrityError,
    QueryError,
    RelationalError,
    SchemaError,
    TypeCoercionError,
    UnknownColumnError,
    UnknownTableError,
)
from .indexes import CompositeHashIndex, HashIndex, SortedIndex
from .inverted import InvertedColumnIndex, Posting
from .relation import ColumnArray, Relation, SortedView
from .schema import ColumnDef, DatabaseSchema, FkEdge, ForeignKey, TableSchema
from .statistics import (
    DEFAULT_SAMPLE_BUDGET,
    ColumnStatistics,
    Histogram,
    column_statistics,
    sample_seed,
)
from .types import ColumnType, coerce_value, normalize_text

__all__ = [
    "ColumnArray",
    "ColumnDef",
    "ColumnStatistics",
    "ColumnType",
    "DEFAULT_SAMPLE_BUDGET",
    "Histogram",
    "CompositeHashIndex",
    "Database",
    "DatabaseSchema",
    "FkEdge",
    "ForeignKey",
    "HashIndex",
    "IntegrityError",
    "InvertedColumnIndex",
    "Posting",
    "QueryError",
    "Relation",
    "RelationalError",
    "SchemaError",
    "SortedIndex",
    "SortedView",
    "TableSchema",
    "TypeCoercionError",
    "UnknownColumnError",
    "UnknownTableError",
    "coerce_value",
    "column_statistics",
    "normalize_text",
    "sample_seed",
]
