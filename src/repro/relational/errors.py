"""Exception hierarchy for the relational engine substrate.

All engine-level failures derive from :class:`RelationalError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for every error raised by :mod:`repro.relational`."""


class SchemaError(RelationalError):
    """A schema definition is inconsistent (duplicate columns, bad FK, ...)."""


class UnknownTableError(RelationalError):
    """A referenced table does not exist in the database."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(RelationalError):
    """A referenced column does not exist in a table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class TypeCoercionError(RelationalError):
    """A value could not be coerced to the declared column type."""


class IntegrityError(RelationalError):
    """A primary-key or foreign-key constraint was violated."""


class QueryError(RelationalError):
    """A query AST is malformed or references missing schema objects."""
