"""Secondary indexes: hash index for point lookups, sorted index for ranges.

The paper's abduction phase issues *point queries to retrieve semantic
properties of the entities, using B-tree indexes* (Section 7.2).  The sorted
index here plays the B-tree's role: O(log n) range scans via bisect; the
hash index serves equality lookups and hash joins.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .relation import Relation


class HashIndex:
    """Equality index: value -> list of row ids."""

    def __init__(self, relation: Relation, column: str) -> None:
        self.relation = relation
        self.column = column
        self._map: Dict[Hashable, List[int]] = {}
        for rid, value in enumerate(relation.column(column)):
            if value is None:
                continue
            self._map.setdefault(value, []).append(rid)

    def lookup(self, value: Hashable) -> List[int]:
        """Row ids whose column equals ``value`` (empty list if none)."""
        return self._map.get(value, [])

    def lookup_many(self, values: Iterable[Hashable]) -> List[int]:
        """Row ids whose column equals any of ``values`` (deduplicated)."""
        out: List[int] = []
        seen = set()
        for value in values:
            for rid in self._map.get(value, []):
                if rid not in seen:
                    seen.add(rid)
                    out.append(rid)
        return out

    def distinct_count(self) -> int:
        """Number of distinct indexed values."""
        return len(self._map)

    def keys(self) -> Iterable[Hashable]:
        """All distinct indexed values."""
        return self._map.keys()

    def __contains__(self, value: Hashable) -> bool:
        return value in self._map


class SortedIndex:
    """Ordered index over a numeric column supporting range scans."""

    def __init__(self, relation: Relation, column: str) -> None:
        self.relation = relation
        self.column = column
        pairs: List[Tuple[Any, int]] = [
            (value, rid)
            for rid, value in enumerate(relation.column(column))
            if value is not None
        ]
        pairs.sort(key=lambda p: p[0])
        self._values: List[Any] = [p[0] for p in pairs]
        self._row_ids: List[int] = [p[1] for p in pairs]

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> List[int]:
        """Row ids with ``low <= value <= high`` (bounds optional)."""
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._values, low)
        else:
            lo = bisect.bisect_right(self._values, low)
        if high is None:
            hi = len(self._values)
        elif high_inclusive:
            hi = bisect.bisect_right(self._values, high)
        else:
            hi = bisect.bisect_left(self._values, high)
        return self._row_ids[lo:hi]

    def count_leq(self, value: Any) -> int:
        """Number of non-NULL entries with ``entry <= value``.

        This is the primitive behind the paper's *smart selectivity
        computation*: prefix counts let the αDB answer any range
        selectivity with two lookups.
        """
        return bisect.bisect_right(self._values, value)

    def min_value(self) -> Optional[Any]:
        """Smallest indexed value, or ``None`` for an empty index."""
        return self._values[0] if self._values else None

    def max_value(self) -> Optional[Any]:
        """Largest indexed value, or ``None`` for an empty index."""
        return self._values[-1] if self._values else None

    def __len__(self) -> int:
        return len(self._values)


class CompositeHashIndex:
    """Equality index over a tuple of columns: (v1, v2, ...) -> row ids."""

    def __init__(self, relation: Relation, columns: Sequence[str]) -> None:
        self.relation = relation
        self.columns = tuple(columns)
        stores = [relation.column(c) for c in self.columns]
        self._map: Dict[Tuple[Hashable, ...], List[int]] = {}
        for rid in relation.row_ids():
            key = tuple(store[rid] for store in stores)
            if any(part is None for part in key):
                continue
            self._map.setdefault(key, []).append(rid)

    def lookup(self, key: Tuple[Hashable, ...]) -> List[int]:
        """Row ids matching the composite key."""
        return self._map.get(tuple(key), [])

    def keys(self) -> Iterable[Tuple[Hashable, ...]]:
        """All distinct composite keys."""
        return self._map.keys()

    def __contains__(self, key: Tuple[Hashable, ...]) -> bool:
        return tuple(key) in self._map
