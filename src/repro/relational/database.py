"""The :class:`Database`: named relations plus schema graph plus index cache.

This is the substrate standing in for the PostgreSQL instance of the paper's
experiments: it owns base tables, the derived relations the offline module
materialises, and lazily-built secondary indexes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import IntegrityError, UnknownTableError
from .indexes import CompositeHashIndex, HashIndex, SortedIndex
from .relation import Relation
from .schema import DatabaseSchema, TableSchema


class Database:
    """A collection of relations sharing one schema graph."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.schema = DatabaseSchema()
        self._relations: Dict[str, Relation] = {}
        self._hash_indexes: Dict[Tuple[str, str], HashIndex] = {}
        self._sorted_indexes: Dict[Tuple[str, str], SortedIndex] = {}
        self._composite_indexes: Dict[Tuple[str, Tuple[str, ...]], CompositeHashIndex] = {}

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Relation:
        """Create an empty relation from ``schema`` and register it."""
        self.schema.add_table(schema)
        relation = Relation(schema)
        self._relations[schema.name] = relation
        return relation

    def drop_table(self, name: str) -> None:
        """Remove a relation and any indexes built on it."""
        if name not in self._relations:
            raise UnknownTableError(name)
        del self._relations[name]
        del self.schema.tables[name]
        self._hash_indexes = {
            key: idx for key, idx in self._hash_indexes.items() if key[0] != name
        }
        self._sorted_indexes = {
            key: idx for key, idx in self._sorted_indexes.items() if key[0] != name
        }
        self._composite_indexes = {
            key: idx for key, idx in self._composite_indexes.items() if key[0] != name
        }

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def insert(self, table: str, row: Sequence[Any]) -> int:
        """Insert one tuple; invalidates that table's cached indexes."""
        rid = self.relation(table).insert(row)
        self.invalidate_indexes(table)
        return rid

    def bulk_load(self, table: str, rows: Iterable[Sequence[Any]]) -> None:
        """Insert many tuples; invalidates that table's cached indexes."""
        self.relation(table).extend(rows)
        self.invalidate_indexes(table)

    def invalidate_indexes(self, table: str) -> None:
        """Drop cached indexes for ``table`` (called on mutation)."""
        self._hash_indexes = {
            key: idx for key, idx in self._hash_indexes.items() if key[0] != table
        }
        self._sorted_indexes = {
            key: idx for key, idx in self._sorted_indexes.items() if key[0] != table
        }
        self._composite_indexes = {
            key: idx for key, idx in self._composite_indexes.items() if key[0] != table
        }

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def hash_index(self, table: str, column: str) -> HashIndex:
        """Get (building on first use) the hash index on ``table.column``."""
        key = (table, column)
        index = self._hash_indexes.get(key)
        if index is None:
            index = HashIndex(self.relation(table), column)
            self._hash_indexes[key] = index
        return index

    def sorted_index(self, table: str, column: str) -> SortedIndex:
        """Get (building on first use) the sorted index on ``table.column``."""
        key = (table, column)
        index = self._sorted_indexes.get(key)
        if index is None:
            index = SortedIndex(self.relation(table), column)
            self._sorted_indexes[key] = index
        return index

    def composite_index(self, table: str, columns: Sequence[str]) -> CompositeHashIndex:
        """Get (building on first use) a composite equality index."""
        key = (table, tuple(columns))
        index = self._composite_indexes.get(key)
        if index is None:
            index = CompositeHashIndex(self.relation(table), columns)
            self._composite_indexes[key] = index
        return index

    # ------------------------------------------------------------------
    # integrity / stats
    # ------------------------------------------------------------------
    def check_integrity(self) -> None:
        """Validate schema references and every foreign-key value.

        Raises:
            IntegrityError: if a child row references a missing parent key.
        """
        self.schema.validate()
        for schema in self.schema.tables.values():
            relation = self.relation(schema.name)
            for fk in schema.foreign_keys:
                parent = self.relation(fk.ref_table)
                exists: Callable[[Any], Optional[object]]
                if parent.schema.primary_key == fk.ref_column:
                    exists = parent.lookup_pk
                else:
                    index = self.hash_index(fk.ref_table, fk.ref_column)
                    exists = lambda key, _idx=index: (_idx.lookup(key) or None)
                for value in relation.column(fk.column):
                    if value is None:
                        continue
                    if exists(value) is None:
                        raise IntegrityError(
                            f"{schema.name}.{fk.column}={value!r} has no parent "
                            f"in {fk.ref_table}.{fk.ref_column}"
                        )

    def table_names(self) -> List[str]:
        """Names of all relations."""
        return list(self._relations)

    def row_counts(self) -> Dict[str, int]:
        """Cardinality of every relation."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def total_rows(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name}, tables={len(self._relations)})"
