"""Per-column table statistics: counts, histograms, reservoir samples.

The αDB's family-level selectivity store (:mod:`repro.core.statistics`)
answers "how many *entities* satisfy φ"; the estimator behind dispatch v2
needs the complementary *physical* view — per (table, column):

* row / non-NULL / distinct counts and the maximum value multiplicity
  (the hard upper bound on equality selectivity and join fanout);
* min/max of orderable columns plus a small equi-width histogram;
* a deterministic sample of the non-NULL values — the whole column when
  it fits the sample budget (``exact=True``: every derived quantity is a
  ground truth, not an estimate), a seeded without-replacement draw
  otherwise.

Everything here is a pure function of one :class:`~repro.relational.
relation.Relation` snapshot; staleness handling (the ``(uid, version)``
stamp memo) lives with the consumer in
:mod:`repro.sql.estimator.sampler`.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .relation import Relation

#: Default cap on sampled values per column.  Columns at or under the
#: budget are scanned in full (exact statistics).
DEFAULT_SAMPLE_BUDGET = 1024

#: Bins of the equi-width histogram attached to numeric columns.
HISTOGRAM_BINS = 16


def sample_seed(table: str, column: str) -> int:
    """Deterministic per-(table, column) sampling seed.

    Derived from the *names* only — never from memory addresses or
    relation uids — so samples (and every estimate built on them) are
    identical across processes, fork workers, and replayed sessions.
    """
    return zlib.crc32(f"{table}\x1f{column}".encode("utf-8"))


@dataclass(frozen=True)
class Histogram:
    """Equi-width histogram over a numeric column's sampled values."""

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)


@dataclass(frozen=True)
class ColumnStatistics:
    """One column's physical statistics (possibly sample-estimated)."""

    table: str
    column: str
    rows: int
    """Total rows of the relation (NULLs included)."""

    non_null: int
    """Rows with a non-NULL value in this column."""

    distinct: int
    """Distinct non-NULL values — exact when ``exact``, estimated
    otherwise (first-occurrence scale-up of the sample's singletons)."""

    max_multiplicity: int
    """Largest number of rows sharing one value — exact when ``exact``;
    otherwise a scaled sample estimate (*not* a guaranteed bound)."""

    min_value: Optional[Any]
    max_value: Optional[Any]
    """Domain extremes; ``None`` for empty or unorderable columns."""

    histogram: Optional[Histogram]
    """Equi-width histogram (numeric columns only)."""

    sample: Tuple[Any, ...]
    """Sampled non-NULL values; the full column when ``exact``."""

    value_counts: Optional[Dict[Any, int]]
    """Per-value counts of the *sample* (kept when the domain is small
    enough to be useful for equality probes)."""

    exact: bool
    """True when ``sample`` is the entire non-NULL column, making every
    count above a ground truth."""

    @property
    def null_fraction(self) -> float:
        """Fraction of rows that are NULL in this column."""
        if self.rows == 0:
            return 0.0
        return 1.0 - self.non_null / self.rows

    @property
    def sample_size(self) -> int:
        return len(self.sample)

    def mean_multiplicity(self) -> float:
        """Average rows per distinct value (>= 1 when non-empty)."""
        if self.distinct == 0:
            return 0.0
        return self.non_null / self.distinct


#: Keep per-value sample counts only while the dict stays cheap.
_VALUE_COUNT_CAP = 4096


def _orderable_extremes(values: np.ndarray) -> Tuple[Optional[Any], Optional[Any]]:
    if values.size == 0:
        return None, None
    try:
        return values.min().item() if hasattr(values.min(), "item") else min(values), (
            values.max().item() if hasattr(values.max(), "item") else max(values)
        )
    except TypeError:  # mixed, unorderable object values
        return None, None


def _count_values(values: np.ndarray) -> Counter:
    try:
        uniques, counts = np.unique(values, return_counts=True)
    except TypeError:  # unorderable object values: hash-based counting
        return Counter(values.tolist())
    return Counter(dict(zip(uniques.tolist(), (int(c) for c in counts))))


def _numeric_histogram(values: np.ndarray) -> Optional[Histogram]:
    if values.size == 0 or values.dtype == object:
        return None
    if not np.issubdtype(values.dtype, np.number):
        return None
    finite = values[np.isfinite(values.astype(np.float64, copy=False))]
    if finite.size == 0:
        return None
    counts, edges = np.histogram(
        finite.astype(np.float64, copy=False), bins=HISTOGRAM_BINS
    )
    return Histogram(
        edges=tuple(float(e) for e in edges),
        counts=tuple(int(c) for c in counts),
    )


def column_statistics(
    relation: Relation,
    column: str,
    *,
    sample_budget: int = DEFAULT_SAMPLE_BUDGET,
    seed: Optional[int] = None,
) -> ColumnStatistics:
    """Compute one column's statistics from the relation's cached view.

    Columns whose non-NULL count fits ``sample_budget`` are scanned in
    full; larger columns get a seeded without-replacement sample and the
    distinct / multiplicity figures become estimates.
    """
    if sample_budget < 1:
        raise ValueError(f"sample_budget must be >= 1, got {sample_budget}")
    table = relation.schema.name
    arr = relation.column_array(column)
    rows = len(relation)
    non_null_idx = np.nonzero(arr.mask)[0]
    non_null = int(non_null_idx.size)
    values = arr.values[non_null_idx]

    exact = non_null <= sample_budget
    if exact:
        sampled = values
    else:
        rng = np.random.default_rng(
            seed if seed is not None else sample_seed(table, column)
        )
        pick = rng.choice(non_null, size=sample_budget, replace=False)
        pick.sort()  # deterministic order independent of choice internals
        sampled = values[pick]

    counts = _count_values(sampled)
    sample_size = len(sampled)
    sample_distinct = len(counts)
    sample_max_mult = max(counts.values(), default=0)

    if exact:
        distinct = sample_distinct
        max_multiplicity = sample_max_mult
    else:
        # First-occurrence scale-up: values seen once in the sample hint
        # at unseen domain mass (a lightweight GEE-style correction).
        singletons = sum(1 for c in counts.values() if c == 1)
        scale = non_null / sample_size if sample_size else 0.0
        distinct = min(
            non_null,
            sample_distinct + int(round(singletons * (scale - 1.0))),
        )
        distinct = max(distinct, sample_distinct)
        max_multiplicity = min(
            non_null, max(sample_max_mult, int(round(sample_max_mult * scale)))
        )

    # The schema's primary key is exact by construction regardless of
    # sampling: unique and non-NULL.
    if relation.schema.primary_key == column:
        distinct = non_null
        max_multiplicity = 1 if non_null else 0

    min_value, max_value = _orderable_extremes(values if exact else sampled)
    histogram = _numeric_histogram(sampled)

    value_counts = dict(counts) if len(counts) <= _VALUE_COUNT_CAP else None

    return ColumnStatistics(
        table=table,
        column=column,
        rows=rows,
        non_null=non_null,
        distinct=distinct,
        max_multiplicity=max_multiplicity,
        min_value=min_value,
        max_value=max_value,
        histogram=histogram,
        sample=tuple(sampled.tolist()),
        value_counts=value_counts,
        exact=exact,
    )
