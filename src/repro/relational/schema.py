"""Schema objects: column definitions, foreign keys, table and database schemas.

The database schema doubles as the *schema graph* the paper's offline module
walks to discover fact tables and derived semantic properties (Section 5):
nodes are tables, edges are key--foreign-key constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .errors import SchemaError, UnknownColumnError, UnknownTableError
from .types import ColumnType


@dataclass(frozen=True)
class ColumnDef:
    """Definition of a single column."""

    name: str
    ctype: ColumnType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A key--foreign-key constraint ``column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.column} -> {self.ref_table}.{self.ref_column}"


class TableSchema:
    """Schema of one relation: ordered columns, primary key, foreign keys."""

    def __init__(
        self,
        name: str,
        columns: Sequence[ColumnDef],
        primary_key: Optional[str] = None,
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        seen = set()
        for col in columns:
            if col.name in seen:
                raise SchemaError(f"duplicate column {col.name!r} in {name!r}")
            seen.add(col.name)
        if primary_key is not None and primary_key not in seen:
            raise UnknownColumnError(name, primary_key)
        for fk in foreign_keys:
            if fk.column not in seen:
                raise UnknownColumnError(name, fk.column)
        self.name = name
        self.columns: Tuple[ColumnDef, ...] = tuple(columns)
        self.primary_key = primary_key
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(self.columns)}

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Names of all columns, in declaration order."""
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        """Whether a column named ``name`` exists."""
        return name in self._index

    def column_position(self, name: str) -> int:
        """Ordinal position of a column; raises if unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def column_def(self, name: str) -> ColumnDef:
        """The :class:`ColumnDef` for ``name``; raises if unknown."""
        return self.columns[self.column_position(name)]

    def column_type(self, name: str) -> ColumnType:
        """The :class:`ColumnType` of column ``name``."""
        return self.column_def(name).ctype

    def foreign_key_for(self, column: str) -> Optional[ForeignKey]:
        """The foreign key declared on ``column``, if any."""
        for fk in self.foreign_keys:
            if fk.column == column:
                return fk
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name}:{c.ctype.value}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"


@dataclass(frozen=True)
class FkEdge:
    """One key--foreign-key edge of the schema graph.

    The edge is directed from the referencing (child) table to the referenced
    (parent) table, e.g. ``castinfo.person_id -> person.id``.
    """

    src_table: str
    src_column: str
    dst_table: str
    dst_column: str

    def reversed(self) -> "FkEdge":
        """The same join edge seen from the parent side."""
        return FkEdge(self.dst_table, self.dst_column, self.src_table, self.src_column)


@dataclass
class DatabaseSchema:
    """All table schemas plus the key--foreign-key schema graph."""

    tables: Dict[str, TableSchema] = field(default_factory=dict)

    def add_table(self, schema: TableSchema) -> None:
        """Register a table schema; referenced tables may be added later."""
        if schema.name in self.tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        self.tables[schema.name] = schema

    def table(self, name: str) -> TableSchema:
        """Look up a table schema; raises :class:`UnknownTableError`."""
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def validate(self) -> None:
        """Check that every foreign key points at an existing PK column."""
        for schema in self.tables.values():
            for fk in schema.foreign_keys:
                target = self.table(fk.ref_table)
                if not target.has_column(fk.ref_column):
                    raise UnknownColumnError(fk.ref_table, fk.ref_column)

    def fk_edges(self) -> Iterator[FkEdge]:
        """All FK edges, directed child -> parent."""
        for schema in self.tables.values():
            for fk in schema.foreign_keys:
                yield FkEdge(schema.name, fk.column, fk.ref_table, fk.ref_column)

    def edges_from(self, table: str) -> List[FkEdge]:
        """All join edges incident to ``table`` (both directions).

        Parent->child edges are the reversal of declared FK edges; the
        offline module uses them to hop from an entity table into its fact
        tables.
        """
        out: List[FkEdge] = []
        for edge in self.fk_edges():
            if edge.src_table == table:
                out.append(edge)
            if edge.dst_table == table:
                out.append(edge.reversed())
        return out

    def edges_between(self, left: str, right: str) -> List[FkEdge]:
        """Join edges connecting two specific tables (either direction)."""
        return [e for e in self.edges_from(left) if e.dst_table == right]

    def referencing_tables(self, table: str) -> List[Tuple[str, ForeignKey]]:
        """Tables holding a foreign key into ``table`` (its fact tables)."""
        out: List[Tuple[str, ForeignKey]] = []
        for schema in self.tables.values():
            for fk in schema.foreign_keys:
                if fk.ref_table == table:
                    out.append((schema.name, fk))
        return out

    def __contains__(self, name: str) -> bool:
        return name in self.tables
