"""Column types and value coercion for the relational engine.

The engine supports four scalar types (INT, FLOAT, TEXT, BOOL) plus SQL-style
NULL, represented by Python ``None``.  Coercion is strict: a value that cannot
be represented in the declared type raises :class:`TypeCoercionError` instead
of being silently truncated.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from .errors import TypeCoercionError


class ColumnType(enum.Enum):
    """Scalar type of a column."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type support ordering/arithmetic."""
        return self in (ColumnType.INT, ColumnType.FLOAT)

    @property
    def is_text(self) -> bool:
        """Whether values of this type are strings."""
        return self is ColumnType.TEXT


def coerce_value(value: Any, ctype: ColumnType) -> Optional[Any]:
    """Coerce ``value`` to the Python representation of ``ctype``.

    ``None`` always passes through (SQL NULL).  Booleans are rejected for
    INT/FLOAT columns so that ``True`` does not masquerade as ``1``.

    Raises:
        TypeCoercionError: if the value cannot represent the declared type.
    """
    if value is None:
        return None
    if ctype is ColumnType.INT:
        if isinstance(value, bool):
            raise TypeCoercionError(f"bool {value!r} is not an INT")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeCoercionError(f"cannot coerce {value!r} to INT")
    if ctype is ColumnType.FLOAT:
        if isinstance(value, bool):
            raise TypeCoercionError(f"bool {value!r} is not a FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeCoercionError(f"cannot coerce {value!r} to FLOAT")
    if ctype is ColumnType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeCoercionError(f"cannot coerce {value!r} to TEXT")
    if ctype is ColumnType.BOOL:
        if isinstance(value, bool):
            return value
        raise TypeCoercionError(f"cannot coerce {value!r} to BOOL")
    raise TypeCoercionError(f"unsupported column type: {ctype!r}")


def normalize_text(value: str) -> str:
    """Normalise a text value for case-insensitive index lookups.

    The inverted column index stores and queries values through this
    function, mirroring SQuID's case-insensitive entity lookup.
    """
    return " ".join(value.strip().lower().split())
