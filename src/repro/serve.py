"""Async serving layer: concurrent query-intent discovery requests.

The paper frames SQuID as an interactive system — abduction must answer
"in real time" while a user is typing examples.  This module is the
process that does so for *many* users at once:

* :class:`DiscoveryServer` owns one warm
  :class:`~repro.core.session.DiscoverySession` (probe maps + column
  views prebuilt, persistent worker pool started) and an
  :class:`~repro.sql.engine.AsyncExecutionBackend` for result
  materialisation, and turns JSON requests into JSON responses on an
  asyncio event loop;
* :func:`serve_stdio` speaks JSON-lines over stdin/stdout (one request
  object per line, one response object per line — trivially scriptable
  and what the ``repro-squid serve`` CLI runs by default);
* :func:`start_http_server` exposes the same handler over a minimal
  HTTP/1.1 endpoint (``POST /discover``, ``GET /stats``,
  ``GET /healthz``) built on ``asyncio.start_server`` — no web framework
  required.

Responses are deterministic: the payload (entity, SQL, sorted result
rows) is byte-identical whether a request is served alone, among eight
concurrent ones, or by the sequential reference loop
(:func:`sequential_response`); only the advisory ``seconds`` timing
field varies, which is why it lives outside the deterministic payload
comparison (tests strip it).

Request schema (all fields except ``examples`` optional)::

    {"id": 7, "examples": ["Tom Cruise", "Nicole Kidman"], "limit": 25}

``examples`` may also be a single ``"A;B;C"`` string, mirroring the CLI.
``limit`` truncates the returned ``rows`` (the full cardinality is
always reported as ``row_count``).
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, TextIO

from .core.config import SquidConfig
from .core.lookup import ExampleLookupError
from .core.session import DiscoverySession
from .core.squid import SquidSystem
from .eval.metrics import latency_summary
from .sql.engine import AsyncExecutionBackend

#: Default cap on concurrently admitted stdio requests: enough to keep
#: every pool worker busy without unbounded task growth on a fast pipe.
DEFAULT_MAX_PENDING = 64

#: Latency samples retained for the stats report (ring buffer).
STATS_WINDOW = 4096


def parse_limit(raw: Any) -> Optional[int]:
    """Normalise a request's optional ``limit`` field (None = no cap)."""
    if raw is None:
        return None
    limit = int(raw)
    if limit < 0:
        raise ValueError(f"'limit' must be >= 0, got {limit}")
    return limit


def parse_examples(raw: Any) -> List[str]:
    """Normalise a request's ``examples`` field (list or ``"A;B"``)."""
    if isinstance(raw, str):
        parts = raw.split(";")
    elif isinstance(raw, (list, tuple)):
        parts = [str(part) for part in raw]
    else:
        raise ValueError("'examples' must be a list or a 'A;B;C' string")
    examples = [part.strip() for part in parts if str(part).strip()]
    if not examples:
        raise ValueError("no examples provided")
    return examples


def encode_response(response: Dict[str, Any]) -> str:
    """Canonical JSON encoding (sorted keys, no whitespace) — the byte
    form the equivalence tests and benchmark compare."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"))


class ServerStats:
    """Per-request timing counters (thread-safe enough: appends only)."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self.requests = 0
        self.errors = 0
        self._latencies: Deque[float] = deque(maxlen=STATS_WINDOW)

    def record(self, seconds: float, ok: bool) -> None:
        self.requests += 1
        if not ok:
            self.errors += 1
        self._latencies.append(seconds)

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": self.requests,
            "errors": self.errors,
        }
        out.update(latency_summary(list(self._latencies)))
        return out


def _result_payload(
    request_id: Any,
    result,
    values: Sequence[Any],
    limit: Optional[int],
) -> Dict[str, Any]:
    """The deterministic response body shared by async and sequential
    paths — any divergence here would break byte-identity."""
    rows = sorted(map(str, values))
    return {
        "id": request_id,
        "ok": True,
        "entity": result.entity.table,
        "sql": result.sql,
        "original_sql": result.original_sql,
        "row_count": len(rows),
        "rows": rows if limit is None else rows[:limit],
    }


def _error_payload(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": f"{type(exc).__name__}: {exc}",
    }


class DiscoveryServer:
    """One warm discovery session behind an async request handler."""

    def __init__(
        self,
        system: SquidSystem,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
        config: Optional[SquidConfig] = None,
        warm: bool = True,
    ) -> None:
        self.system = system
        self.config = config or system.config
        self.session: DiscoverySession = system.session(
            jobs=jobs, executor=executor
        )
        self.async_backend = AsyncExecutionBackend(
            system.backend, max_workers=max(2, self.session.jobs)
        )
        self.stats = ServerStats()
        if warm:
            self.warm()

    def warm(self) -> None:
        """Prebuild column/sorted views and probe maps, then start the
        pool so forked workers inherit all of it copy-on-write."""
        self.session.warm()
        self.session.start_pool()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request → one response dict (never raises)."""
        start = time.perf_counter()
        request_id = request.get("id")
        try:
            limit = parse_limit(request.get("limit"))
            examples = parse_examples(request.get("examples"))
            outcome = await self.session.discover_async(examples, self.config)
            if outcome.error is not None:
                response = _error_payload(request_id, outcome.error)
            else:
                result = outcome.result
                assert result is not None
                values = (
                    await self.async_backend.execute(result.query)
                ).single_column()
                response = _result_payload(request_id, result, values, limit)
        except Exception as exc:
            response = _error_payload(request_id, exc)
        seconds = time.perf_counter() - start
        self.stats.record(seconds, bool(response.get("ok")))
        response["seconds"] = round(seconds, 6)
        return response

    async def handle_line(self, line: str) -> Dict[str, Any]:
        """One JSON-lines request string → response dict."""
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            self.stats.record(0.0, False)
            return _error_payload(None, exc)
        return await self.handle(request)

    def stats_snapshot(self) -> Dict[str, Any]:
        """Server timing stats merged with session/pool/cache counters."""
        out = self.stats.snapshot()
        out.update(self.session.stats())
        out.update(self.async_backend.stats())
        return out

    def close(self) -> None:
        self.session.close()
        self.async_backend.close()


def sequential_response(
    system: SquidSystem,
    request: Dict[str, Any],
    config: Optional[SquidConfig] = None,
) -> Dict[str, Any]:
    """The sequential reference: what one blocking ``discover`` call
    would answer.  The serving equivalence suite requires the async
    concurrent payloads to match this byte for byte (minus ``seconds``).
    """
    request_id = request.get("id")
    try:
        limit = parse_limit(request.get("limit"))
        examples = parse_examples(request.get("examples"))
        result = system.discover(examples, config)
        values = system.backend.execute(result.query).single_column()
        return _result_payload(request_id, result, values, limit)
    except (ExampleLookupError, ValueError) as exc:
        return _error_payload(request_id, exc)


async def replay_requests(
    server: DiscoveryServer,
    requests: Sequence[Dict[str, Any]],
    max_pending: int = 8,
) -> List[Dict[str, Any]]:
    """Drive a request stream through the server concurrently.

    Admits up to ``max_pending`` requests at once (the synthetic load
    driver's stand-in for many simultaneous clients) and returns the
    responses *in request order*, so callers can zip them against
    :func:`sequential_response` references for byte comparison.
    """
    if max_pending < 1:
        raise ValueError(f"max_pending must be >= 1, got {max_pending}")
    admission = asyncio.Semaphore(max_pending)

    async def run_one(request: Dict[str, Any]) -> Dict[str, Any]:
        async with admission:
            return await server.handle(request)

    return list(await asyncio.gather(*(run_one(r) for r in requests)))


# ----------------------------------------------------------------------
# stdin/stdout JSON-lines loop
# ----------------------------------------------------------------------
async def serve_stdio(
    server: DiscoveryServer,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
    max_pending: int = DEFAULT_MAX_PENDING,
) -> int:
    """Serve JSON-lines until EOF; returns the number of responses.

    Requests are admitted concurrently (bounded by ``max_pending``) and
    responses are written as each finishes — out of input order under
    concurrency, which is why every response echoes the request ``id``.
    Blank lines and ``#`` comments are skipped, mirroring the batch-file
    format.
    """
    if max_pending < 1:
        raise ValueError(f"max_pending must be >= 1, got {max_pending}")
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    loop = asyncio.get_running_loop()
    admission = asyncio.Semaphore(max_pending)
    write_lock = asyncio.Lock()
    pending: set = set()
    responses = 0

    async def run_one(line: str) -> None:
        nonlocal responses
        try:
            response = await server.handle_line(line)
            async with write_lock:
                stdout.write(encode_response(response) + "\n")
                stdout.flush()
                responses += 1
        finally:
            admission.release()

    while True:
        line = await loop.run_in_executor(None, stdin.readline)
        if not line:
            break
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        await admission.acquire()
        task = asyncio.ensure_future(run_one(line))
        pending.add(task)
        task.add_done_callback(pending.discard)
    if pending:
        await asyncio.gather(*pending)
    return responses


# ----------------------------------------------------------------------
# minimal HTTP endpoint
# ----------------------------------------------------------------------
_MAX_BODY_BYTES = 1 << 20


def _http_response(
    status: str, body: Dict[str, Any], *, content_type: str = "application/json"
) -> bytes:
    payload = encode_response(body).encode("utf-8")
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


async def _handle_http_connection(
    server: DiscoveryServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        request_line = (await reader.readline()).decode("ascii", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = (await reader.readline()).decode("ascii", "replace")
            if header in ("\r\n", "\n", ""):
                break
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                    if content_length < 0:
                        raise ValueError(content_length)
                except ValueError:
                    writer.write(
                        _http_response(
                            "400 Bad Request",
                            {"ok": False, "error": "bad Content-Length"},
                        )
                    )
                    return
        if content_length > _MAX_BODY_BYTES:
            writer.write(
                _http_response(
                    "413 Payload Too Large",
                    {"ok": False, "error": "body too large"},
                )
            )
            return
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        if method == "POST" and path == "/discover":
            response = await server.handle_line(body.decode("utf-8", "replace"))
            writer.write(_http_response("200 OK", response))
        elif method == "GET" and path == "/stats":
            writer.write(_http_response("200 OK", server.stats_snapshot()))
        elif method == "GET" and path == "/healthz":
            writer.write(_http_response("200 OK", {"ok": True}))
        elif path in ("/discover", "/stats", "/healthz"):
            writer.write(
                _http_response(
                    "405 Method Not Allowed",
                    {"ok": False, "error": f"{method} not allowed on {path}"},
                )
            )
        else:
            writer.write(
                _http_response(
                    "404 Not Found", {"ok": False, "error": f"no route {path}"}
                )
            )
    except (asyncio.IncompleteReadError, ConnectionError):
        pass
    finally:
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


async def start_http_server(
    server: DiscoveryServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the HTTP endpoint; ``port=0`` picks a free port (inspect
    ``result.sockets[0].getsockname()[1]``)."""

    async def handler(reader, writer):
        await _handle_http_connection(server, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


async def serve_http_forever(
    server: DiscoveryServer, host: str, port: int, log: TextIO
) -> None:
    http_server = await start_http_server(server, host, port)
    bound = http_server.sockets[0].getsockname()
    print(f"listening on http://{bound[0]}:{bound[1]}", file=log, flush=True)
    async with http_server:
        await http_server.serve_forever()
