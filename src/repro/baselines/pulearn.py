"""Positive-and-Unlabeled learning baseline (Elkan & Noto 2008, §7.6).

Under the *selected completely at random* assumption, a traditional
classifier g(x) trained to separate labelled positives from the unlabeled
pool estimates Pr(s=1|x), which relates to the true posterior through the
labelling frequency c = Pr(s=1|y=1):

    Pr(y=1|x) = Pr(s=1|x) / c,   c estimated as the mean of g(x) over a
                                 held-out set of labelled positives.

Both estimator variants of Figure 16 are provided: a single decision tree
("PU (DT)") and a random forest ("PU (RF)"), built on the from-scratch
:mod:`repro.ml` substrate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Literal, Optional, Sequence, Set

import numpy as np

from ..ml.decision_tree import DecisionTreeClassifier
from ..ml.encoding import FeatureMatrix
from ..ml.random_forest import RandomForestClassifier
from .features import DenormalizedTable

EstimatorKind = Literal["dt", "rf"]


@dataclass
class PuResult:
    """Outcome of one PU-learning run."""

    predicted_keys: Set[Any]
    c_estimate: float
    fit_seconds: float
    predict_seconds: float

    @property
    def total_seconds(self) -> float:
        """Training plus prediction time (the paper's Fig. 16(b) metric)."""
        return self.fit_seconds + self.predict_seconds


class PuLearner:
    """Elkan–Noto PU classification over a denormalised entity table."""

    def __init__(
        self,
        estimator: EstimatorKind = "dt",
        holdout_fraction: float = 0.2,
        threshold: float = 0.5,
        random_state: int = 23,
        max_depth: int = 12,
        n_estimators: int = 12,
    ) -> None:
        if estimator not in ("dt", "rf"):
            raise ValueError(f"unknown estimator {estimator!r}")
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        self.estimator = estimator
        self.holdout_fraction = holdout_fraction
        self.threshold = threshold
        self.random_state = random_state
        self.max_depth = max_depth
        self.n_estimators = n_estimators

    def _make_estimator(self):
        if self.estimator == "dt":
            return DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=2,
                random_state=self.random_state,
            )
        return RandomForestClassifier(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            min_samples_leaf=2,
            random_state=self.random_state,
        )

    def classify(
        self,
        table: DenormalizedTable,
        positive_keys: Sequence[Any],
    ) -> PuResult:
        """Classify every entity given a sample of positive examples.

        ``positive_keys`` is the labelled sample (s=1); all rows form the
        unlabeled pool, exactly as in the paper's setting where examples
        are chosen uniformly at random from the query output.
        """
        rng = np.random.default_rng(self.random_state)
        positives = set(positive_keys)
        if not positives:
            raise ValueError("PU learning needs at least one positive example")

        keys = table.entity_keys
        s_labels = np.array(
            [1 if key in positives else 0 for key in keys], dtype=np.int64
        )
        positive_rows = np.nonzero(s_labels == 1)[0]
        if positive_rows.size == 0:
            raise ValueError("no feature rows matched the positive examples")

        # hold out part of the labelled positives to estimate c
        n_holdout = max(1, int(positive_rows.size * self.holdout_fraction))
        holdout = rng.choice(positive_rows, size=n_holdout, replace=False)
        holdout_set = set(int(i) for i in holdout)
        train_s = s_labels.copy()
        for row in holdout_set:
            train_s[row] = 0  # held-out positives join the unlabeled pool

        start = time.perf_counter()
        model = self._make_estimator()
        model.fit(table.features, train_s)
        fit_seconds = time.perf_counter() - start

        start = time.perf_counter()
        proba = model.predict_proba(table.features)
        g = proba[:, 1] if proba.shape[1] > 1 else np.zeros(len(keys))
        c = float(np.mean(g[list(holdout_set)])) if holdout_set else 1.0
        c = max(c, 1e-6)
        posterior = np.clip(g / c, 0.0, 1.0)
        predicted_rows = posterior >= self.threshold
        predict_seconds = time.perf_counter() - start

        predicted: Set[Any] = set()
        for key, flag in zip(keys, predicted_rows):
            if flag:
                predicted.add(key)
        # labelled examples are positives by definition
        predicted |= positives
        return PuResult(
            predicted_keys=predicted,
            c_estimate=c,
            fit_seconds=fit_seconds,
            predict_seconds=predict_seconds,
        )
