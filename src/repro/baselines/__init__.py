"""Baselines the paper compares against: TALOS-style QRE and PU-learning."""

from .features import (
    DenormalizedTable,
    adult_features,
    builder_for,
    dblp_author_features,
    dblp_publication_features,
    imdb_movie_features,
    imdb_person_features,
)
from .pulearn import PuLearner, PuResult
from .talos import TalosBaseline, TalosResult

__all__ = [
    "DenormalizedTable",
    "PuLearner",
    "PuResult",
    "TalosBaseline",
    "TalosResult",
    "adult_features",
    "builder_for",
    "dblp_author_features",
    "dblp_publication_features",
    "imdb_movie_features",
    "imdb_person_features",
]
