"""Denormalised feature tables for the learning baselines.

TALOS-style QRE systems "first perform a full join among the participating
relations and then perform classification on the denormalized table"
(Section 7.5).  Each builder here produces such a table for one entity
type: possibly several rows per entity (one per fact combination), plus
the list of entity keys aligned with the rows.

The builders deliberately mirror the labelling weakness the paper
documents for IQ1: a row is labelled positive when its *entity* is in the
example set, regardless of which associated movie/publication the row
refers to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..datasets.adult import ATTRIBUTE_COLUMNS
from ..ml.encoding import FeatureMatrix, encode_table
from ..relational.database import Database
from ..relational.types import ColumnType


@dataclass
class DenormalizedTable:
    """Feature rows plus the entity key of each row."""

    entity_keys: List[Any]
    features: FeatureMatrix

    @property
    def num_rows(self) -> int:
        return len(self.entity_keys)


def adult_features(db: Database) -> DenormalizedTable:
    """Single-relation features: the Adult attribute columns."""
    relation = db.relation("adult")
    names = [name for name, _ in ATTRIBUTE_COLUMNS]
    kinds = [
        "numeric" if ctype is ColumnType.INT else "categorical"
        for _, ctype in ATTRIBUTE_COLUMNS
    ]
    rows = []
    keys = []
    for rid in relation.row_ids():
        keys.append(relation.value(rid, "id"))
        rows.append(tuple(relation.value(rid, name) for name in names))
    return DenormalizedTable(entity_keys=keys, features=encode_table(rows, names, kinds))


def _dim_name_map(db: Database, table: str, label: str = "name") -> Dict[Any, str]:
    relation = db.relation(table)
    return dict(zip(relation.column("id"), relation.column(label)))


def imdb_person_features(db: Database) -> DenormalizedTable:
    """person ⋈ castinfo ⋈ movie ⋈ movietogenre ⋈ genre rows."""
    person = db.relation("person")
    movie = db.relation("movie")
    countries = _dim_name_map(db, "country")
    genres = _dim_name_map(db, "genre")
    roles = _dim_name_map(db, "roletype")
    movie_year = dict(zip(movie.column("id"), movie.column("year")))
    movie_title = dict(zip(movie.column("id"), movie.column("title")))
    movie_genres: Dict[Any, List[str]] = {}
    mtg = db.relation("movietogenre")
    for mid, gid in zip(mtg.column("movie_id"), mtg.column("genre_id")):
        movie_genres.setdefault(mid, []).append(genres[gid])
    person_attrs = {
        person.value(rid, "id"): (
            person.value(rid, "gender"),
            person.value(rid, "birth_year"),
            countries.get(person.value(rid, "country_id")),
        )
        for rid in person.row_ids()
    }
    names = ["gender", "birth_year", "person_country", "role", "movie_title",
             "movie_year", "genre"]
    kinds = ["categorical", "numeric", "categorical", "categorical",
             "categorical", "numeric", "categorical"]
    rows, keys = [], []
    cast = db.relation("castinfo")
    for rid in cast.row_ids():
        pid = cast.value(rid, "person_id")
        mid = cast.value(rid, "movie_id")
        role = roles.get(cast.value(rid, "role_id"))
        gender, birth, pcountry = person_attrs[pid]
        for genre in movie_genres.get(mid, [None]):
            keys.append(pid)
            rows.append(
                (gender, birth, pcountry, role, movie_title[mid],
                 movie_year[mid], genre)
            )
    # persons with no cast rows still need representation
    appearing = set(keys)
    for pid, (gender, birth, pcountry) in person_attrs.items():
        if pid not in appearing:
            keys.append(pid)
            rows.append((gender, birth, pcountry, None, None, None, None))
    return DenormalizedTable(entity_keys=keys, features=encode_table(rows, names, kinds))


def imdb_movie_features(db: Database) -> DenormalizedTable:
    """movie ⋈ (genre, country, company) ⋈ castinfo ⋈ person rows."""
    movie = db.relation("movie")
    genres = _dim_name_map(db, "genre")
    countries = _dim_name_map(db, "country")
    companies = _dim_name_map(db, "company")
    movie_genres: Dict[Any, List[str]] = {}
    for mid, gid in zip(
        db.relation("movietogenre").column("movie_id"),
        db.relation("movietogenre").column("genre_id"),
    ):
        movie_genres.setdefault(mid, []).append(genres[gid])
    movie_country: Dict[Any, str] = {}
    for mid, cid in zip(
        db.relation("movietocountry").column("movie_id"),
        db.relation("movietocountry").column("country_id"),
    ):
        movie_country.setdefault(mid, countries[cid])
    movie_company: Dict[Any, str] = {}
    for mid, cid in zip(
        db.relation("movietocompany").column("movie_id"),
        db.relation("movietocompany").column("company_id"),
    ):
        movie_company.setdefault(mid, companies[cid])
    person = db.relation("person")
    person_name = dict(zip(person.column("id"), person.column("name")))
    cast_by_movie: Dict[Any, List[Any]] = {}
    cast = db.relation("castinfo")
    for pid, mid in zip(cast.column("person_id"), cast.column("movie_id")):
        cast_by_movie.setdefault(mid, []).append(pid)

    names = ["year", "runtime", "genre", "country", "company", "cast_member"]
    kinds = ["numeric", "numeric", "categorical", "categorical",
             "categorical", "categorical"]
    rows, keys = [], []
    for rid in movie.row_ids():
        mid = movie.value(rid, "id")
        year = movie.value(rid, "year")
        runtime = movie.value(rid, "runtime")
        country = movie_country.get(mid)
        company = movie_company.get(mid)
        cast_members = cast_by_movie.get(mid, [None])
        for genre in movie_genres.get(mid, [None]):
            for pid in cast_members:
                keys.append(mid)
                rows.append(
                    (year, runtime, genre, country, company,
                     person_name.get(pid) if pid is not None else None)
                )
    return DenormalizedTable(entity_keys=keys, features=encode_table(rows, names, kinds))


def dblp_author_features(db: Database) -> DenormalizedTable:
    """author ⋈ authortopub ⋈ publication ⋈ venue rows."""
    author = db.relation("author")
    countries = _dim_name_map(db, "country")
    venues = _dim_name_map(db, "venue")
    pub = db.relation("publication")
    pub_year = dict(zip(pub.column("id"), pub.column("year")))
    pub_venue = dict(zip(pub.column("id"), pub.column("venue_id")))
    author_country = {
        author.value(rid, "id"): countries.get(author.value(rid, "country_id"))
        for rid in author.row_ids()
    }
    names = ["author_country", "venue", "pub_year"]
    kinds = ["categorical", "categorical", "numeric"]
    rows, keys = [], []
    a2p = db.relation("authortopub")
    for aid, pid in zip(a2p.column("author_id"), a2p.column("pub_id")):
        keys.append(aid)
        rows.append(
            (author_country[aid], venues.get(pub_venue[pid]), pub_year[pid])
        )
    appearing = set(keys)
    for aid, country in author_country.items():
        if aid not in appearing:
            keys.append(aid)
            rows.append((country, None, None))
    return DenormalizedTable(entity_keys=keys, features=encode_table(rows, names, kinds))


def dblp_publication_features(db: Database) -> DenormalizedTable:
    """publication ⋈ venue ⋈ authortopub ⋈ author rows."""
    pub = db.relation("publication")
    venues = _dim_name_map(db, "venue")
    countries = _dim_name_map(db, "country")
    author = db.relation("author")
    author_name = dict(zip(author.column("id"), author.column("name")))
    author_country = {
        author.value(rid, "id"): countries.get(author.value(rid, "country_id"))
        for rid in author.row_ids()
    }
    authors_by_pub: Dict[Any, List[Any]] = {}
    a2p = db.relation("authortopub")
    for aid, pid in zip(a2p.column("author_id"), a2p.column("pub_id")):
        authors_by_pub.setdefault(pid, []).append(aid)
    names = ["venue", "year", "author", "author_country"]
    kinds = ["categorical", "numeric", "categorical", "categorical"]
    rows, keys = [], []
    for rid in pub.row_ids():
        pid = pub.value(rid, "id")
        venue = venues.get(pub.value(rid, "venue_id"))
        year = pub.value(rid, "year")
        for aid in authors_by_pub.get(pid, [None]):
            keys.append(pid)
            rows.append(
                (
                    venue,
                    year,
                    author_name.get(aid) if aid is not None else None,
                    author_country.get(aid) if aid is not None else None,
                )
            )
    return DenormalizedTable(entity_keys=keys, features=encode_table(rows, names, kinds))


def builder_for(dataset: str, entity_table: str):
    """The denormaliser for one (dataset, entity) pair."""
    table = {
        ("adult", "adult"): adult_features,
        ("imdb", "person"): imdb_person_features,
        ("imdb", "movie"): imdb_movie_features,
        ("dblp", "author"): dblp_author_features,
        ("dblp", "publication"): dblp_publication_features,
    }
    try:
        return table[(dataset, entity_table)]
    except KeyError:
        raise KeyError(
            f"no feature builder for dataset={dataset!r}, entity={entity_table!r}"
        ) from None
