"""TALOS-style decision-tree query reverse engineering (Section 7.5).

TALOS [Tran, Chan, Parthasarathy — VLDBJ 2014] operates in the closed
world: given the complete intended output, it denormalises the entity's
join neighbourhood, labels every row positive whose entity appears in the
output, fits a decision tree, and reads the query back off the tree as a
disjunction of root-to-positive-leaf conjunctions.

This reimplementation reproduces the behaviours the paper reports:

* perfect f-scores on the single-relation Adult dataset;
* predicate blow-up — the extracted queries carry one predicate per path
  condition, often hundreds (Figs. 14/15);
* the IQ1 mislabelling failure: every row of a cast member is labelled
  positive "regardless of the movie that row refers to", so the tree
  learns person-level features and the result set leaks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

import numpy as np

from ..ml.decision_tree import DecisionTreeClassifier
from ..relational.database import Database
from .features import DenormalizedTable, builder_for


@dataclass
class TalosResult:
    """Outcome of one TALOS reverse-engineering run."""

    predicted_keys: Set[Any]
    num_predicates: int
    num_paths: int
    fit_seconds: float
    paths: List[List[str]] = field(default_factory=list)

    def describe(self, max_paths: int = 5) -> str:
        """Readable DNF rendering of the extracted query."""
        lines = [
            f"{self.num_paths} positive paths, {self.num_predicates} predicates"
        ]
        for path in self.paths[:max_paths]:
            lines.append("  " + " AND ".join(path))
        if len(self.paths) > max_paths:
            lines.append(f"  ... ({len(self.paths) - max_paths} more paths)")
        return "\n".join(lines)


class TalosBaseline:
    """Closed-world QRE via decision-tree classification."""

    def __init__(
        self,
        max_depth: int = 16,
        min_samples_leaf: int = 1,
        random_state: int = 17,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state

    def reverse_engineer(
        self,
        db: Database,
        dataset: str,
        entity_table: str,
        intended_keys: Set[Any],
        table: Optional[DenormalizedTable] = None,
    ) -> TalosResult:
        """Reverse-engineer a query whose output is ``intended_keys``.

        ``table`` lets callers reuse a prebuilt denormalised table across
        queries on the same dataset (the denormalisation cost is shared,
        as it would be inside the original system).
        """
        start = time.perf_counter()
        if table is None:
            table = builder_for(dataset, entity_table)(db)
        labels = np.array(
            [1 if key in intended_keys else 0 for key in table.entity_keys],
            dtype=np.int64,
        )
        tree = DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=2,
            min_samples_leaf=self.min_samples_leaf,
            random_state=self.random_state,
        )
        tree.fit(table.features, labels)
        predictions = tree.predict(table.features)
        elapsed = time.perf_counter() - start

        predicted: Set[Any] = set()
        for key, label in zip(table.entity_keys, predictions):
            if label == 1:
                predicted.add(key)
        paths = tree.positive_paths(positive_class=1)
        num_predicates = sum(len(path) for path in paths)
        return TalosResult(
            predicted_keys=predicted,
            num_predicates=num_predicates,
            num_paths=len(paths),
            fit_seconds=elapsed,
            paths=paths,
        )
