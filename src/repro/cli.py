"""Command-line interface for the SQuID reproduction.

Three subcommands cover the interactive workflow::

    repro-squid discover --dataset imdb --examples "Tom Cruise;Nicole Kidman"
    repro-squid workloads --dataset dblp
    repro-squid stats --dataset adult

(or ``python -m repro.cli ...`` without the console script).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .core.config import SquidConfig
from .core.recommend import recommend_examples
from .core.squid import SquidSystem
from .datasets import adult, dblp, imdb
from .sql.engine import DEFAULT_BACKEND, available_backends
from .eval.reporting import format_table
from .workloads import adult_queries, dblp_queries, imdb_queries

_PROFILES = ("small", "base")


def _build_dataset(name: str, profile: str):
    """(database, metadata, workload registry) for one dataset name."""
    if name == "imdb":
        size = imdb.ImdbSize.small() if profile == "small" else imdb.ImdbSize.base()
        db = imdb.generate(size)
        return db, imdb.metadata(), imdb_queries.build_registry()
    if name == "dblp":
        size = dblp.DblpSize.small() if profile == "small" else dblp.DblpSize.base()
        db = dblp.generate(size)
        return db, dblp.metadata(), dblp_queries.build_registry()
    if name == "adult":
        size = adult.AdultSize.small() if profile == "small" else adult.AdultSize.base()
        db = adult.generate(size)
        return db, adult.metadata(), adult_queries.generate_queries(db, count=20)
    raise SystemExit(f"unknown dataset {name!r} (choose imdb, dblp, adult)")


def _cmd_discover(args: argparse.Namespace) -> int:
    db, metadata, _ = _build_dataset(args.dataset, args.profile)
    examples = [part.strip() for part in args.examples.split(";") if part.strip()]
    if not examples:
        print("no examples given (use --examples 'A;B;C')", file=sys.stderr)
        return 2
    config = SquidConfig(rho=args.rho, tau_a=args.tau_a, backend=args.backend)
    start = time.perf_counter()
    squid = SquidSystem.build(db, metadata, config)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    result = squid.discover(examples)
    discover_seconds = time.perf_counter() - start

    print(f"offline αDB build: {build_seconds:.2f}s; discovery: "
          f"{discover_seconds * 1000:.1f}ms "
          f"[backend: {squid.backend_name}]\n")
    print(result.explain())
    print("\nabduced query (αDB form):")
    print(result.sql)
    print("\nequivalent query on the original schema:")
    print(result.original_sql)
    values = squid.result_values(result)
    print(f"\nresult ({len(values)} tuples):")
    for value in sorted(map(str, values))[: args.limit]:
        print(f"  {value}")
    if len(values) > args.limit:
        print(f"  ... ({len(values) - args.limit} more)")
    if args.recommend:
        suggestions = recommend_examples(squid, result, k=args.recommend)
        if suggestions:
            print("\nsuggested additional examples (sharpen borderline filters):")
            for rec in suggestions:
                why = ", ".join(rec.discriminates) or "diversity"
                print(f"  {rec.display}  [{why}]")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    db, _, registry = _build_dataset(args.dataset, args.profile)
    rows = []
    for workload in registry:
        rows.append(
            {
                "qid": workload.qid,
                "cardinality": workload.cardinality(db),
                "joins": workload.num_joins,
                "selections": workload.num_selections,
                "description": workload.description[:60],
            }
        )
    print(format_table(rows, title=f"{args.dataset} benchmark workloads"))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db, metadata, _ = _build_dataset(args.dataset, args.profile)
    squid = SquidSystem.build(db, metadata)
    summary = squid.adb.size_summary()
    rows = [{"metric": key, "value": value} for key, value in summary.items()]
    print(format_table(rows, title=f"{args.dataset} αDB statistics"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-squid",
        description="SQuID reproduction: query intent discovery by example",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    discover = sub.add_parser("discover", help="abduce a query from examples")
    discover.add_argument("--dataset", required=True)
    discover.add_argument("--examples", required=True,
                          help="semicolon-separated example values")
    discover.add_argument("--profile", choices=_PROFILES, default="small")
    discover.add_argument("--rho", type=float, default=0.1)
    discover.add_argument("--tau-a", dest="tau_a", type=float, default=5.0)
    discover.add_argument("--limit", type=int, default=25)
    discover.add_argument("--recommend", type=int, default=0,
                          help="also suggest N further examples")
    discover.add_argument("--backend", choices=available_backends(),
                          default=DEFAULT_BACKEND,
                          help="query execution engine")
    discover.set_defaults(func=_cmd_discover)

    workloads = sub.add_parser("workloads", help="list benchmark queries")
    workloads.add_argument("--dataset", required=True)
    workloads.add_argument("--profile", choices=_PROFILES, default="small")
    workloads.set_defaults(func=_cmd_workloads)

    stats = sub.add_parser("stats", help="show αDB statistics")
    stats.add_argument("--dataset", required=True)
    stats.add_argument("--profile", choices=_PROFILES, default="small")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
