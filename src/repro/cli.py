"""Command-line interface for the SQuID reproduction.

Five subcommands cover the interactive workflow::

    repro-squid discover --dataset imdb --examples "Tom Cruise;Nicole Kidman"
    repro-squid batch --dataset imdb --input sets.txt --jobs 4 --stats
    repro-squid serve --dataset imdb --jobs 4 --mode http --port 8080
    repro-squid workloads --dataset dblp
    repro-squid stats --dataset adult

``batch`` reads one example set per line (semicolon-separated values;
blank lines and ``#`` comments are skipped, ``-`` reads stdin) and
discovers them all in one :class:`~repro.core.session.DiscoverySession`,
sharing the warm αDB views and result cache and fanning candidate work
across ``--jobs`` workers.

``serve`` keeps that warm session resident and answers concurrent
discovery requests on an asyncio loop — JSON-lines over stdin/stdout by
default (all logging goes to stderr so stdout stays protocol-clean), or
a minimal HTTP endpoint with ``--mode http`` (see :mod:`repro.serve` and
``docs/serving.md``).

(or ``python -m repro.cli ...`` without the console script).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from typing import List, Optional, Sequence

from .core.config import SquidConfig
from .core.recommend import recommend_examples
from .core.squid import SquidSystem
from .datasets import adult, dblp, imdb
from .sql.engine import (
    DEFAULT_BACKEND,
    DEFAULT_GUARD_FACTOR,
    DEFAULT_SAMPLE_BUDGET,
    available_backends,
)
from .eval.reporting import format_table
from .workloads import adult_queries, dblp_queries, imdb_queries

_PROFILES = ("small", "base")


def _build_dataset(name: str, profile: str):
    """(database, metadata, workload registry) for one dataset name.

    Besides the three paper datasets, ``synth`` (or ``synth:SEED``)
    materialises a synthetic scenario from :mod:`repro.synth` — its
    sampled ground-truth intents become the workload registry."""
    if name == "synth" or name.startswith("synth:"):
        from .synth import default_scenario_config, generate_scenario

        _, _, seed_text = name.partition(":")
        try:
            seed = int(seed_text) if seed_text else 0
        except ValueError:
            raise SystemExit(f"bad synth seed {seed_text!r} (use synth:123)")
        scenario = generate_scenario(default_scenario_config(seed))
        return scenario.db, scenario.metadata, scenario.registry()
    if name == "imdb":
        size = imdb.ImdbSize.small() if profile == "small" else imdb.ImdbSize.base()
        db = imdb.generate(size)
        return db, imdb.metadata(), imdb_queries.build_registry()
    if name == "dblp":
        size = dblp.DblpSize.small() if profile == "small" else dblp.DblpSize.base()
        db = dblp.generate(size)
        return db, dblp.metadata(), dblp_queries.build_registry()
    if name == "adult":
        size = adult.AdultSize.small() if profile == "small" else adult.AdultSize.base()
        db = adult.generate(size)
        return db, adult.metadata(), adult_queries.generate_queries(db, count=20)
    raise SystemExit(
        f"unknown dataset {name!r} (choose imdb, dblp, adult, or synth[:SEED])"
    )


def _squid_config(args: argparse.Namespace) -> SquidConfig:
    """Build the run configuration from the shared CLI knobs."""
    return SquidConfig(
        rho=args.rho,
        tau_a=args.tau_a,
        backend=args.backend,
        shards=args.shards,
        jobs=args.jobs,
        executor=args.executor,
        persistent_pool=args.persistent_pool,
        estimator=args.estimator,
        estimator_sample_budget=args.sample_budget,
        estimator_guard_factor=args.guard_factor,
        analyze=args.analyze,
    )


def _print_run_stats(squid: SquidSystem, session=None) -> None:
    """The ``--stats`` report: cache, engine routing, session counters."""
    rows = []
    cache = squid.cache_stats()
    if cache is not None:
        rows += [{"counter": f"cache_{k}", "value": v} for k, v in cache.items()]
    engine = squid.backend_stats()
    if engine is not None:
        rows += [{"counter": f"engine_{k}", "value": v} for k, v in engine.items()]
    if session is not None:
        rows += [
            {"counter": k, "value": v}
            for k, v in session.stats().items()
            if not k.startswith(("cache_", "engine_"))
        ]
    if rows:
        print("\n" + format_table(rows, title="run statistics"))


def _cmd_discover(args: argparse.Namespace) -> int:
    db, metadata, _ = _build_dataset(args.dataset, args.profile)
    examples = [part.strip() for part in args.examples.split(";") if part.strip()]
    if not examples:
        print("no examples given (use --examples 'A;B;C')", file=sys.stderr)
        return 2
    config = _squid_config(args)
    start = time.perf_counter()
    squid = SquidSystem.build(db, metadata, config)
    build_seconds = time.perf_counter() - start

    session = squid.session() if args.jobs > 1 else None
    start = time.perf_counter()
    if session is not None:
        outcome = session.discover_many([examples])[0]
        if outcome.error is not None:
            raise outcome.error
        result = outcome.result
    else:
        result = squid.discover(examples)
    discover_seconds = time.perf_counter() - start

    print(f"offline αDB build: {build_seconds:.2f}s; discovery: "
          f"{discover_seconds * 1000:.1f}ms "
          f"[backend: {squid.backend_name}]\n")
    print(result.explain())
    print("\nabduced query (αDB form):")
    print(result.sql)
    print("\nequivalent query on the original schema:")
    print(result.original_sql)
    values = squid.result_values(result)
    print(f"\nresult ({len(values)} tuples):")
    for value in sorted(map(str, values))[: args.limit]:
        print(f"  {value}")
    if len(values) > args.limit:
        print(f"  ... ({len(values) - args.limit} more)")
    if args.recommend:
        suggestions = recommend_examples(squid, result, k=args.recommend)
        if suggestions:
            print("\nsuggested additional examples (sharpen borderline filters):")
            for rec in suggestions:
                why = ", ".join(rec.discriminates) or "diversity"
                print(f"  {rec.display}  [{why}]")
    if args.show_stats:
        _print_run_stats(squid, session)
    if session is not None:
        session.close()
    return 0


def _read_example_sets(path: str) -> List[List[str]]:
    """Parse a batch input file: one semicolon-separated set per line."""
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    sets: List[List[str]] = []
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        examples = [part.strip() for part in line.split(";") if part.strip()]
        if examples:
            sets.append(examples)
    return sets


def _cmd_batch(args: argparse.Namespace) -> int:
    sets = _read_example_sets(args.input)
    if not sets:
        print("no example sets in input (one 'A;B;C' line per set)",
              file=sys.stderr)
        return 2
    db, metadata, _ = _build_dataset(args.dataset, args.profile)
    config = _squid_config(args)
    start = time.perf_counter()
    squid = SquidSystem.build(db, metadata, config)
    build_seconds = time.perf_counter() - start

    session = squid.session()
    session.warm()
    outcomes = session.discover_many(sets)
    wall = session.last_batch_wall_seconds
    ok = sum(1 for o in outcomes if o.ok)
    print(
        f"offline αDB build: {build_seconds:.2f}s; batch of {len(sets)} "
        f"example sets: {wall * 1000:.1f}ms total "
        f"({ok} discovered, {len(sets) - ok} failed) "
        f"[backend: {squid.backend_name}, jobs: {session.jobs}, "
        f"executor: {session.executor_used or 'sequential'}]\n"
    )
    for i, outcome in enumerate(outcomes):
        label = "; ".join(outcome.examples)
        if not outcome.ok:
            print(f"[{i}] {label}\n    ERROR: {outcome.error}")
            continue
        result = outcome.result
        cardinality = len(squid.result_keys(result))
        print(
            f"[{i}] {label}  ({outcome.seconds * 1000:.1f}ms, "
            f"{cardinality} tuples)"
        )
        print("    " + result.sql.replace("\n", "\n    "))
    if args.show_stats:
        _print_run_stats(squid, session)
    session.close()
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the async serving loop (stdio JSON-lines or HTTP)."""
    from .serve import DiscoveryServer, serve_http_forever, serve_stdio

    log = sys.stderr
    db, metadata, _ = _build_dataset(args.dataset, args.profile)
    config = _squid_config(args)
    start = time.perf_counter()
    squid = SquidSystem.build(db, metadata, config)
    server = DiscoveryServer(squid, jobs=args.jobs, executor=args.executor)
    print(
        f"αDB built and session warmed in {time.perf_counter() - start:.2f}s "
        f"[backend: {squid.backend_name}, jobs: {server.session.jobs}, "
        f"executor: {server.session.executor}, mode: {args.mode}]",
        file=log,
        flush=True,
    )
    try:
        if args.mode == "http":
            asyncio.run(serve_http_forever(server, args.host, args.port, log))
        else:
            served = asyncio.run(
                serve_stdio(server, max_pending=args.max_pending)
            )
            print(f"served {served} requests", file=log, flush=True)
    except KeyboardInterrupt:
        print("interrupted", file=log, flush=True)
    finally:
        if args.show_stats:
            from .eval.reporting import format_table

            rows = [
                {"counter": key, "value": value}
                for key, value in server.stats_snapshot().items()
            ]
            print(format_table(rows, title="serving statistics"), file=log)
        server.close()
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    """Synthetic scenarios: generate / fuzz / replay-corpus."""
    from .synth import (
        default_corpus_dir,
        default_scenario_config,
        entry_passes,
        fuzz_seeds,
        generate_scenario,
        load_corpus,
        parse_seed_range,
    )

    if args.mode == "generate":
        rows = []
        for seed in parse_seed_range(args.seeds):
            scenario = generate_scenario(default_scenario_config(seed))
            summary = scenario.summary()
            example_sets = summary.pop("example_sets")
            rows.append(summary)
            if args.verbose:
                for intent, examples in zip(scenario.intents, example_sets):
                    print(
                        f"{scenario.name}/{intent.index}: "
                        f"{intent.spec.describe()}  "
                        f"(|GT|={len(intent.ground_truth)}, "
                        f"examples: {'; '.join(examples)})"
                    )
        print(format_table(rows, title="synthetic scenarios"))
        return 0

    if args.mode == "fuzz":
        corpus_dir = None
        if args.write_failures:
            corpus_dir = args.corpus or str(default_corpus_dir())
        report = fuzz_seeds(
            parse_seed_range(args.seeds),
            strict_gt=args.strict_gt,
            corpus_dir=corpus_dir,
            progress=print if args.verbose else None,
        )
        print(report.summary())
        return 0 if report.ok else 1

    # replay-corpus
    entries = load_corpus(args.corpus or None)
    if not entries:
        print("corpus is empty — nothing to replay")
        return 0
    failed = 0
    for entry in entries:
        ok = entry_passes(entry)
        status = "ok" if ok else "FAIL"
        print(
            f"[{status}] {entry.entry_id} (kind: {entry.kind}, "
            f"expect: {entry.expect})"
        )
        if not ok:
            failed += 1
    print(f"{len(entries) - failed}/{len(entries)} corpus entries hold")
    return 1 if failed else 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    db, _, registry = _build_dataset(args.dataset, args.profile)
    rows = []
    for workload in registry:
        rows.append(
            {
                "qid": workload.qid,
                "cardinality": workload.cardinality(db),
                "joins": workload.num_joins,
                "selections": workload.num_selections,
                "description": workload.description[:60],
            }
        )
    print(format_table(rows, title=f"{args.dataset} benchmark workloads"))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db, metadata, _ = _build_dataset(args.dataset, args.profile)
    squid = SquidSystem.build(db, metadata)
    summary = squid.adb.size_summary()
    rows = [{"metric": key, "value": value} for key, value in summary.items()]
    print(format_table(rows, title=f"{args.dataset} αDB statistics"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-squid",
        description="SQuID reproduction: query intent discovery by example",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(cmd: argparse.ArgumentParser) -> None:
        """Knobs shared by the single-set and batch discovery commands."""
        cmd.add_argument("--profile", choices=_PROFILES, default="small")
        cmd.add_argument("--rho", type=float, default=0.1)
        cmd.add_argument("--tau-a", dest="tau_a", type=float, default=5.0)
        cmd.add_argument("--backend", choices=available_backends(),
                         default=DEFAULT_BACKEND,
                         help="query execution engine")
        cmd.add_argument("--shards", type=int, default=0,
                         help="shard workers of the sharded engine "
                              "(0 = auto: cores, capped at 8)")
        cmd.add_argument("--jobs", type=int, default=1,
                         help="worker-pool width for candidate fan-out")
        cmd.add_argument("--executor", choices=("thread", "process"),
                         default="thread",
                         help="worker pool flavour when --jobs > 1")
        cmd.add_argument("--no-persistent-pool", dest="persistent_pool",
                         action="store_false",
                         help="use PR 2's throwaway per-batch executors "
                              "instead of the persistent worker pool")
        cmd.add_argument("--no-estimator", dest="estimator",
                         action="store_false",
                         help="drive the dispatch router with the v1 fixed "
                              "heuristics instead of the sampling-based "
                              "cardinality estimator")
        cmd.add_argument("--sample-budget", type=int,
                         default=DEFAULT_SAMPLE_BUDGET,
                         help="per-column sample budget of the dispatch "
                              "estimator (columns at or under this many "
                              "non-NULL values are scanned exactly)")
        cmd.add_argument("--guard-factor", type=float,
                         default=DEFAULT_GUARD_FACTOR,
                         help="misroute guard threshold: abort an "
                              "interpreted run once observed rows exceed "
                              "the estimate's upper bound by this factor")
        cmd.add_argument("--analyze", action="store_true",
                         help="statically verify every query before "
                              "execution (repro.analysis plan-verifier "
                              "gate; rejections and warnings show up as "
                              "engine_analyze_* counters under --stats)")
        cmd.add_argument("--stats", dest="show_stats", action="store_true",
                         help="print cache/engine/session counters after "
                              "discovery")

    discover = sub.add_parser("discover", help="abduce a query from examples")
    discover.add_argument("--dataset", required=True)
    discover.add_argument("--examples", required=True,
                          help="semicolon-separated example values")
    discover.add_argument("--limit", type=int, default=25)
    discover.add_argument("--recommend", type=int, default=0,
                          help="also suggest N further examples")
    add_run_options(discover)
    discover.set_defaults(func=_cmd_discover)

    batch = sub.add_parser(
        "batch", help="discover many example sets in one shared session"
    )
    batch.add_argument("--dataset", required=True)
    batch.add_argument("--input", required=True,
                       help="file of example sets, one 'A;B;C' line per set "
                            "('-' reads stdin)")
    add_run_options(batch)
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve", help="serve concurrent discovery requests (stdio or HTTP)"
    )
    serve.add_argument("--dataset", required=True)
    serve.add_argument("--mode", choices=("stdio", "http"), default="stdio",
                       help="JSON-lines over stdin/stdout (default) or a "
                            "minimal HTTP endpoint")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="HTTP port (0 picks a free one)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="stdio: concurrently admitted requests")
    add_run_options(serve)
    serve.set_defaults(func=_cmd_serve, jobs=2)

    workloads = sub.add_parser("workloads", help="list benchmark queries")
    workloads.add_argument("--dataset", required=True)
    workloads.add_argument("--profile", choices=_PROFILES, default="small")
    workloads.set_defaults(func=_cmd_workloads)

    stats = sub.add_parser("stats", help="show αDB statistics")
    stats.add_argument("--dataset", required=True)
    stats.add_argument("--profile", choices=_PROFILES, default="small")
    stats.set_defaults(func=_cmd_stats)

    synth = sub.add_parser(
        "synth",
        help="synthetic scenarios: generate, differential-fuzz all "
             "engines, or replay the regression corpus",
    )
    synth.add_argument("mode", choices=("generate", "fuzz", "replay-corpus"))
    synth.add_argument("--seeds", default="0:20",
                       help="seed range 'N:M' (half-open) or a single seed")
    synth.add_argument("--strict-gt", dest="strict_gt", action="store_true",
                       help="treat abduced-vs-ground-truth mismatches as "
                            "failures (off by default: abduction may "
                            "legitimately generalise beyond an example draw)")
    synth.add_argument("--corpus", default=None,
                       help="corpus directory (default: tests/corpus)")
    synth.add_argument("--no-write", dest="write_failures",
                       action="store_false",
                       help="fuzz: do not write minimized repros to the "
                            "corpus directory")
    synth.add_argument("--verbose", action="store_true",
                       help="per-scenario progress / intent detail")
    synth.set_defaults(func=_cmd_synth)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
