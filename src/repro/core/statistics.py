"""Selectivity precomputation — the αDB's "smart selectivity" store (§5).

For every property family the offline module precomputes what the online
abduction needs to evaluate ψ(φ) in O(log n) or O(1):

* categorical-like families (direct categorical, fk-dim, fact-dim) — the
  number of entities per value;
* numeric families — the sorted value array, so any range selectivity is
  two binary searches (the paper's prefix trick
  ψ(φ⟨A,(l,h]⟩) = ψ(φ⟨A,[min,h]⟩) − ψ(φ⟨A,[min,l]⟩));
* derived families — per value, the sorted array of association strengths
  across entities, so ψ(φ⟨A,v,θ⟩) is one binary search.

Selectivity is always relative to the entity count |Q*(D)| (the base query
returns every entity).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..relational.database import Database
from ..sql.engine.kernels import factorize
from .properties import FamilyKind, PropertyFamily


@dataclass
class CategoricalStats:
    """Per-value entity counts for a categorical-like family."""

    entity_count: int
    value_counts: Dict[Any, int]

    def selectivity(self, value: Any) -> float:
        """ψ of ``attribute = value``."""
        if self.entity_count == 0:
            return 0.0
        return self.value_counts.get(value, 0) / self.entity_count

    def selectivity_in(self, values: Sequence[Any]) -> float:
        """ψ of a disjunction over categorical values (upper bound: sum)."""
        if self.entity_count == 0:
            return 0.0
        total = sum(self.value_counts.get(v, 0) for v in set(values))
        return min(1.0, total / self.entity_count)

    @property
    def domain_size(self) -> int:
        """Number of distinct values in the active domain."""
        return len(self.value_counts)

    def coverage(self, values: Sequence[Any]) -> float:
        """Fraction of the active domain covered by ``values``."""
        if not self.value_counts:
            return 1.0
        return min(1.0, len(set(values)) / len(self.value_counts))


@dataclass
class NumericStats:
    """Sorted values of a numeric family (one entry per entity)."""

    entity_count: int
    sorted_values: np.ndarray

    def selectivity(self, low: float, high: float) -> float:
        """ψ of ``low <= attribute <= high`` (inclusive both sides)."""
        if self.entity_count == 0 or self.sorted_values.size == 0:
            return 0.0
        hi = int(np.searchsorted(self.sorted_values, high, side="right"))
        lo = int(np.searchsorted(self.sorted_values, low, side="left"))
        return (hi - lo) / self.entity_count

    def prefix_selectivity(self, value: float) -> float:
        """ψ of ``attribute <= value`` — the precomputed prefix form."""
        if self.entity_count == 0:
            return 0.0
        hi = int(np.searchsorted(self.sorted_values, value, side="right"))
        return hi / self.entity_count

    @property
    def domain_min(self) -> Optional[float]:
        """Smallest observed value."""
        return float(self.sorted_values[0]) if self.sorted_values.size else None

    @property
    def domain_max(self) -> Optional[float]:
        """Largest observed value."""
        return float(self.sorted_values[-1]) if self.sorted_values.size else None

    def coverage(self, low: float, high: float) -> float:
        """Fraction of the active domain span covered by [low, high]."""
        lo, hi = self.domain_min, self.domain_max
        if lo is None or hi is None or hi == lo:
            return 1.0
        return min(1.0, max(0.0, (high - low) / (hi - lo)))


@dataclass
class DerivedStats:
    """Per-value sorted association strengths for a derived family."""

    entity_count: int
    strengths: Dict[Any, np.ndarray]
    """value -> ascending array of θ across the entities holding it."""

    def selectivity(self, value: Any, theta: float) -> float:
        """ψ of ``associated with value at strength >= theta``."""
        if self.entity_count == 0:
            return 0.0
        arr = self.strengths.get(value)
        if arr is None or arr.size == 0:
            return 0.0
        lo = int(np.searchsorted(arr, theta, side="left"))
        return (arr.size - lo) / self.entity_count

    @property
    def domain_size(self) -> int:
        """Number of distinct values the family takes."""
        return len(self.strengths)

    def coverage(self, values: Sequence[Any]) -> float:
        """Fraction of the active value domain covered."""
        if not self.strengths:
            return 1.0
        return min(1.0, len(set(values)) / len(self.strengths))


FamilyStats = object  # union of the three stats classes


class StatisticsStore:
    """All per-family statistics, keyed by (entity, attribute)."""

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, str], FamilyStats] = {}

    def get(self, family: PropertyFamily) -> FamilyStats:
        """Statistics for one family (raises KeyError if not computed)."""
        return self._stats[family.key]

    def put(self, family: PropertyFamily, stats: FamilyStats) -> None:
        """Store statistics for one family."""
        self._stats[family.key] = stats

    def __contains__(self, family: PropertyFamily) -> bool:
        return family.key in self._stats

    def __len__(self) -> int:
        return len(self._stats)


def compute_statistics(
    database: Database,
    families: Sequence[PropertyFamily],
    entity_counts: Dict[str, int],
) -> StatisticsStore:
    """Precompute selectivity statistics for every family."""
    store = StatisticsStore()
    for family in families:
        n = entity_counts[family.entity]
        if family.kind is FamilyKind.DIRECT_NUMERIC:
            store.put(family, _numeric_stats(database, family, n))
        elif family.kind in (FamilyKind.DIRECT_CATEGORICAL, FamilyKind.FK_DIM):
            store.put(family, _direct_categorical_stats(database, family, n))
        elif family.kind in (FamilyKind.FACT_DIM, FamilyKind.FACT_ATTR):
            store.put(family, _fact_dim_stats(database, family, n))
        else:
            store.put(family, _derived_stats(database, family, n))
    return store


def _numeric_stats(
    database: Database, family: PropertyFamily, entity_count: int
) -> NumericStats:
    arr = database.relation(family.entity).column_array(family.column)
    values = arr.values[arr.mask]
    if values.size and values.dtype == object:  # int64-overflow fallback
        values = np.asarray([float(v) for v in values.tolist()])
    sorted_values = (
        np.sort(values.astype(float, copy=False)) if values.size else np.empty(0)
    )
    return NumericStats(entity_count=entity_count, sorted_values=sorted_values)


def _direct_categorical_stats(
    database: Database, family: PropertyFamily, entity_count: int
) -> CategoricalStats:
    column = family.column if family.kind is FamilyKind.DIRECT_CATEGORICAL else family.fk_column
    arr = database.relation(family.entity).column_array(column)
    values = arr.values[arr.mask]
    counts: Dict[Any, int] = {}
    try:
        uniq, uniq_counts = np.unique(values, return_counts=True)
    except TypeError:  # mixed incomparable object values
        for value in values.tolist():
            counts[value] = counts.get(value, 0) + 1
    else:
        counts = dict(zip(uniq.tolist(), (int(c) for c in uniq_counts)))
    return CategoricalStats(entity_count=entity_count, value_counts=counts)


def _fact_dim_stats(
    database: Database, family: PropertyFamily, entity_count: int
) -> CategoricalStats:
    """Entities per associated value: count *distinct* entities."""
    fact = database.relation(family.fact_table)
    entity_arr = fact.column_array(family.fact_entity_col)
    value_column = (
        family.fact_dim_col
        if family.kind is FamilyKind.FACT_DIM
        else family.column
    )
    dim_arr = fact.column_array(value_column)
    present = entity_arr.mask & dim_arr.mask
    entity_codes, entity_uniques = factorize(entity_arr.values, present)
    dim_codes, dim_uniques = factorize(dim_arr.values, present)
    kd = len(dim_uniques)
    counts: Dict[Any, int] = {}
    if kd:
        valid = np.nonzero(present)[0]
        # Distinct (entity, value) pairs via composite codes, then a
        # bincount over each pair's value code.
        composite = entity_codes[valid] * np.int64(kd) + dim_codes[valid]
        unique_pairs = np.unique(composite)
        per_value = np.bincount(unique_pairs % kd, minlength=kd)
        counts = {
            dim_uniques[code]: int(n)
            for code, n in enumerate(per_value)
            if n
        }
    return CategoricalStats(entity_count=entity_count, value_counts=counts)


def _derived_stats(
    database: Database, family: PropertyFamily, entity_count: int
) -> DerivedStats:
    relation = database.relation(family.derived_table)
    value_arr = relation.column_array(family.derived_value_col)
    count_arr = relation.column_array("count")
    codes, uniques = factorize(value_arr.values, value_arr.mask)
    strengths: Dict[Any, np.ndarray] = {}
    valid = np.nonzero(codes >= 0)[0]
    if valid.size:
        theta = count_arr.values[valid].astype(float, copy=False)
        order = np.argsort(codes[valid], kind="stable")
        sorted_codes = codes[valid][order]
        sorted_theta = theta[order]
        boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
        chunk_starts = np.concatenate(([0], boundaries))
        for start, chunk in zip(
            chunk_starts, np.split(sorted_theta, boundaries)
        ):
            strengths[uniques[sorted_codes[start]]] = np.sort(chunk)
    return DerivedStats(entity_count=entity_count, strengths=strengths)
