"""Batch discovery sessions: amortise shared work across example sets.

The online pipeline's per-candidate stages (:mod:`repro.core.pipeline`)
only read the αDB, so many discoveries can share everything that is
expensive to assemble:

* the relation layer's cached numpy **column/sorted views** (``warm()``
  pre-builds them once instead of faulting them in per query);
* the formatted-SQL-keyed **query-result cache** of the system's
  backend (shared automatically — all work units execute through the
  same backend instance);
* the per-entity **property probes** (``adb.entity_properties``) that
  dominate disambiguation and context discovery: example sets drawn from
  the same workload overlap heavily in entities, so
  :class:`ProbeCachingAdb` memoises the probes across the whole session.

On top of the sharing, independent (example set × candidate base query)
work units fan out across a configurable worker pool: ``jobs=N`` with
``executor="thread"`` (default; the numpy kernels release the GIL) or
``executor="process"`` (fork-based, true CPU parallelism; results are
pickled back).  ``jobs=1`` drives the exact sequential reference path,
so batch output is identical to calling ``SquidSystem.discover`` in a
loop.

Since PR 3 the fan-out runs on a **persistent**
:class:`~repro.core.workers.WorkerPool` by default: the pool starts once
(shipping the warm αDB to forked workers via copy-on-write), is reused
across batches and concurrent async requests, and schedules every unit
of one example set onto the same worker with the parent's lookup state
shipped along — no child ever re-runs lookup.
``persistent_pool=False`` restores PR 2's throwaway per-batch executors
(kept as the benchmark baseline).  :meth:`DiscoverySession.
discover_many_async` exposes the same batch semantics to asyncio callers
— the serving tier (:mod:`repro.serve`) drives many concurrent requests
through one session.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .config import SquidConfig, validate_fanout
from .lookup import ExampleLookupError
from .pipeline import (
    LOOKUP_STAGE,
    DiscoveryResult,
    DiscoveryTimings,
    PipelineContext,
    check_example_count,
    discover_sequential,
    run_candidate,
    select_best,
)
from .properties import FamilyKind, PropertyFamily
from .workers import (
    ForkWorkerPool,
    WorkerPool,
    create_worker_pool,
    database_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .squid import SquidSystem


_MISSING = object()


def _probe_table(family: PropertyFamily) -> str:
    """The one relation ``entity_properties`` reads for this family."""
    if family.kind in (
        FamilyKind.DIRECT_CATEGORICAL,
        FamilyKind.DIRECT_NUMERIC,
        FamilyKind.FK_DIM,
    ):
        return family.entity
    if family.kind in (FamilyKind.FACT_DIM, FamilyKind.FACT_ATTR):
        return family.fact_table
    return family.derived_table


class ProbeCachingAdb:
    """Serve an αDB's per-entity point probes from materialised maps.

    ``entity_properties(family, key)`` is the hot probe of the online
    phase — disambiguation scores profiles with it and context discovery
    calls it once per (family, example).  The αDB answers each probe
    through hash-index machinery (index lookup + per-row dict build);
    over a batch of example sets drawn from one workload the same
    entities are probed again and again.

    Instead of memoising probe-by-probe, the first probe of a *family*
    transposes that family's backing relation once — one linear scan
    building ``entity key -> {value: θ}`` for **every** entity — after
    which all probes of the family are plain dict hits shared across the
    whole session.  The scan costs what a handful of individual derived
    probes cost, and the map's size is bounded by the relation it
    mirrors.

    Every other attribute transparently proxies to the wrapped αDB.
    Family maps are stamped with the ``(uid, version)`` of the relation
    they transpose, so base-data mutations invalidate them exactly like
    the query-result cache.  Cached dicts are shared between callers;
    the pipeline treats them as read-only.  Plain dict operations keep
    the maps safe under the thread executor (worst case: one duplicated
    scan).
    """

    _EMPTY: Dict[Any, float] = {}

    def __init__(self, adb) -> None:
        self._adb = adb
        self._families: Dict[
            Tuple[str, str], Tuple[Tuple[int, int], Dict[Any, Dict[Any, float]]]
        ] = {}
        self._dim_labels: Dict[str, Tuple[Tuple[int, int], Dict[Any, Any]]] = {}
        self.hits = 0
        self.family_scans = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._adb, name)

    @property
    def wrapped(self):
        """The underlying :class:`AbductionReadyDatabase`."""
        return self._adb

    def _family_map(self, family: PropertyFamily) -> Dict[Any, Dict[Any, float]]:
        # Hot path: no stamp check per probe — staleness is handled at
        # discovery boundaries by ``revalidate()`` (the pipeline itself
        # never mutates base data mid-discovery).
        entry = self._families.get(family.key)
        if entry is not None:
            return entry[1]
        relation = self._adb.db.relation(_probe_table(family))
        stamp = (relation.uid, relation.version)
        self.family_scans += 1
        out: Dict[Any, Dict[Any, float]] = {}
        if family.kind in (
            FamilyKind.DIRECT_CATEGORICAL,
            FamilyKind.DIRECT_NUMERIC,
            FamilyKind.FK_DIM,
        ):
            # Entity keys are the table's primary key (what lookup_pk
            # resolves); transpose key column -> attribute column.
            value_column = (
                family.fk_column
                if family.kind is FamilyKind.FK_DIM
                else family.column
            )
            keys = relation.column(relation.schema.primary_key)
            values = relation.column(value_column)
            for key, value in zip(keys, values):
                if value is not None:
                    out[key] = {value: 1.0}
        elif family.kind in (FamilyKind.FACT_DIM, FamilyKind.FACT_ATTR):
            value_column = (
                family.fact_dim_col
                if family.kind is FamilyKind.FACT_DIM
                else family.column
            )
            keys = relation.column(family.fact_entity_col)
            values = relation.column(value_column)
            for key, value in zip(keys, values):
                if value is not None:
                    out.setdefault(key, {})[value] = 1.0
        else:  # derived families: transpose the materialised αDB relation
            keys = relation.column(family.derived_entity_col)
            values = relation.column(family.derived_value_col)
            counts = relation.column("count")
            for key, value, count in zip(keys, values, counts):
                out.setdefault(key, {})[value] = float(count)
        self._families[family.key] = (stamp, out)
        return out

    def entity_properties(self, family: PropertyFamily, entity_key: Any) -> Dict[Any, float]:
        self.hits += 1
        return self._family_map(family).get(entity_key, self._EMPTY)

    def entity_properties_many(
        self, family: PropertyFamily, entity_keys: Sequence[Any]
    ) -> List[Dict[Any, float]]:
        """Batch probe: one map fetch, then plain dict hits per key."""
        family_map = self._family_map(family)
        self.hits += len(entity_keys)
        empty = self._EMPTY
        return [family_map.get(key, empty) for key in entity_keys]

    def association_total(self, family: PropertyFamily, entity_key: Any) -> float:
        """Total association mass, served from the materialised map."""
        return float(sum(self.entity_properties(family, entity_key).values()))

    def dim_label_of(self, family: PropertyFamily, value: Any) -> str:
        """Human-readable label, via a materialised dimension-label map."""
        if not family.value_is_ref:
            return str(value)
        entry = self._dim_labels.get(family.dim_table)
        if entry is None:
            relation = self._adb.db.relation(family.dim_table)
            labels = dict(
                zip(
                    relation.column(relation.schema.primary_key),
                    relation.column(family.dim_label),
                )
            )
            entry = ((relation.uid, relation.version), labels)
            self._dim_labels[family.dim_table] = entry
        label = entry[1].get(value, _MISSING)
        return str(value) if label is _MISSING else str(label)

    def warm_families(self) -> int:
        """Materialise every family map up front; returns the count."""
        count = 0
        for spec in self._adb.metadata.entities:
            for family in self._adb.families_for(spec.table):
                self._family_map(family)
                count += 1
        return count

    def revalidate(self) -> int:
        """Drop family maps whose backing relation changed since the scan.

        Called at every discovery boundary (once per batch / per single
        discovery), so probes inside a discovery skip the per-call stamp
        check.  Returns the number of maps dropped.
        """
        by_table: Dict[str, Tuple[int, int]] = {}

        def current_stamp(table: str) -> Tuple[int, int]:
            stamp = by_table.get(table)
            if stamp is None:
                relation = self._adb.db.relation(table)
                stamp = (relation.uid, relation.version)
                by_table[table] = stamp
            return stamp

        dropped = 0
        for key, (stamp, _) in list(self._families.items()):
            entity, attribute = key
            family = self._adb.family(entity, attribute)
            if stamp != current_stamp(_probe_table(family)):
                del self._families[key]
                dropped += 1
        for table, (stamp, _) in list(self._dim_labels.items()):
            if stamp != current_stamp(table):
                del self._dim_labels[table]
                dropped += 1
        return dropped

    def stats(self) -> Dict[str, int]:
        """Probe/scan counters of the family-map cache.

        ``probe_hits`` is deliberately unlocked (the probe is the online
        phase's hottest call), so under thread fan-out it is a close
        approximation, not an exact tally."""
        return {
            "probe_hits": self.hits,
            "probe_family_scans": self.family_scans,
            "probe_families": len(self._families),
        }


@dataclass
class BatchOutcome:
    """Result of one example set within a batch discovery."""

    examples: List[str]
    result: Optional[DiscoveryResult] = None
    error: Optional[Exception] = None
    """An :class:`ExampleLookupError` when no entity attribute contains
    the whole set; any other failure propagates out of the batch call."""

    seconds: float = 0.0
    """Per-set discovery cost: measured wall-clock on the sequential
    (``jobs=1``) path, summed per-stage CPU time under parallel fan-out
    (where per-set wall-clock is not observable; the batch-level wall is
    in :meth:`DiscoverySession.stats`)."""

    @property
    def ok(self) -> bool:
        """Whether discovery produced a result for this set."""
        return self.result is not None


# Fork-inherited state for the process executor: set in the parent right
# before the pool is created; children receive it through fork()'s
# copy-on-write snapshot, so nothing heavyweight is ever pickled.
# _FORK_LOCK serialises concurrent process-executor batches — the global
# must not be reassigned between another session's assignment and its
# workers forking.
_FORK_STATE: Optional[Tuple[Any, Any, List[List[str]], SquidConfig]] = None
_FORK_LOCK = threading.Lock()
_FORK_MATCHES: Dict[int, Any] = {}


def _fork_unit(unit: Tuple[int, int]) -> Tuple[int, int, DiscoveryResult]:
    """Process-pool worker: run one (example set, candidate) unit."""
    assert _FORK_STATE is not None, "worker forked without session state"
    adb, backend, sets, config = _FORK_STATE
    set_idx, cand_idx = unit
    matches = _FORK_MATCHES.get(set_idx)
    if matches is None:
        # Lookup re-runs once per child process per set (cheap: one probe
        # of the inverted index); candidates then come out identical to
        # the parent's because lookup is deterministic.
        ctx = PipelineContext(
            adb=adb, backend=backend, config=config, examples=sets[set_idx]
        )
        LOOKUP_STAGE(ctx)
        matches = ctx.matches
        _FORK_MATCHES[set_idx] = matches
    candidate_ctx = PipelineContext(
        adb=adb,
        backend=backend,
        config=config,
        examples=sets[set_idx],
        match=matches[cand_idx],
    )
    return set_idx, cand_idx, run_candidate(candidate_ctx)


class DiscoverySession:
    """Discover many example sets in one call over a shared warm αDB.

    Construct directly or via :meth:`SquidSystem.session`.  The session
    holds no mutable αDB state of its own beyond the probe memo, so one
    system can serve many concurrent sessions.
    """

    def __init__(
        self,
        system: "SquidSystem",
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
        share_probes: bool = True,
        persistent_pool: Optional[bool] = None,
    ) -> None:
        self.system = system
        self.jobs = system.config.jobs if jobs is None else jobs
        self.executor = executor or system.config.executor
        validate_fanout(self.jobs, self.executor)
        self.adb = ProbeCachingAdb(system.adb) if share_probes else system.adb
        self._backend = system.backend
        self.persistent_pool = (
            system.config.persistent_pool
            if persistent_pool is None
            else persistent_pool
        )
        self.executor_used: Optional[str] = None
        """Pool flavour of the last parallel batch (None before one ran;
        'process' silently degrades to 'thread' where fork is missing)."""

        self.batches = 0
        self.sets_discovered = 0
        self.last_batch_wall_seconds = 0.0
        self.pool_starts = 0
        self.pool_restarts = 0

        self._pool: Optional[WorkerPool] = None
        self._pool_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._reval_lock = threading.Lock()
        self._async_executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # warm-up
    # ------------------------------------------------------------------
    def warm(self, tables: Optional[Sequence[str]] = None) -> int:
        """Pre-build the αDB state discovery would fault in lazily.

        Covers the relation layer's cached column/sorted views and — when
        probe sharing is on — the per-family probe maps, so batch
        workloads pay the one-time construction up front instead of
        inside the first (timed) discovery.  Returns the number of views
        and maps built or refreshed.  Unsortable object columns simply
        have no sorted view (``sorted_view`` returns None) and are
        skipped.
        """
        db = self.system.adb.db
        names = list(tables) if tables is not None else db.table_names()
        built = 0
        for name in names:
            relation = db.relation(name)
            for col in relation.schema.columns:
                relation.column_array(col.name)
                relation.sorted_view(col.name)
                built += 1
        if isinstance(self.adb, ProbeCachingAdb):
            built += self.adb.warm_families()
        self.system.warm_backend()
        return built

    # ------------------------------------------------------------------
    # persistent worker pool
    # ------------------------------------------------------------------
    def start_pool(self) -> Optional[WorkerPool]:
        """Start the persistent pool now (idempotent; None when unused).

        Called implicitly by the first parallel batch; call it explicitly
        after :meth:`warm` so forked workers inherit the warm state in
        their copy-on-write snapshot (the serving tier does exactly
        that: warm → start_pool → accept requests)."""
        if self.jobs <= 1 or not self.persistent_pool:
            return None
        return self._ensure_pool()

    def _ensure_pool(self) -> WorkerPool:
        with self._pool_lock:
            pool = self._pool
            if (
                pool is not None
                and not pool.closed
                and isinstance(pool, ForkWorkerPool)
                and pool.fingerprint != database_fingerprint(self.system.adb.db)
            ):
                # Forked workers hold a copy-on-write snapshot; base-data
                # mutations leave them stale, so restart on a new stamp.
                pool.close()
                pool = None
                self.pool_restarts += 1
            if pool is None or pool.closed:
                pool = create_worker_pool(
                    self.adb, self._backend, self.jobs, self.executor
                )
                pool.start()
                self.pool_starts += 1
                self._pool = pool
            return pool

    def close(self) -> None:
        """Shut down the persistent pool and the async offload executor.

        The session stays usable for sequential discovery afterwards; a
        later parallel batch simply starts a fresh pool."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            executor, self._async_executor = self._async_executor, None
        if pool is not None:
            pool.close()
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "DiscoverySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _offload_executor(self) -> ThreadPoolExecutor:
        """Bounded executor for the async path's blocking fragments
        (revalidation, lookup, and whole sequential discoveries)."""
        with self._pool_lock:
            if self._async_executor is None:
                self._async_executor = ThreadPoolExecutor(
                    max_workers=max(2, self.jobs),
                    thread_name_prefix="repro-session-async",
                )
            return self._async_executor

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def discover(
        self,
        examples: Sequence[str],
        config: Optional[SquidConfig] = None,
    ) -> DiscoveryResult:
        """One sequential discovery sharing this session's warm state."""
        config = config or self.system.config
        self._revalidate_probes()
        return discover_sequential(self.adb, self._backend, examples, config)

    def discover_many(
        self,
        example_sets: Sequence[Sequence[str]],
        config: Optional[SquidConfig] = None,
    ) -> List[BatchOutcome]:
        """Discover every example set; one :class:`BatchOutcome` each.

        Output is identical for any ``jobs``/``executor`` setting — the
        fan-out only changes *where* candidate work units run, never what
        they compute.  Sets whose examples match no entity attribute come
        back with ``error`` set instead of failing the whole batch.
        """
        config = config or self.system.config
        sets = [list(s) for s in example_sets]
        start = time.perf_counter()
        self._revalidate_probes()
        if self.jobs <= 1:
            outcomes = [self._discover_one(s, config) for s in sets]
        else:
            outcomes = self._discover_parallel(sets, config)
        self.last_batch_wall_seconds = time.perf_counter() - start
        with self._counter_lock:
            self.batches += 1
            self.sets_discovered += sum(1 for o in outcomes if o.ok)
        return outcomes

    def _revalidate_probes(self) -> None:
        """Probe-map revalidation at a discovery boundary (thread-safe:
        concurrent async requests all hit this)."""
        if isinstance(self.adb, ProbeCachingAdb):
            with self._reval_lock:
                self.adb.revalidate()

    def _discover_one(self, examples: List[str], config: SquidConfig) -> BatchOutcome:
        outcome = BatchOutcome(examples=examples)
        try:
            result = discover_sequential(self.adb, self._backend, examples, config)
        except ExampleLookupError as exc:
            outcome.error = exc
            return outcome
        outcome.result = result
        assert result.aggregate_timings is not None
        outcome.seconds = result.aggregate_timings.wall_seconds
        return outcome

    def _discover_parallel(
        self, sets: List[List[str]], config: SquidConfig
    ) -> List[BatchOutcome]:
        outcomes = [BatchOutcome(examples=s) for s in sets]
        contexts: Dict[int, PipelineContext] = {}
        units: List[Tuple[int, int]] = []
        # Shared per-set lookup stays in the caller: it is one inverted-
        # index probe, and doing it up front lets the fan-out see every
        # unit at once.
        for i, examples in enumerate(sets):
            check_example_count(examples, config)
            ctx = PipelineContext(
                adb=self.adb, backend=self._backend, config=config, examples=examples
            )
            try:
                LOOKUP_STAGE(ctx)
            except ExampleLookupError as exc:
                outcomes[i].error = exc
                continue
            assert ctx.matches is not None
            contexts[i] = ctx
            units.extend((i, j) for j in range(len(ctx.matches)))

        results = self._fan_out(units, contexts, sets, config)

        for i, ctx in contexts.items():
            assert ctx.matches is not None
            candidates = [results[(i, j)] for j in range(len(ctx.matches))]
            aggregate = DiscoveryTimings(
                lookup_seconds=ctx.timings.lookup_seconds
            )
            for candidate in candidates:
                aggregate.accumulate(candidate.timings)
            best = select_best(candidates)
            best.aggregate_timings = aggregate
            outcomes[i].result = best
            outcomes[i].seconds = aggregate.cpu_seconds
        return outcomes

    def _fan_out(
        self,
        units: List[Tuple[int, int]],
        contexts: Dict[int, PipelineContext],
        sets: List[List[str]],
        config: SquidConfig,
    ) -> Dict[Tuple[int, int], DiscoveryResult]:
        if self.persistent_pool:
            pool = self._ensure_pool()
            self.executor_used = pool.kind
            return self._fan_out_pool(pool, units, contexts, sets, config)
        if (
            self.executor == "process"
            and "fork" in multiprocessing.get_all_start_methods()
        ):
            self.executor_used = "process"
            return self._fan_out_processes(units, contexts, sets, config)
        self.executor_used = "thread"
        return self._fan_out_threads(units, contexts)

    def _fan_out_pool(
        self,
        pool: WorkerPool,
        units: List[Tuple[int, int]],
        contexts: Dict[int, PipelineContext],
        sets: List[List[str]],
        config: SquidConfig,
    ) -> Dict[Tuple[int, int], DiscoveryResult]:
        tokens = {i: pool.new_token() for i in contexts}
        futures = {}
        for i, j in units:
            ctx = contexts[i]
            assert ctx.matches is not None
            futures[(i, j)] = pool.submit_unit(
                tokens[i], sets[i], j, config, ctx.matches
            )
        results: Dict[Tuple[int, int], DiscoveryResult] = {}
        try:
            for (i, j), future in futures.items():
                result = future.result()
                # Workers never re-run lookup; attribute the parent's
                # shared lookup time like every other fan-out path.
                result.timings.lookup_seconds = contexts[i].timings.lookup_seconds
                results[(i, j)] = result
        finally:
            pool.forget(list(tokens.values()))
        pool.note_batch_served()
        return results

    def _fan_out_threads(
        self,
        units: List[Tuple[int, int]],
        contexts: Dict[int, PipelineContext],
    ) -> Dict[Tuple[int, int], DiscoveryResult]:
        results: Dict[Tuple[int, int], DiscoveryResult] = {}
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = {}
            for i, j in units:
                ctx = contexts[i]
                assert ctx.matches is not None
                candidate_ctx = ctx.for_candidate(ctx.matches[j])
                futures[pool.submit(run_candidate, candidate_ctx)] = (i, j)
            for future, key in futures.items():
                results[key] = future.result()
        return results

    def _fan_out_processes(
        self,
        units: List[Tuple[int, int]],
        contexts: Dict[int, PipelineContext],
        sets: List[List[str]],
        config: SquidConfig,
    ) -> Dict[Tuple[int, int], DiscoveryResult]:
        global _FORK_STATE
        mp_context = multiprocessing.get_context("fork")
        with _FORK_LOCK:
            _FORK_STATE = (self.adb, self._backend, sets, config)
            try:
                with ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=mp_context
                ) as pool:
                    results: Dict[Tuple[int, int], DiscoveryResult] = {}
                    for set_idx, cand_idx, result in pool.map(_fork_unit, units):
                        # Children re-measure their own lookup; attribute
                        # the parent's shared lookup time like the thread
                        # path.
                        result.timings.lookup_seconds = contexts[
                            set_idx
                        ].timings.lookup_seconds
                        results[(set_idx, cand_idx)] = result
                    return results
            finally:
                _FORK_STATE = None

    # ------------------------------------------------------------------
    # async discovery (the serving path)
    # ------------------------------------------------------------------
    async def discover_async(
        self,
        examples: Sequence[str],
        config: Optional[SquidConfig] = None,
    ) -> BatchOutcome:
        """One discovery as a coroutine; safe to run many concurrently.

        The blocking fragments (probe revalidation, the shared lookup,
        and — when no pool is active — the whole sequential discovery)
        run on a bounded offload executor; candidate units go through the
        persistent worker pool, whose futures await natively.  Results
        are identical to :meth:`discover_many`: the async path changes
        *where* units run, never what they compute.
        """
        config = config or self.system.config
        examples = list(examples)
        loop = asyncio.get_running_loop()
        outcome = BatchOutcome(examples=examples)
        if self.jobs <= 1 or not self.persistent_pool:
            def run_sequential() -> BatchOutcome:
                self._revalidate_probes()
                return self._discover_one(examples, config)

            outcome = await loop.run_in_executor(
                self._offload_executor(), run_sequential
            )
            self._count_outcomes([outcome])
            return outcome

        def prepare() -> PipelineContext:
            self._revalidate_probes()
            check_example_count(examples, config)
            ctx = PipelineContext(
                adb=self.adb,
                backend=self._backend,
                config=config,
                examples=examples,
            )
            LOOKUP_STAGE(ctx)
            return ctx

        try:
            ctx = await loop.run_in_executor(self._offload_executor(), prepare)
        except ExampleLookupError as exc:
            outcome.error = exc
            self._count_outcomes([outcome])
            return outcome
        assert ctx.matches is not None
        pool = self._ensure_pool()
        self.executor_used = pool.kind
        token = pool.new_token()
        try:
            candidates = list(
                await asyncio.gather(
                    *(
                        asyncio.wrap_future(
                            pool.submit_unit(
                                token, examples, j, config, ctx.matches
                            )
                        )
                        for j in range(len(ctx.matches))
                    )
                )
            )
        finally:
            pool.forget([token])
        aggregate = DiscoveryTimings(lookup_seconds=ctx.timings.lookup_seconds)
        for candidate in candidates:
            candidate.timings.lookup_seconds = ctx.timings.lookup_seconds
            aggregate.accumulate(candidate.timings)
        best = select_best(candidates)
        best.aggregate_timings = aggregate
        outcome.result = best
        outcome.seconds = aggregate.cpu_seconds
        self._count_outcomes([outcome])
        return outcome

    async def discover_many_async(
        self,
        example_sets: Sequence[Sequence[str]],
        config: Optional[SquidConfig] = None,
    ) -> List[BatchOutcome]:
        """Discover every example set concurrently; same output order and
        same :class:`BatchOutcome` semantics as :meth:`discover_many`."""
        start = time.perf_counter()
        outcomes = list(
            await asyncio.gather(
                *(self.discover_async(s, config) for s in example_sets)
            )
        )
        self.last_batch_wall_seconds = time.perf_counter() - start
        with self._counter_lock:
            self.batches += 1
        return outcomes

    def _count_outcomes(self, outcomes: Sequence[BatchOutcome]) -> None:
        with self._counter_lock:
            self.sets_discovered += sum(1 for o in outcomes if o.ok)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Session counters: probe memo, query cache, engine routing."""
        out: Dict[str, Any] = {
            "batches": self.batches,
            "sets_discovered": self.sets_discovered,
            "last_batch_wall_seconds": self.last_batch_wall_seconds,
            "jobs": self.jobs,
            "executor": self.executor_used or self.executor,
        }
        if isinstance(self.adb, ProbeCachingAdb):
            out.update(self.adb.stats())
        with self._pool_lock:
            pool = self._pool
        if pool is not None:
            out.update(pool.stats())
            out["pool_starts"] = self.pool_starts
            out["pool_restarts"] = self.pool_restarts
        cache = self.system.cache_stats()
        if cache is not None:
            out.update({f"cache_{k}": v for k, v in cache.items()})
        engine = self.system.backend_stats()
        if engine is not None:
            out.update({f"engine_{k}": v for k, v in engine.items()})
        return out
