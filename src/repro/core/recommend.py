"""Example recommendation — a §9 future direction, implemented.

The paper closes by suggesting "example recommendation to increase sample
diversity and improve abduction".  The idea: after an initial discovery,
some filter decisions are *borderline* — their include and exclude scores
are close, so the abduced query may hinge on a coincidence.  The most
informative next example is an entity from the current result set that
*discriminates* those borderline filters:

* if the user accepts the suggestion, the coincidental context disappears
  (the new example lacks the property) and the filter is dropped with
  confidence;
* if the user rejects it, that is evidence the property is intended.

Candidates are scored by how many borderline filters they discriminate,
with a small diversity bonus for differing from the current examples on
decided filters as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from .abduction import FilterDecision
from .properties import FamilyKind, Filter
from .squid import DiscoveryResult, SquidSystem


@dataclass
class Recommendation:
    """One suggested example with its rationale."""

    entity_key: Any
    display: str
    score: float
    discriminates: List[str] = field(default_factory=list)
    """Notations of the borderline filters this entity would resolve."""


def borderline_decisions(
    result: DiscoveryResult, factor: float = 8.0
) -> List[FilterDecision]:
    """Decisions whose include/exclude scores are within ``factor``.

    These are the filters whose verdicts could plausibly flip with one
    more example.
    """
    out = []
    for decision in result.abduction.decisions:
        hi = max(decision.include_score, decision.exclude_score)
        lo = min(decision.include_score, decision.exclude_score)
        if lo <= 0.0:
            continue
        if hi / lo <= factor:
            out.append(decision)
    return out


def _entity_holds(squid: SquidSystem, filt: Filter, key: Any) -> bool:
    """Whether one entity satisfies a filter's property."""
    family = filt.family
    props = squid.adb.entity_properties(family, key)
    prop = filt.prop
    if family.kind is FamilyKind.DIRECT_NUMERIC:
        if not props:
            return False
        value = next(iter(props))
        low, high = prop.value  # type: ignore[misc]
        return low <= value <= high
    if isinstance(prop.value, frozenset):
        return any(v in props for v in prop.value)
    if family.kind.is_basic:
        return prop.value in props
    theta = prop.theta or 1.0
    return props.get(prop.value, 0.0) >= theta


def recommend_examples(
    squid: SquidSystem,
    result: DiscoveryResult,
    k: int = 5,
    borderline_factor: float = 8.0,
    candidate_cap: int = 500,
) -> List[Recommendation]:
    """Suggest up to ``k`` further examples that sharpen the abduction.

    Candidates are drawn from the current abduced query's result set
    (anything else would contradict the examples already given).  Entities
    identical to the current example set are skipped.
    """
    borderline = borderline_decisions(result, borderline_factor)
    rows = squid.execute(result.keyed_query).rows[:candidate_cap]
    current = set(result.entity_keys)
    recommendations: List[Recommendation] = []
    for key, display in ((row[0], row[1]) for row in rows):
        if key in current:
            continue
        discriminates = []
        score = 0.0
        for decision in borderline:
            if not _entity_holds(squid, decision.filt, key):
                discriminates.append(decision.filt.notation())
                score += 1.0
        # diversity bonus: differing on decided-but-rejected contexts keeps
        # the sample from reinforcing coincidences
        for decision in result.abduction.decisions:
            if decision.included or decision in borderline:
                continue
            if not _entity_holds(squid, decision.filt, key):
                score += 0.1
        if score > 0.0:
            recommendations.append(
                Recommendation(
                    entity_key=key,
                    display=str(display),
                    score=score,
                    discriminates=discriminates,
                )
            )
    recommendations.sort(key=lambda r: (-r.score, repr(r.entity_key)))
    return recommendations[:k]
