"""The staged online discovery pipeline (Figure 4).

The paper's online module is a fixed five-stage sequence — entity lookup,
disambiguation, semantic-context discovery, abduction, query construction.
This module makes each stage an explicit, independently-testable object
operating on a :class:`PipelineContext`:

* :class:`LookupStage` runs once per example set and produces the
  candidate base queries (one :class:`~repro.core.lookup.EntityMatch`
  per entity type containing all examples);
* :class:`DisambiguationStage`, :class:`ContextStage`,
  :class:`AbductionStage` and :class:`ConstructionStage` run once per
  candidate; a candidate's context is forked off the shared one with
  :meth:`PipelineContext.for_candidate`.

Carving the stages out of ``SquidSystem.discover`` is what enables the
batch/parallel layer: a (example set × candidate base query) pair is an
independent work unit that :class:`~repro.core.session.DiscoverySession`
can fan out across a worker pool, while :class:`SquidSystem` keeps the
exact sequential semantics by driving the same stages in a loop.

Every stage records the CPU time it spent into the context's
:class:`DiscoveryTimings` (summed per-stage time; the wall clock of a
whole discovery is measured separately by the driver, so concurrent
candidate fan-out cannot overstate end-to-end latency).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ..sql.ast import AnyQuery, Query
from ..sql.engine import ExecutionBackend
from ..sql.formatter import format_query
from .abduction import AbductionResult, abduce
from .base_query import build_adb_query, build_original_query
from .config import SquidConfig
from .context import ContextSet, discover_contexts
from .disambiguation import DisambiguationResult, disambiguate
from .lookup import EntityMatch, lookup_examples
from .metadata import EntitySpec


@dataclass
class DiscoveryTimings:
    """Per-stage timings of one discovery call.

    The five stage fields hold *summed CPU time*: each stage accounts the
    time it actually spent computing, and ``accumulate`` adds candidates
    together.  Under parallel candidate fan-out summed stage time can
    exceed the elapsed time, so the end-to-end latency is tracked
    separately in ``wall_seconds`` (measured by whichever driver —
    ``SquidSystem.discover`` or ``DiscoverySession`` — owns the clock).
    """

    lookup_seconds: float = 0.0
    disambiguation_seconds: float = 0.0
    context_seconds: float = 0.0
    abduction_seconds: float = 0.0
    construction_seconds: float = 0.0

    wall_seconds: float = 0.0
    """Measured wall-clock of the discovery this timing describes (0.0 on
    per-candidate timings, which only ever run on one worker)."""

    @property
    def cpu_seconds(self) -> float:
        """Summed per-stage compute time (>= wall under concurrency)."""
        return (
            self.lookup_seconds
            + self.disambiguation_seconds
            + self.context_seconds
            + self.abduction_seconds
            + self.construction_seconds
        )

    @property
    def total_seconds(self) -> float:
        """Backward-compatible alias for :attr:`cpu_seconds`."""
        return self.cpu_seconds

    def accumulate(self, other: "DiscoveryTimings") -> None:
        """Add ``other``'s per-stage CPU times (lookup excluded: it is
        shared across candidate base queries and counted once by the
        caller; ``wall_seconds`` is never summed — it is measured)."""
        self.disambiguation_seconds += other.disambiguation_seconds
        self.context_seconds += other.context_seconds
        self.abduction_seconds += other.abduction_seconds
        self.construction_seconds += other.construction_seconds


@dataclass
class DiscoveryResult:
    """Everything SQuID inferred for one example set."""

    entity: EntitySpec
    entity_keys: List[Any]
    contexts: ContextSet
    abduction: AbductionResult
    query: Query
    """The abduced SPJ query over the αDB (Q5 form), selecting the
    display attribute."""

    keyed_query: Query
    """Same query additionally projecting the entity key (for metrics)."""

    original_query: AnyQuery
    """Equivalent SPJAI query over the original schema (Q4 form)."""

    timings: DiscoveryTimings
    """CPU time of *this* candidate's pipeline (lookup is shared)."""

    disambiguation: Optional[DisambiguationResult] = None
    log_posterior: float = 0.0

    aggregate_timings: Optional[DiscoveryTimings] = None
    """Set on the winning result only: summed CPU time across *all*
    candidate base queries — including the ones that lost the posterior
    comparison.  Sequential drivers additionally record the call's
    measured ``wall_seconds``; under parallel batch fan-out per-set wall
    clock is not observable (sets interleave on the workers), so it
    stays 0.0 there and the batch-level wall lives in
    ``DiscoverySession.stats()['last_batch_wall_seconds']``."""

    @property
    def sql(self) -> str:
        """SQL text of the abduced αDB query."""
        return format_query(self.query)

    @property
    def original_sql(self) -> str:
        """SQL text of the original-schema SPJAI rendering."""
        return format_query(self.original_query)

    def explain(self) -> str:
        """Human-readable abduction report (filters kept vs dropped)."""
        lines = [f"entity: {self.entity.table} ({len(self.entity_keys)} examples)"]
        for decision in self.abduction.decisions:
            verdict = "KEEP" if decision.included else "drop"
            filt = decision.filt
            lines.append(
                f"  [{verdict}] {filt.notation()} "
                f"ψ={filt.selectivity:.4f} "
                f"Pr(φ)={decision.prior.prior:.4f} "
                f"include={decision.include_score:.3e} "
                f"exclude={decision.exclude_score:.3e}"
            )
        return "\n".join(lines)


@dataclass
class PipelineContext:
    """Mutable per-item state flowing through the discovery stages.

    One context per example set carries the shared lookup result; each
    candidate base query then gets its own fork (``for_candidate``) so
    candidates never share mutable state and can run concurrently.
    """

    adb: Any
    """The αDB (or a probe-caching proxy around it) stages read from."""

    backend: ExecutionBackend
    """Execution backend used by construction-time pruning probes."""

    config: SquidConfig
    examples: List[str]

    # -- populated by LookupStage (shared across candidates) -----------
    matches: Optional[List[EntityMatch]] = None

    # -- per-candidate state (set by for_candidate / candidate stages) --
    match: Optional[EntityMatch] = None
    resolution: Optional[DisambiguationResult] = None
    keys: Optional[List[Any]] = None
    contexts: Optional[ContextSet] = None
    abduction: Optional[AbductionResult] = None
    selected: Optional[List[Any]] = None
    """Filters surviving abduction (after the optional pruning pass)."""

    query: Optional[Query] = None
    keyed_query: Optional[Query] = None
    original_query: Optional[AnyQuery] = None

    timings: DiscoveryTimings = field(default_factory=DiscoveryTimings)

    def for_candidate(self, match: EntityMatch) -> "PipelineContext":
        """Fork an independent per-candidate context off this one.

        The shared lookup time is attributed to every candidate, matching
        the pre-pipeline accounting."""
        return PipelineContext(
            adb=self.adb,
            backend=self.backend,
            config=self.config,
            examples=self.examples,
            match=match,
            timings=DiscoveryTimings(lookup_seconds=self.timings.lookup_seconds),
        )

    def to_result(self) -> DiscoveryResult:
        """Assemble the DiscoveryResult of a fully-run candidate context."""
        assert self.match is not None and self.abduction is not None
        return DiscoveryResult(
            entity=self.match.entity,
            entity_keys=self.keys or [],
            contexts=self.contexts,
            abduction=self.abduction,
            query=self.query,
            keyed_query=self.keyed_query,
            original_query=self.original_query,
            timings=self.timings,
            disambiguation=self.resolution,
            log_posterior=self.abduction.log_posterior(),
        )


class Stage(ABC):
    """One pipeline stage: mutates a context, accounts its own time."""

    name: str = "stage"
    timing_field: str = ""

    def __call__(self, ctx: PipelineContext) -> PipelineContext:
        start = time.perf_counter()
        self.run(ctx)
        elapsed = time.perf_counter() - start
        if self.timing_field:
            setattr(
                ctx.timings,
                self.timing_field,
                getattr(ctx.timings, self.timing_field) + elapsed,
            )
        return ctx

    @abstractmethod
    def run(self, ctx: PipelineContext) -> None:
        """Perform the stage's work on ``ctx``."""


class LookupStage(Stage):
    """Entity lookup (§6.1): examples -> candidate base queries."""

    name = "lookup"
    timing_field = "lookup_seconds"

    def run(self, ctx: PipelineContext) -> None:
        ctx.matches = lookup_examples(ctx.adb, ctx.examples)


class DisambiguationStage(Stage):
    """Entity disambiguation (§6.1.1): pick the most similar assignment."""

    name = "disambiguation"
    timing_field = "disambiguation_seconds"

    def run(self, ctx: PipelineContext) -> None:
        assert ctx.match is not None
        ctx.resolution = disambiguate(ctx.adb, ctx.match, ctx.config)
        ctx.keys = ctx.resolution.keys


class ContextStage(Stage):
    """Semantic context discovery (§6.1.2) over the resolved entities."""

    name = "context"
    timing_field = "context_seconds"

    def run(self, ctx: PipelineContext) -> None:
        assert ctx.match is not None and ctx.keys is not None
        ctx.contexts = discover_contexts(
            ctx.adb, ctx.match.entity.table, ctx.keys, ctx.config
        )


class AbductionStage(Stage):
    """Query abduction (Algorithm 1) over the discovered contexts."""

    name = "abduction"
    timing_field = "abduction_seconds"

    def run(self, ctx: PipelineContext) -> None:
        assert ctx.contexts is not None and ctx.keys is not None
        ctx.abduction = abduce(ctx.contexts.filters, len(ctx.keys), ctx.config)


class ConstructionStage(Stage):
    """Query construction: αDB SPJ form plus the original-schema SPJAI."""

    name = "construction"
    timing_field = "construction_seconds"

    def run(self, ctx: PipelineContext) -> None:
        assert ctx.match is not None and ctx.abduction is not None
        entity = ctx.match.entity
        selected = ctx.abduction.selected
        if ctx.config.prune_redundant_filters and len(selected) > 1:
            selected = prune_redundant(ctx.adb, ctx.backend, entity, selected)
        ctx.selected = list(selected)
        ctx.query = build_adb_query(ctx.adb, entity, selected)
        ctx.keyed_query = build_adb_query(
            ctx.adb, entity, selected, select_key=True
        )
        ctx.original_query = build_original_query(ctx.adb, entity, selected)


def prune_redundant(adb, backend: ExecutionBackend, entity, selected):
    """Occam's-razor pass: drop filters that do not change the result.

    Filters are probed most-common-first (descending selectivity): a broad
    filter subsumed by a sharper one contributes nothing to the result set
    and only inflates the query.  Each probe is one αDB query, so the pass
    costs O(|ϕ|) executions (mostly cache hits when a result cache wraps
    the backend).
    """
    current = list(selected)
    baseline = backend.execute(
        build_adb_query(adb, entity, current, select_key=True)
    ).as_set()
    for filt in sorted(selected, key=lambda f: -f.selectivity):
        if len(current) <= 1:
            break
        trial = [f for f in current if f is not filt]
        result = backend.execute(
            build_adb_query(adb, entity, trial, select_key=True)
        ).as_set()
        if result == baseline:
            current = trial
    return current


#: Stage instances are stateless; module-level singletons are shared.
LOOKUP_STAGE = LookupStage()

#: The per-candidate stage sequence of Figure 4 (after shared lookup).
CANDIDATE_STAGES = (
    DisambiguationStage(),
    ContextStage(),
    AbductionStage(),
    ConstructionStage(),
)


def run_candidate(ctx: PipelineContext) -> DiscoveryResult:
    """Run the per-candidate stages on a forked context; return the result.

    This is the independent work unit the batch session fans out: it only
    touches the (read-only) αDB, the execution backend, and its own
    context.
    """
    for stage in CANDIDATE_STAGES:
        stage(ctx)
    return ctx.to_result()


def discover_sequential(
    adb,
    backend: ExecutionBackend,
    examples: Sequence[str],
    config: SquidConfig,
) -> DiscoveryResult:
    """One full sequential discovery: shared lookup, every candidate in
    order, winner by log posterior.

    This is the reference control flow ``SquidSystem.discover`` exposes;
    the batch session reuses it verbatim on its ``jobs=1`` path so
    sequential and batch discovery cannot drift apart.
    """
    examples = list(examples)
    check_example_count(examples, config)
    wall_start = time.perf_counter()
    ctx = PipelineContext(
        adb=adb, backend=backend, config=config, examples=examples
    )
    LOOKUP_STAGE(ctx)
    assert ctx.matches is not None
    aggregate = DiscoveryTimings(lookup_seconds=ctx.timings.lookup_seconds)
    best: Optional[DiscoveryResult] = None
    for match in ctx.matches:
        candidate_ctx = ctx.for_candidate(match)
        candidate = run_candidate(candidate_ctx)
        aggregate.accumulate(candidate_ctx.timings)
        if best is None or candidate.log_posterior > best.log_posterior:
            best = candidate
    assert best is not None
    aggregate.wall_seconds = time.perf_counter() - wall_start
    best.aggregate_timings = aggregate
    return best


def select_best(candidates: Sequence[DiscoveryResult]) -> DiscoveryResult:
    """The candidate with the highest unnormalised log posterior.

    Valid base queries carry equal priors (§4.3); ties break toward the
    earlier candidate, matching the original sequential loop.
    """
    best: Optional[DiscoveryResult] = None
    for candidate in candidates:
        if best is None or candidate.log_posterior > best.log_posterior:
            best = candidate
    assert best is not None
    return best


def check_example_count(examples: Sequence[str], config: SquidConfig) -> None:
    """Enforce the QBE few-examples cap (shared by system and session)."""
    if len(examples) > config.max_example_warn:
        raise ValueError(
            f"{len(examples)} examples provided; QBE expects few "
            f"(cap: {config.max_example_warn})"
        )
