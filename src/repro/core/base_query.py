"""Base-query and final-query construction (Section 6.2).

The base query Q* is the minimal project-join query over the matched
entity (``SELECT name FROM person``).  Each abduced filter then appends
relations to the FROM clause, key--foreign-key join conditions, and its
selection predicates — at most one (derived) relation per filter, because
the αDB has already materialised the aggregations.

Two renderings are produced:

* :func:`build_adb_query` — the SPJ query over the αDB (the paper's Q5
  form), directly executable against the augmented database;
* :func:`build_original_query` — the equivalent SPJAI query over the
  *original* schema (the paper's Q4 form), using GROUP BY/HAVING for one
  aggregate filter and INTERSECT when several aggregate filters apply.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..sql.ast import (
    AnyQuery,
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)
from .adb import AbductionReadyDatabase
from .metadata import EntitySpec
from .properties import FamilyKind, Filter


def build_base_query(entity: EntitySpec) -> Query:
    """Q*: the minimal PJ query projecting the display attribute."""
    return Query(
        select=(ColumnRef(entity.table, entity.display),),
        tables=(TableRef(entity.table),),
    )


class _AliasAllocator:
    """Fresh, deterministic table aliases per query construction."""

    def __init__(self) -> None:
        self._used = set()

    def fresh(self, base: str) -> str:
        if base not in self._used:
            self._used.add(base)
            return base
        i = 1
        while f"{base}_{i}" in self._used:
            i += 1
        alias = f"{base}_{i}"
        self._used.add(alias)
        return alias

    def reserve(self, name: str) -> None:
        self._used.add(name)


def build_adb_query(
    adb: AbductionReadyDatabase,
    entity: EntitySpec,
    filters: Sequence[Filter],
    *,
    select_key: bool = False,
) -> Query:
    """The abduced SPJ query over the αDB (Q5 form).

    ``select_key=True`` additionally projects the entity key, which the
    evaluation harness uses to compare result sets robustly.
    """
    aliases = _AliasAllocator()
    aliases.reserve(entity.table)
    select: Tuple[ColumnRef, ...] = (ColumnRef(entity.table, entity.display),)
    if select_key:
        select = (ColumnRef(entity.table, entity.key),) + select
    tables: List[TableRef] = [TableRef(entity.table)]
    joins: List[JoinCondition] = []
    predicates: List[Predicate] = []
    entity_key_ref = ColumnRef(entity.table, entity.key)

    for filt in filters:
        family = filt.family
        prop = filt.prop
        if family.kind is FamilyKind.DIRECT_CATEGORICAL:
            predicates.append(
                _categorical_predicate(
                    ColumnRef(entity.table, family.column), prop.value
                )
            )
        elif family.kind is FamilyKind.DIRECT_NUMERIC:
            low, high = prop.value  # type: ignore[misc]
            predicates.append(
                _range_predicate(ColumnRef(entity.table, family.column), low, high)
            )
        elif family.kind is FamilyKind.FK_DIM:
            dim_alias = aliases.fresh(family.dim_table)
            tables.append(TableRef(family.dim_table, dim_alias))
            joins.append(
                JoinCondition(
                    ColumnRef(entity.table, family.fk_column),
                    ColumnRef(dim_alias, family.dim_key),
                )
            )
            predicates.append(
                _dim_label_predicate(adb, family, dim_alias, prop.value)
            )
        elif family.kind is FamilyKind.FACT_DIM:
            fact_alias = aliases.fresh(family.fact_table)
            dim_alias = aliases.fresh(family.dim_table)
            tables.append(TableRef(family.fact_table, fact_alias))
            tables.append(TableRef(family.dim_table, dim_alias))
            joins.append(
                JoinCondition(
                    ColumnRef(fact_alias, family.fact_entity_col), entity_key_ref
                )
            )
            joins.append(
                JoinCondition(
                    ColumnRef(fact_alias, family.fact_dim_col),
                    ColumnRef(dim_alias, family.dim_key),
                )
            )
            predicates.append(
                Predicate(
                    ColumnRef(dim_alias, family.dim_label),
                    Op.EQ,
                    adb.dim_label_of(family, prop.value),
                )
            )
        elif family.kind is FamilyKind.FACT_ATTR:
            fact_alias = aliases.fresh(family.fact_table)
            tables.append(TableRef(family.fact_table, fact_alias))
            joins.append(
                JoinCondition(
                    ColumnRef(fact_alias, family.fact_entity_col), entity_key_ref
                )
            )
            predicates.append(
                Predicate(ColumnRef(fact_alias, family.column), Op.EQ, prop.value)
            )
        else:  # derived families probe the materialised αDB relation
            derived_alias = aliases.fresh(family.derived_table)
            tables.append(TableRef(family.derived_table, derived_alias))
            joins.append(
                JoinCondition(
                    ColumnRef(derived_alias, family.derived_entity_col),
                    entity_key_ref,
                )
            )
            if family.value_is_ref:
                dim_alias = aliases.fresh(family.dim_table)
                tables.append(TableRef(family.dim_table, dim_alias))
                joins.append(
                    JoinCondition(
                        ColumnRef(derived_alias, family.derived_value_col),
                        ColumnRef(dim_alias, family.dim_key),
                    )
                )
                predicates.append(
                    Predicate(
                        ColumnRef(dim_alias, family.dim_label),
                        Op.EQ,
                        adb.dim_label_of(family, prop.value),
                    )
                )
            else:
                predicates.append(
                    Predicate(
                        ColumnRef(derived_alias, family.derived_value_col),
                        Op.EQ,
                        prop.value,
                    )
                )
            theta = prop.theta or 1.0
            if theta > 1.0:
                predicates.append(
                    Predicate(ColumnRef(derived_alias, "count"), Op.GE, int(theta))
                )
    return Query(
        select=select,
        tables=tuple(tables),
        joins=tuple(joins),
        predicates=tuple(predicates),
    )


def build_original_query(
    adb: AbductionReadyDatabase,
    entity: EntitySpec,
    filters: Sequence[Filter],
) -> AnyQuery:
    """The equivalent SPJAI query over the original schema (Q4 form).

    Basic filters become joins over the base tables.  Each derived filter
    requires aggregation; with one such filter the query carries GROUP BY
    + HAVING, with several the query becomes an INTERSECT of aggregate
    blocks (the paper's I operator).
    """
    basic = [f for f in filters if f.family.kind.is_basic]
    derived = [f for f in filters if f.family.kind.is_derived]
    if not derived:
        return _original_block(adb, entity, basic, None)
    blocks = [_original_block(adb, entity, basic, agg) for agg in derived]
    if len(blocks) == 1:
        return blocks[0]
    return IntersectQuery(tuple(blocks))


def _original_block(
    adb: AbductionReadyDatabase,
    entity: EntitySpec,
    basic: Sequence[Filter],
    aggregate: Optional[Filter],
) -> Query:
    aliases = _AliasAllocator()
    aliases.reserve(entity.table)
    tables: List[TableRef] = [TableRef(entity.table)]
    joins: List[JoinCondition] = []
    predicates: List[Predicate] = []
    entity_key_ref = ColumnRef(entity.table, entity.key)

    for filt in basic:
        family = filt.family
        prop = filt.prop
        if family.kind is FamilyKind.DIRECT_CATEGORICAL:
            predicates.append(
                _categorical_predicate(
                    ColumnRef(entity.table, family.column), prop.value
                )
            )
        elif family.kind is FamilyKind.DIRECT_NUMERIC:
            low, high = prop.value  # type: ignore[misc]
            predicates.append(
                _range_predicate(ColumnRef(entity.table, family.column), low, high)
            )
        elif family.kind is FamilyKind.FK_DIM:
            dim_alias = aliases.fresh(family.dim_table)
            tables.append(TableRef(family.dim_table, dim_alias))
            joins.append(
                JoinCondition(
                    ColumnRef(entity.table, family.fk_column),
                    ColumnRef(dim_alias, family.dim_key),
                )
            )
            predicates.append(
                _dim_label_predicate(adb, family, dim_alias, prop.value)
            )
        elif family.kind is FamilyKind.FACT_ATTR:
            fact_alias = aliases.fresh(family.fact_table)
            tables.append(TableRef(family.fact_table, fact_alias))
            joins.append(
                JoinCondition(
                    ColumnRef(fact_alias, family.fact_entity_col), entity_key_ref
                )
            )
            predicates.append(
                Predicate(ColumnRef(fact_alias, family.column), Op.EQ, prop.value)
            )
        else:  # FACT_DIM
            fact_alias = aliases.fresh(family.fact_table)
            dim_alias = aliases.fresh(family.dim_table)
            tables.append(TableRef(family.fact_table, fact_alias))
            tables.append(TableRef(family.dim_table, dim_alias))
            joins.append(
                JoinCondition(
                    ColumnRef(fact_alias, family.fact_entity_col), entity_key_ref
                )
            )
            joins.append(
                JoinCondition(
                    ColumnRef(fact_alias, family.fact_dim_col),
                    ColumnRef(dim_alias, family.dim_key),
                )
            )
            predicates.append(
                Predicate(
                    ColumnRef(dim_alias, family.dim_label),
                    Op.EQ,
                    adb.dim_label_of(family, prop.value),
                )
            )

    group_by: Tuple[ColumnRef, ...] = ()
    having: Optional[HavingCount] = None
    if aggregate is not None:
        family = aggregate.family
        prop = aggregate.prop
        fact_alias = aliases.fresh(family.fact_table)
        tables.append(TableRef(family.fact_table, fact_alias))
        joins.append(
            JoinCondition(
                ColumnRef(fact_alias, family.fact_entity_col), entity_key_ref
            )
        )
        value_ref: ColumnRef
        if family.kind is FamilyKind.DERIVED_ENTITY:
            value_ref = ColumnRef(fact_alias, family.fact_dim_col)
            predicates.append(Predicate(value_ref, Op.EQ, prop.value))
        else:
            mid_attribute = family.attribute.split(".", 1)
            recipe = _recipe_for(adb, family.derived_table)
            mid_alias = aliases.fresh(recipe.mid_table)
            tables.append(TableRef(recipe.mid_table, mid_alias))
            joins.append(
                JoinCondition(
                    ColumnRef(fact_alias, recipe.fact_mid_col),
                    ColumnRef(mid_alias, recipe.mid_key),
                )
            )
            if recipe.kind in ("mid_attr", "mid_fk"):
                value_ref = ColumnRef(mid_alias, recipe.mid_attr)
                predicates.append(Predicate(value_ref, Op.EQ, prop.value))
            else:  # chain through a second fact table
                fact2_alias = aliases.fresh(recipe.second_fact_table)
                tables.append(TableRef(recipe.second_fact_table, fact2_alias))
                joins.append(
                    JoinCondition(
                        ColumnRef(fact2_alias, recipe.second_fact_mid_col),
                        ColumnRef(mid_alias, recipe.mid_key),
                    )
                )
                if family.value_is_ref:
                    dim_alias = aliases.fresh(family.dim_table)
                    tables.append(TableRef(family.dim_table, dim_alias))
                    joins.append(
                        JoinCondition(
                            ColumnRef(fact2_alias, recipe.second_fact_dim_col),
                            ColumnRef(dim_alias, family.dim_key),
                        )
                    )
                    predicates.append(
                        Predicate(
                            ColumnRef(dim_alias, family.dim_label),
                            Op.EQ,
                            adb.dim_label_of(family, prop.value),
                        )
                    )
                else:
                    predicates.append(
                        Predicate(
                            ColumnRef(fact2_alias, recipe.second_fact_dim_col),
                            Op.EQ,
                            prop.value,
                        )
                    )
        group_by = (entity_key_ref,)
        theta = int(aggregate.prop.theta or 1)
        having = HavingCount(Op.GE, max(1, theta))

    return Query(
        select=(ColumnRef(entity.table, entity.display),),
        tables=tuple(tables),
        joins=tuple(joins),
        predicates=tuple(predicates),
        group_by=group_by,
        having=having,
    )


def _recipe_for(adb: AbductionReadyDatabase, derived_table: str):
    for recipe in adb.discovery.recipes:
        if recipe.name == derived_table:
            return recipe
    raise KeyError(f"no recipe materialised {derived_table!r}")


def _range_predicate(column: ColumnRef, low: Any, high: Any) -> Predicate:
    if low == high:
        return Predicate(column, Op.EQ, low)
    return Predicate(column, Op.BETWEEN, (low, high))


def _categorical_predicate(column: ColumnRef, value: Any) -> Predicate:
    """EQ for a single value, IN for a footnote-7 disjunction."""
    if isinstance(value, frozenset):
        return Predicate(column, Op.IN, value)
    return Predicate(column, Op.EQ, value)


def _dim_label_predicate(
    adb: AbductionReadyDatabase, family, dim_alias: str, value: Any
) -> Predicate:
    """Label predicate on a dimension alias (EQ or IN for disjunction)."""
    column = ColumnRef(dim_alias, family.dim_label)
    if isinstance(value, frozenset):
        labels = frozenset(adb.dim_label_of(family, v) for v in value)
        return Predicate(column, Op.IN, labels)
    return Predicate(column, Op.EQ, adb.dim_label_of(family, value))
