"""Entity disambiguation (§6.1.1): pick the most mutually-similar mapping.

An example string may match several entities (the paper's "Titanic"
scenario: four films share the title).  The key insight is that "the
provided examples are more likely to be alike", so SQuID selects the
assignment of examples to entities that maximises the semantic
similarities across the example set: shared basic property values, and —
for derived properties — higher shared association strength.

With few examples the full assignment space is small, so an exhaustive
search over combinations is feasible; beyond a configurable cap a greedy
per-example resolution against the unambiguous core is used instead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .adb import AbductionReadyDatabase
from .config import SquidConfig
from .lookup import EntityMatch
from .properties import FamilyKind, PropertyFamily
from .statistics import NumericStats


@dataclass
class DisambiguationResult:
    """The chosen assignment and its similarity score."""

    keys: List[Any]
    score: float
    considered: int
    """How many complete assignments were scored."""


def disambiguate(
    adb: AbductionReadyDatabase,
    match: EntityMatch,
    config: Optional[SquidConfig] = None,
) -> DisambiguationResult:
    """Resolve each example to one entity key, maximising similarity."""
    config = config or adb.config
    candidates = [list(dict.fromkeys(options)) for options in match.candidates]
    if any(not options for options in candidates):
        raise ValueError("an example has no candidate entities")

    if not config.disambiguate or all(len(c) == 1 for c in candidates):
        keys = [options[0] for options in candidates]
        return DisambiguationResult(keys=keys, score=0.0, considered=1)

    total = 1
    for options in candidates:
        total *= len(options)
    if total <= config.max_disambiguation_combinations:
        return _exhaustive(adb, match, candidates, total)
    return _greedy(adb, match, candidates)


def _profiles(
    adb: AbductionReadyDatabase, entity_table: str, key: Any
) -> Dict[Tuple[str, str], Dict[Any, float]]:
    """Property profile of one entity: family key -> value -> θ."""
    out: Dict[Tuple[str, str], Dict[Any, float]] = {}
    for family in adb.families_for(entity_table):
        props = adb.entity_properties(family, key)
        if props:
            out[family.key] = props
    return out


def _numeric_spans(
    adb: AbductionReadyDatabase, entity_table: str
) -> Dict[Tuple[str, str], float]:
    """Active-domain span of every numeric family (for proximity scores)."""
    spans: Dict[Tuple[str, str], float] = {}
    for family in adb.families_for(entity_table):
        if family.kind is not FamilyKind.DIRECT_NUMERIC:
            continue
        stats = adb.statistics.get(family)
        if isinstance(stats, NumericStats):
            low, high = stats.domain_min, stats.domain_max
            if low is not None and high is not None and high > low:
                spans[family.key] = high - low
    return spans


def _similarity(
    profiles: Sequence[Dict[Tuple[str, str], Dict[Any, float]]],
    numeric_spans: Dict[Tuple[str, str], float],
) -> float:
    """Similarity of a set of entity profiles.

    One point per (family, value) shared by *all* entities; shared derived
    values additionally contribute their minimum association strength, so
    assignments that strengthen shared associations win (the paper's
    guidance for derived properties).  Numeric attributes contribute by
    *proximity*: 1 − spread/domain-span, which is what pins "Titanic" to
    the 1997 film next to 1994/1999 examples (§6.1.1).
    """
    if not profiles:
        return 0.0
    first, rest = profiles[0], profiles[1:]
    score = 0.0
    for fam_key, values in first.items():
        other_maps = [p.get(fam_key) for p in rest]
        if any(m is None for m in other_maps):
            continue
        span = numeric_spans.get(fam_key)
        if span is not None:
            observed = [next(iter(values))]
            observed += [next(iter(m)) for m in other_maps if m]
            spread = max(observed) - min(observed)
            score += max(0.0, 1.0 - spread / span)
            continue
        for value, theta in values.items():
            thetas = [theta]
            shared = True
            for m in other_maps:
                assert m is not None
                if value not in m:
                    shared = False
                    break
                thetas.append(m[value])
            if shared:
                score += 1.0 + min(thetas)
    return score


def _exhaustive(
    adb: AbductionReadyDatabase,
    match: EntityMatch,
    candidates: List[List[Any]],
    total: int,
) -> DisambiguationResult:
    table = match.entity.table
    spans = _numeric_spans(adb, table)
    cache: Dict[Any, Dict[Tuple[str, str], Dict[Any, float]]] = {}

    def profile(key: Any):
        if key not in cache:
            cache[key] = _profiles(adb, table, key)
        return cache[key]

    best_keys: Optional[List[Any]] = None
    best_score = -1.0
    for assignment in itertools.product(*candidates):
        if len(set(assignment)) != len(assignment):
            continue  # two examples must not collapse onto one entity
        score = _similarity([profile(key) for key in assignment], spans)
        if score > best_score:
            best_score = score
            best_keys = list(assignment)
    if best_keys is None:  # all assignments collapsed; allow duplicates
        assignment = next(itertools.product(*candidates))
        best_keys = list(assignment)
        best_score = 0.0
    return DisambiguationResult(keys=best_keys, score=best_score, considered=total)


def _greedy(
    adb: AbductionReadyDatabase,
    match: EntityMatch,
    candidates: List[List[Any]],
) -> DisambiguationResult:
    """Resolve ambiguous examples one by one against the unambiguous core."""
    table = match.entity.table
    spans = _numeric_spans(adb, table)
    resolved: List[Optional[Any]] = [
        options[0] if len(options) == 1 else None for options in candidates
    ]
    anchor_profiles = [
        _profiles(adb, table, key) for key in resolved if key is not None
    ]
    considered = 0
    for i, options in enumerate(candidates):
        if resolved[i] is not None:
            continue
        best_key, best_score = options[0], -1.0
        for key in options:
            considered += 1
            score = _similarity(
                anchor_profiles + [_profiles(adb, table, key)], spans
            )
            if score > best_score:
                best_score = score
                best_key = key
        resolved[i] = best_key
        anchor_profiles.append(_profiles(adb, table, best_key))
    keys = [key for key in resolved if key is not None]
    final = _similarity([_profiles(adb, table, key) for key in keys], spans)
    return DisambiguationResult(keys=keys, score=final, considered=considered)
