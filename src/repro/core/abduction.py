"""Query abduction — Algorithm 1 and the query posterior (Section 4/6.2).

For each minimal valid filter φi (encoding context xi) the algorithm
compares, per Equation (5):

* ``include(φi) = Pr(φi) · Pr(xi | φi)`` with ``Pr(xi | φi) = 1``;
* ``exclude(φi) = Pr(φ̄i) · Pr(xi | φ̄i)`` with
  ``Pr(xi | φ̄i) ≈ ψ(φi)^|E|``;

and includes φi iff ``include > exclude`` (ties are dropped, following the
paper's Occam's-razor note after Theorem 1).  Theorem 1 guarantees this
per-filter rule maximises the query posterior; a brute-force check over
all 2^|Φ| subsets backs this up in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .config import SquidConfig
from .priors import PriorBreakdown, family_theta_map, filter_prior
from .properties import Filter


@dataclass(frozen=True)
class FilterDecision:
    """The abduction verdict for one filter, with full provenance."""

    filt: Filter
    prior: PriorBreakdown
    include_score: float
    exclude_score: float

    @property
    def included(self) -> bool:
        """Strict comparison: ties are excluded (Occam's razor)."""
        return self.include_score > self.exclude_score


@dataclass
class AbductionResult:
    """Outcome of Algorithm 1 on one candidate base query."""

    decisions: List[FilterDecision]
    example_count: int

    @property
    def selected(self) -> List[Filter]:
        """The abduced filter set ϕ ⊆ Φ."""
        return [d.filt for d in self.decisions if d.included]

    @property
    def rejected(self) -> List[Filter]:
        """Filters deemed coincidental."""
        return [d.filt for d in self.decisions if not d.included]

    def log_posterior(self) -> float:
        """Unnormalised log posterior of the abduced query.

        Per Equation (5): Σ_i log max(include_i, exclude_i) minus
        log ψ(Φ) (approximated under filter independence as Σ log ψ(φi)),
        dropping the normalisation constant K.  Used only to *compare*
        candidate base queries, where constants cancel.
        """
        total = 0.0
        for decision in self.decisions:
            best = max(decision.include_score, decision.exclude_score)
            total += math.log(best) if best > 0.0 else -1e9
            psi = decision.filt.selectivity
            total -= math.log(psi) if psi > 0.0 else -1e9
        return total


def posterior_scores(
    filt: Filter,
    prior: PriorBreakdown,
    example_count: int,
) -> Tuple[float, float]:
    """(include, exclude) scores of one filter event (Equation 5)."""
    pr = prior.prior
    include = pr * 1.0
    exclude = (1.0 - pr) * filt.selectivity**example_count
    return include, exclude


def abduce(
    filters: Sequence[Filter],
    example_count: int,
    config: Optional[SquidConfig] = None,
) -> AbductionResult:
    """Algorithm 1: independently decide inclusion for every filter.

    Runs in O(|Φ|) after the per-family Θ_A distributions are grouped
    once; each decision uses only that filter's prior and selectivity, as
    Theorem 1 requires.
    """
    config = config or SquidConfig()
    thetas = family_theta_map(filters)
    decisions: List[FilterDecision] = []
    for filt in filters:
        prior = filter_prior(filt, thetas.get(filt.family.key, []), config)
        include, exclude = posterior_scores(filt, prior, example_count)
        decisions.append(
            FilterDecision(
                filt=filt,
                prior=prior,
                include_score=include,
                exclude_score=exclude,
            )
        )
    return AbductionResult(decisions=decisions, example_count=example_count)


def brute_force_best_subset(
    filters: Sequence[Filter],
    example_count: int,
    config: Optional[SquidConfig] = None,
) -> Tuple[Tuple[int, ...], float]:
    """Exhaustive 2^|Φ| search for the posterior-maximising filter subset.

    Exists to validate Theorem 1 in tests; never used in the pipeline.
    Returns the lexicographically-smallest optimal index subset and its
    unnormalised log posterior.
    """
    config = config or SquidConfig()
    thetas = family_theta_map(filters)
    scored = []
    for filt in filters:
        prior = filter_prior(filt, thetas.get(filt.family.key, []), config)
        include, exclude = posterior_scores(filt, prior, example_count)
        scored.append((include, exclude))

    def log_or_floor(x: float) -> float:
        return math.log(x) if x > 0.0 else -1e9

    best_subset: Tuple[int, ...] = ()
    best_score = -math.inf
    n = len(filters)
    for mask in range(2**n):
        subset = tuple(i for i in range(n) if mask & (1 << i))
        score = 0.0
        for i, (include, exclude) in enumerate(scored):
            score += log_or_floor(include if i in subset else exclude)
        # Exact comparison: the greedy rule includes on any strictly
        # positive margin, however tiny, so a tolerance here would call
        # near-ties the greedy path legitimately wins "ties" and disagree
        # with Algorithm 1 (exact equality still resolves to the smaller,
        # earlier-enumerated subset, matching ties-are-dropped).
        if score > best_score:
            best_score = score
            best_subset = subset
    return best_subset, best_score
