"""Automatic discovery of property families from the schema graph (§5).

Given the administrator metadata (entity tables, dimension tables, direct
property attributes), this module walks the key--foreign-key schema graph to
discover, for every entity E:

* **direct** families — declared attributes on E's own table (categorical
  or numeric by column type);
* **fk-dim** families — FK attributes of E pointing at dimension tables
  (e.g. ``person.country_id -> country``);
* **fact-dim** families — dimensions one fact table away
  (``movie —movietogenre→ genre``), the paper's basic properties stored in
  separate relations;
* **derived-entity** families — entities one fact table away with a count
  (``person —castinfo→ movie``), split by a declared qualifier where one
  exists (role: "movies as Actor" vs "movies as Director");
* **derived-dim** families — depth-2 derived properties: aggregates of a
  basic property of the associated entity (``persontogenre``: the number
  of movies of each genre a person appeared in), discovered through paths
  of at most ``max_fact_depth`` fact tables.

Fact tables themselves are *not* declared: any table holding foreign keys
into two or more entity/dimension tables and not itself declared as entity
or dimension is treated as a fact table, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.schema import ForeignKey, TableSchema
from ..relational.types import ColumnType
from .config import SquidConfig
from .metadata import AdbMetadata, DimensionSpec, EntitySpec, QualifierSpec
from .properties import FamilyKind, PropertyFamily


@dataclass(frozen=True)
class FactLink:
    """One fact table connecting two annotated tables."""

    fact_table: str
    left_table: str
    left_col: str
    right_table: str
    right_col: str


@dataclass(frozen=True)
class DerivedRecipe:
    """Instructions for materialising one derived αDB relation.

    ``kind`` selects the computation:

    * ``entity``      — count fact rows per (entity, other-entity) pair,
                        optionally restricted to one qualifier value;
    * ``mid_attr``    — count per (entity, attribute value of mid entity);
    * ``mid_fk``      — count per (entity, FK-dimension value of mid entity);
    * ``chain``       — count per (entity, dimension value) through a second
                        fact table (the paper's Q6 / persontogenre).
    """

    name: str
    kind: str
    entity: str
    entity_key_col: str
    value_col: str
    fact_table: str
    fact_entity_col: str
    fact_mid_col: str = ""
    mid_table: str = ""
    mid_key: str = ""
    mid_attr: str = ""
    second_fact_table: str = ""
    second_fact_mid_col: str = ""
    second_fact_dim_col: str = ""
    qualifier_col: str = ""
    qualifier_value: Any = None
    value_ctype: ColumnType = ColumnType.INT


@dataclass
class DiscoveryResult:
    """Everything the offline build derives from schema + metadata."""

    families: List[PropertyFamily]
    recipes: List[DerivedRecipe]
    fact_tables: List[str]


def _fk_targets(schema: TableSchema) -> List[ForeignKey]:
    return list(schema.foreign_keys)


def _fact_tables(database: Database, metadata: AdbMetadata) -> List[str]:
    """Tables referencing annotated tables, themselves unannotated.

    A table qualifies with two or more FK references (it associates two
    annotated tables), or with a single FK reference plus declared
    property attributes of its own (a satellite table such as the paper's
    ``research(aid, interest)``).
    """
    annotated = {e.table for e in metadata.entities} | {
        d.table for d in metadata.dimensions
    }
    facts = []
    for name, schema in database.schema.tables.items():
        if name in annotated:
            continue
        refs = [fk for fk in schema.foreign_keys if fk.ref_table in annotated]
        if len(refs) >= 2:
            facts.append(name)
        elif len(refs) == 1 and metadata.properties_of(name):
            facts.append(name)
    return sorted(facts)


def _dim_label(metadata: AdbMetadata, table: str) -> Tuple[str, str]:
    dim = metadata.dimension(table)
    assert dim is not None
    return dim.key, dim.label


def discover_families(
    database: Database,
    metadata: AdbMetadata,
    config: Optional[SquidConfig] = None,
) -> DiscoveryResult:
    """Walk the schema graph and produce all property families + recipes."""
    config = config or SquidConfig()
    metadata.validate(database)
    fact_tables = _fact_tables(database, metadata)
    families: List[PropertyFamily] = []
    recipes: List[DerivedRecipe] = []

    links = _collect_links(database, metadata, fact_tables)
    for entity in metadata.entities:
        families.extend(_direct_families(database, metadata, entity))
        families.extend(_fk_dim_families(database, metadata, entity))
        families.extend(_fact_attr_families(database, metadata, entity, fact_tables))
        fams, recs = _association_families(
            database, metadata, entity, links, config
        )
        families.extend(fams)
        recipes.extend(recs)
    families = _uniquify_attributes(families)
    return DiscoveryResult(families=families, recipes=recipes, fact_tables=fact_tables)


def _uniquify_attributes(families: List[PropertyFamily]) -> List[PropertyFamily]:
    """Qualify duplicate attribute labels so family keys stay unique.

    Collisions arise naturally: ``person.country_id`` (an FK dimension)
    and the chain-derived "countries of a person's movies" both want the
    label ``country``.  The derived family is renamed to
    ``movie.country``-style path notation; remaining clashes get a
    numeric suffix.
    """
    from dataclasses import replace

    seen: set = set()
    out: List[PropertyFamily] = []
    for fam in families:
        candidate = fam
        if candidate.key in seen and candidate.mid_table:
            candidate = replace(
                candidate, attribute=f"{candidate.mid_table}.{candidate.attribute}"
            )
        counter = 2
        base_attr = candidate.attribute
        while candidate.key in seen:
            candidate = replace(candidate, attribute=f"{base_attr}~{counter}")
            counter += 1
        seen.add(candidate.key)
        out.append(candidate)
    return out


def _collect_links(
    database: Database, metadata: AdbMetadata, fact_tables: Sequence[str]
) -> List[FactLink]:
    """All (left, right) table pairs each fact table connects."""
    links: List[FactLink] = []
    for fact in fact_tables:
        schema = database.relation(fact).schema
        refs = [
            fk
            for fk in schema.foreign_keys
            if metadata.is_entity(fk.ref_table) or metadata.is_dimension(fk.ref_table)
        ]
        qualifier = metadata.qualifier_for(fact)
        for i, left in enumerate(refs):
            for right in refs[i + 1 :]:
                if qualifier is not None and qualifier.column in (
                    left.column,
                    right.column,
                ):
                    # the qualifier FK is not an association endpoint
                    continue
                links.append(
                    FactLink(fact, left.ref_table, left.column, right.ref_table, right.column)
                )
    return links


def _direct_families(
    database: Database, metadata: AdbMetadata, entity: EntitySpec
) -> List[PropertyFamily]:
    schema = database.relation(entity.table).schema
    families = []
    for attribute in metadata.properties_of(entity.table):
        if metadata.is_excluded(entity.table, attribute):
            continue
        if attribute in (entity.key, entity.display):
            continue
        if schema.foreign_key_for(attribute) is not None:
            continue  # FK attributes are handled as fk-dim families
        ctype = schema.column_type(attribute)
        kind = (
            FamilyKind.DIRECT_NUMERIC
            if ctype.is_numeric
            else FamilyKind.DIRECT_CATEGORICAL
        )
        families.append(
            PropertyFamily(
                entity=entity.table,
                kind=kind,
                attribute=attribute,
                column=attribute,
            )
        )
    return families


def _fk_dim_families(
    database: Database, metadata: AdbMetadata, entity: EntitySpec
) -> List[PropertyFamily]:
    schema = database.relation(entity.table).schema
    families = []
    for fk in schema.foreign_keys:
        if not metadata.is_dimension(fk.ref_table):
            continue
        if metadata.is_excluded(entity.table, fk.column):
            continue
        dim_key, dim_label = _dim_label(metadata, fk.ref_table)
        families.append(
            PropertyFamily(
                entity=entity.table,
                kind=FamilyKind.FK_DIM,
                attribute=fk.ref_table,
                dim_table=fk.ref_table,
                dim_key=dim_key,
                dim_label=dim_label,
                fk_column=fk.column,
                value_is_ref=True,
            )
        )
    return families


def _fact_attr_families(
    database: Database,
    metadata: AdbMetadata,
    entity: EntitySpec,
    fact_tables: Sequence[str],
) -> List[PropertyFamily]:
    """Basic properties stored as attributes on associating tables.

    The paper's Example 1.1: ``research(aid, interest)`` holds a FK to
    ``academics`` and a categorical attribute ``interest`` — the property
    is reached with one key--foreign-key join.
    """
    families: List[PropertyFamily] = []
    for fact in fact_tables:
        schema = database.relation(fact).schema
        entity_fks = [
            fk for fk in schema.foreign_keys if fk.ref_table == entity.table
        ]
        if not entity_fks:
            continue
        entity_fk = entity_fks[0]
        for attribute in metadata.properties_of(fact):
            if metadata.is_excluded(fact, attribute):
                continue
            if schema.foreign_key_for(attribute) is not None:
                continue
            families.append(
                PropertyFamily(
                    entity=entity.table,
                    kind=FamilyKind.FACT_ATTR,
                    attribute=f"{fact}.{attribute}",
                    column=attribute,
                    fact_table=fact,
                    fact_entity_col=entity_fk.column,
                )
            )
    return families


def _association_families(
    database: Database,
    metadata: AdbMetadata,
    entity: EntitySpec,
    links: Sequence[FactLink],
    config: SquidConfig,
) -> Tuple[List[PropertyFamily], List[DerivedRecipe]]:
    families: List[PropertyFamily] = []
    recipes: List[DerivedRecipe] = []
    for link in links:
        oriented = _orient(link, entity.table)
        if oriented is None:
            continue
        fact, my_col, other_table, other_col = oriented
        if metadata.is_dimension(other_table):
            dim_key, dim_label = _dim_label(metadata, other_table)
            families.append(
                PropertyFamily(
                    entity=entity.table,
                    kind=FamilyKind.FACT_DIM,
                    attribute=other_table,
                    dim_table=other_table,
                    dim_key=dim_key,
                    dim_label=dim_label,
                    fact_table=fact,
                    fact_entity_col=my_col,
                    fact_dim_col=other_col,
                    value_is_ref=True,
                )
            )
        elif metadata.is_entity(other_table) and entity.derive_properties:
            fams, recs = _entity_association(
                database, metadata, entity, fact, my_col, other_table, other_col, links, config
            )
            families.extend(fams)
            recipes.extend(recs)
    return families, recipes


def _orient(
    link: FactLink, entity_table: str
) -> Optional[Tuple[str, str, str, str]]:
    """Orient a link so the entity is on the left; None if not incident."""
    if link.left_table == entity_table:
        return link.fact_table, link.left_col, link.right_table, link.right_col
    if link.right_table == entity_table:
        return link.fact_table, link.right_col, link.left_table, link.left_col
    return None


def _entity_association(
    database: Database,
    metadata: AdbMetadata,
    entity: EntitySpec,
    fact: str,
    my_col: str,
    mid_table: str,
    mid_col: str,
    links: Sequence[FactLink],
    config: SquidConfig,
) -> Tuple[List[PropertyFamily], List[DerivedRecipe]]:
    """Families derived through one entity-entity fact link."""
    families: List[PropertyFamily] = []
    recipes: List[DerivedRecipe] = []
    mid_spec = metadata.entity(mid_table)
    qualifier = metadata.qualifier_for(fact)

    # --- derived-entity family (depth 1): person -> movie ------------
    variants: List[Tuple[str, Any, str]] = [("", None, "")]
    if qualifier is not None:
        qdim = metadata.dimension(qualifier.dim_table)
        assert qdim is not None
        dim_rel = database.relation(qdim.table)
        for row_id in dim_rel.row_ids():
            qvalue = dim_rel.value(row_id, qdim.key)
            qlabel = dim_rel.value(row_id, qdim.label)
            variants.append((f"[{qlabel}]", qvalue, str(qlabel)))
    for suffix, qvalue, qlabel in variants:
        name = _relation_name(entity.table, mid_table, qlabel)
        families.append(
            PropertyFamily(
                entity=entity.table,
                kind=FamilyKind.DERIVED_ENTITY,
                attribute=f"{mid_table}{suffix}",
                dim_table=mid_table,
                dim_key=mid_spec.key,
                dim_label=mid_spec.display,
                fact_table=fact,
                fact_entity_col=my_col,
                fact_dim_col=mid_col,
                derived_table=name,
                derived_entity_col=f"{entity.table}_key",
                derived_value_col="value",
                value_is_ref=True,
            )
        )
        recipes.append(
            DerivedRecipe(
                name=name,
                kind="entity",
                entity=entity.table,
                entity_key_col=f"{entity.table}_key",
                value_col="value",
                fact_table=fact,
                fact_entity_col=my_col,
                fact_mid_col=mid_col,
                mid_table=mid_table,
                mid_key=mid_spec.key,
                qualifier_col=qualifier.column if qvalue is not None else "",
                qualifier_value=qvalue,
                value_ctype=database.relation(mid_table).schema.column_type(
                    mid_spec.key
                ),
            )
        )

    if config.max_fact_depth < 2:
        return families, recipes

    # --- derived-dim families (depth 2) -------------------------------
    # (a) over the mid entity's declared direct attributes
    mid_schema = database.relation(mid_table).schema
    for attribute in metadata.properties_of(mid_table):
        if metadata.is_excluded(mid_table, attribute):
            continue
        if mid_schema.foreign_key_for(attribute) is not None:
            continue
        name = _relation_name(entity.table, f"{mid_table}_{attribute}")
        families.append(
            PropertyFamily(
                entity=entity.table,
                kind=FamilyKind.DERIVED_DIM,
                attribute=f"{mid_table}.{attribute}",
                column=attribute,
                fact_table=fact,
                fact_entity_col=my_col,
                fact_dim_col=mid_col,
                derived_table=name,
                derived_entity_col=f"{entity.table}_key",
                derived_value_col="value",
                value_is_ref=False,
                mid_table=mid_table,
            )
        )
        recipes.append(
            DerivedRecipe(
                name=name,
                kind="mid_attr",
                entity=entity.table,
                entity_key_col=f"{entity.table}_key",
                value_col="value",
                fact_table=fact,
                fact_entity_col=my_col,
                fact_mid_col=mid_col,
                mid_table=mid_table,
                mid_key=mid_spec.key,
                mid_attr=attribute,
                value_ctype=mid_schema.column_type(attribute),
            )
        )

    # (b) over the mid entity's FK-dimension attributes
    for fk in mid_schema.foreign_keys:
        if not metadata.is_dimension(fk.ref_table):
            continue
        if metadata.is_excluded(mid_table, fk.column):
            continue
        dim_key, dim_label = _dim_label(metadata, fk.ref_table)
        name = _relation_name(entity.table, f"{mid_table}_{fk.ref_table}")
        families.append(
            PropertyFamily(
                entity=entity.table,
                kind=FamilyKind.DERIVED_DIM,
                attribute=f"{mid_table}.{fk.ref_table}",
                dim_table=fk.ref_table,
                dim_key=dim_key,
                dim_label=dim_label,
                fact_table=fact,
                fact_entity_col=my_col,
                fact_dim_col=mid_col,
                derived_table=name,
                derived_entity_col=f"{entity.table}_key",
                derived_value_col="value",
                value_is_ref=True,
                mid_table=mid_table,
            )
        )
        recipes.append(
            DerivedRecipe(
                name=name,
                kind="mid_fk",
                entity=entity.table,
                entity_key_col=f"{entity.table}_key",
                value_col="value",
                fact_table=fact,
                fact_entity_col=my_col,
                fact_mid_col=mid_col,
                mid_table=mid_table,
                mid_key=mid_spec.key,
                mid_attr=fk.column,
                value_ctype=mid_schema.column_type(fk.column),
            )
        )

    # (c) through a second fact table to a dimension (the paper's Q6)
    for link in links:
        oriented = _orient(link, mid_table)
        if oriented is None:
            continue
        fact2, mid_col2, dim_table, dim_col2 = oriented
        if fact2 == fact or not metadata.is_dimension(dim_table):
            continue
        dim_key, dim_label = _dim_label(metadata, dim_table)
        name = _relation_name(entity.table, dim_table)
        families.append(
            PropertyFamily(
                entity=entity.table,
                kind=FamilyKind.DERIVED_DIM,
                attribute=dim_table,
                dim_table=dim_table,
                dim_key=dim_key,
                dim_label=dim_label,
                fact_table=fact,
                fact_entity_col=my_col,
                fact_dim_col=mid_col,
                derived_table=name,
                derived_entity_col=f"{entity.table}_key",
                derived_value_col="value",
                value_is_ref=True,
                mid_table=mid_table,
            )
        )
        recipes.append(
            DerivedRecipe(
                name=name,
                kind="chain",
                entity=entity.table,
                entity_key_col=f"{entity.table}_key",
                value_col="value",
                fact_table=fact,
                fact_entity_col=my_col,
                fact_mid_col=mid_col,
                mid_table=mid_table,
                mid_key=mid_spec.key,
                second_fact_table=fact2,
                second_fact_mid_col=mid_col2,
                second_fact_dim_col=dim_col2,
                value_ctype=database.relation(dim_table).schema.column_type(dim_key),
            )
        )
    return families, recipes


def _relation_name(entity: str, target: str, qualifier: str = "") -> str:
    """αDB relation name, e.g. ``persontogenre`` / ``persontomovie_actor``."""
    base = f"{entity}to{target}".replace(".", "_")
    if qualifier:
        safe = "".join(ch.lower() for ch in qualifier if ch.isalnum())
        base = f"{base}_{safe}"
    return base
