"""The abduction-ready database (αDB) — offline module orchestration (§5).

``AbductionReadyDatabase.build`` performs the paper's three offline steps:

1. **inverted indexing** — a global inverted column index over the entity
   display attributes, for fast example-to-entity lookup;
2. **derived relation materialisation** — fact-table/derived-property
   discovery over the schema graph, then materialisation of relations like
   ``persontogenre(person_key, value, count)``;
3. **filter selectivity precomputation** — per-family statistics enabling
   O(log n) selectivity evaluation at abduction time.

The αDB owns the (augmented) database, metadata, discovered families,
statistics, and the indexes the online phase probes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.inverted import InvertedColumnIndex
from .config import SquidConfig
from .derived import materialize_all
from .discovery import DiscoveryResult, discover_families
from .metadata import AdbMetadata, EntitySpec
from .properties import FamilyKind, PropertyFamily
from .statistics import StatisticsStore, compute_statistics


@dataclass
class AdbBuildReport:
    """Timings and sizes recorded while constructing the αDB."""

    discovery_seconds: float = 0.0
    materialize_seconds: float = 0.0
    statistics_seconds: float = 0.0
    inverted_index_seconds: float = 0.0
    derived_relations: int = 0
    derived_rows: int = 0
    families: int = 0

    @property
    def total_seconds(self) -> float:
        """Total offline construction time."""
        return (
            self.discovery_seconds
            + self.materialize_seconds
            + self.statistics_seconds
            + self.inverted_index_seconds
        )


class AbductionReadyDatabase:
    """Database + metadata + derived relations + statistics + indexes."""

    def __init__(
        self,
        database: Database,
        metadata: AdbMetadata,
        config: SquidConfig,
        discovery: DiscoveryResult,
        statistics: StatisticsStore,
        inverted: InvertedColumnIndex,
        report: AdbBuildReport,
    ) -> None:
        self.db = database
        self.metadata = metadata
        self.config = config
        self.discovery = discovery
        self.statistics = statistics
        self.inverted = inverted
        self.report = report
        self._families_by_entity: Dict[str, List[PropertyFamily]] = {}
        for family in discovery.families:
            self._families_by_entity.setdefault(family.entity, []).append(family)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: Database,
        metadata: AdbMetadata,
        config: Optional[SquidConfig] = None,
    ) -> "AbductionReadyDatabase":
        """Run the full offline pipeline over ``database``.

        The database is augmented in place with derived relations (as the
        paper's αDB augments the original database).  Statistics
        computation runs on the vectorized path: it reads the relation
        layer's cached numpy column arrays and reduces them with the same
        kernels the vectorized execution backend uses.
        """
        config = config or SquidConfig()

        start = time.perf_counter()
        discovery = discover_families(database, metadata, config)
        t_discovery = time.perf_counter() - start

        start = time.perf_counter()
        names = materialize_all(database, discovery.recipes)
        t_materialize = time.perf_counter() - start

        start = time.perf_counter()
        entity_counts = {
            spec.table: len(database.relation(spec.table))
            for spec in metadata.entities
        }
        statistics = compute_statistics(database, discovery.families, entity_counts)
        t_statistics = time.perf_counter() - start

        start = time.perf_counter()
        inverted = InvertedColumnIndex(
            database, tables=[spec.table for spec in metadata.entities]
        )
        t_inverted = time.perf_counter() - start

        report = AdbBuildReport(
            discovery_seconds=t_discovery,
            materialize_seconds=t_materialize,
            statistics_seconds=t_statistics,
            inverted_index_seconds=t_inverted,
            derived_relations=len(names),
            derived_rows=sum(len(database.relation(n)) for n in names),
            families=len(discovery.families),
        )
        return cls(database, metadata, config, discovery, statistics, inverted, report)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def families_for(self, entity_table: str) -> List[PropertyFamily]:
        """All property families of one entity table."""
        return list(self._families_by_entity.get(entity_table, []))

    def family(self, entity_table: str, attribute: str) -> PropertyFamily:
        """Look up one family by entity table and attribute label."""
        for fam in self._families_by_entity.get(entity_table, []):
            if fam.attribute == attribute:
                return fam
        raise KeyError(f"no family {attribute!r} for entity {entity_table!r}")

    def entity_count(self, entity_table: str) -> int:
        """|Q*(D)|: number of entities of the given type."""
        return len(self.db.relation(entity_table))

    def dim_label_of(self, family: PropertyFamily, value: Any) -> str:
        """Human-readable label for a value-reference family's value."""
        if not family.value_is_ref:
            return str(value)
        relation = self.db.relation(family.dim_table)
        rid = relation.lookup_pk(value)
        if rid is None:
            return str(value)
        label = relation.value(rid, family.dim_label)
        return str(label)

    def dim_value_for_label(self, family: PropertyFamily, label: str) -> Optional[Any]:
        """Inverse of :meth:`dim_label_of`: dimension key for a label."""
        if not family.value_is_ref:
            return label
        index = self.db.hash_index(family.dim_table, family.dim_label)
        rows = index.lookup(label)
        if not rows:
            return None
        relation = self.db.relation(family.dim_table)
        return relation.value(rows[0], family.dim_key)

    # ------------------------------------------------------------------
    # per-entity property retrieval (the online phase's point queries)
    # ------------------------------------------------------------------
    def entity_properties(
        self, family: PropertyFamily, entity_key: Any
    ) -> Dict[Any, float]:
        """Property values (-> θ) of one entity under one family.

        For basic families every present value maps to 1.0; for derived
        families values map to their association strength.  This is the
        point query the abduction phase issues per example per family.
        """
        if family.kind in (FamilyKind.DIRECT_CATEGORICAL, FamilyKind.DIRECT_NUMERIC):
            relation = self.db.relation(family.entity)
            rid = relation.lookup_pk(entity_key)
            if rid is None:
                return {}
            value = relation.value(rid, family.column)
            return {} if value is None else {value: 1.0}
        if family.kind is FamilyKind.FK_DIM:
            relation = self.db.relation(family.entity)
            rid = relation.lookup_pk(entity_key)
            if rid is None:
                return {}
            value = relation.value(rid, family.fk_column)
            return {} if value is None else {value: 1.0}
        if family.kind in (FamilyKind.FACT_DIM, FamilyKind.FACT_ATTR):
            index = self.db.hash_index(family.fact_table, family.fact_entity_col)
            value_column = (
                family.fact_dim_col
                if family.kind is FamilyKind.FACT_DIM
                else family.column
            )
            dim_store = self.db.relation(family.fact_table).column(value_column)
            out: Dict[Any, float] = {}
            for rid in index.lookup(entity_key):
                value = dim_store[rid]
                if value is not None:
                    out[value] = 1.0
            return out
        # derived families: probe the materialised relation
        index = self.db.hash_index(family.derived_table, family.derived_entity_col)
        relation = self.db.relation(family.derived_table)
        value_store = relation.column(family.derived_value_col)
        count_store = relation.column("count")
        return {
            value_store[rid]: float(count_store[rid])
            for rid in index.lookup(entity_key)
        }

    def entity_properties_many(
        self, family: PropertyFamily, entity_keys: Sequence[Any]
    ) -> List[Dict[Any, float]]:
        """Property values of several entities under one family.

        The batch probe the context stage issues (one per family per
        example set).  The base implementation just loops; the session's
        :class:`~repro.core.session.ProbeCachingAdb` overrides it with
        lookups into a materialised per-family map.
        """
        return [self.entity_properties(family, key) for key in entity_keys]

    def association_total(self, family: PropertyFamily, entity_key: Any) -> float:
        """Total association mass of an entity within a derived family.

        Used by the normalised-association-strength mode (Section 7.4): the
        fraction of an actor's movies that are comedies is
        θ(value) / association_total.
        """
        props = self.entity_properties(family, entity_key)
        return float(sum(props.values()))

    # ------------------------------------------------------------------
    # incremental maintenance (a §9 future direction)
    # ------------------------------------------------------------------
    def refresh(self, changed_tables: Optional[Sequence[str]] = None) -> Dict[str, int]:
        """Refresh derived relations and statistics after base-data changes.

        ``changed_tables`` names the base tables that were mutated; only
        the derived relations depending on them are rematerialised and
        only the affected families get their statistics recomputed.  With
        ``None`` everything is rebuilt.  Returns counters describing the
        amount of work done.
        """
        from .derived import materialize
        from .statistics import compute_statistics

        all_tables = changed_tables is None
        changed = set(changed_tables or [])

        def recipe_affected(recipe) -> bool:
            if all_tables:
                return True
            inputs = {recipe.fact_table, recipe.mid_table, recipe.second_fact_table}
            inputs.discard("")
            return bool(inputs & changed)

        rematerialized = set()
        for recipe in self.discovery.recipes:
            if recipe_affected(recipe):
                materialize(self.db, recipe)
                rematerialized.add(recipe.name)

        def family_affected(family: PropertyFamily) -> bool:
            if all_tables:
                return True
            if family.entity in changed:
                return True
            if family.fact_table and family.fact_table in changed:
                return True
            return family.derived_table in rematerialized

        affected = [f for f in self.discovery.families if family_affected(f)]
        entity_counts = {
            spec.table: len(self.db.relation(spec.table))
            for spec in self.metadata.entities
        }
        fresh = compute_statistics(self.db, affected, entity_counts)
        for family in affected:
            self.statistics.put(family, fresh.get(family))

        entity_tables = {spec.table for spec in self.metadata.entities}
        if all_tables or (changed & entity_tables):
            from ..relational.inverted import InvertedColumnIndex

            self.inverted = InvertedColumnIndex(
                self.db, tables=sorted(entity_tables)
            )
        return {
            "rematerialized_relations": len(rematerialized),
            "recomputed_families": len(affected),
        }

    # ------------------------------------------------------------------
    # sizes (Figure 18 reporting)
    # ------------------------------------------------------------------
    def size_summary(self) -> Dict[str, Any]:
        """Row counts for base vs derived relations plus family count."""
        derived_names = {recipe.name for recipe in self.discovery.recipes}
        base_rows = sum(
            len(self.db.relation(name))
            for name in self.db.table_names()
            if name not in derived_names
        )
        derived_rows = sum(
            len(self.db.relation(name))
            for name in self.db.table_names()
            if name in derived_names
        )
        return {
            "base_relations": len(self.db.table_names()) - len(derived_names),
            "base_rows": base_rows,
            "derived_relations": len(derived_names),
            "derived_rows": derived_rows,
            "families": len(self.discovery.families),
            "build_seconds": self.report.total_seconds,
        }
