"""SQuID core: the paper's primary contribution.

Offline (Section 5): :mod:`discovery`, :mod:`derived`, :mod:`statistics`,
orchestrated by :class:`~repro.core.adb.AbductionReadyDatabase`.

Online (Sections 4 & 6): :mod:`lookup`, :mod:`disambiguation`,
:mod:`context`, :mod:`priors`, :mod:`abduction`, :mod:`base_query`,
orchestrated by :class:`~repro.core.squid.SquidSystem`.
"""

from .abduction import AbductionResult, FilterDecision, abduce, brute_force_best_subset
from .adb import AbductionReadyDatabase, AdbBuildReport
from .base_query import build_adb_query, build_base_query, build_original_query
from .config import SquidConfig
from .context import ContextSet, discover_contexts
from .disambiguation import DisambiguationResult, disambiguate
from .discovery import DerivedRecipe, DiscoveryResult as SchemaDiscoveryResult
from .discovery import discover_families
from .lookup import EntityMatch, ExampleLookupError, lookup_examples
from .metadata import AdbMetadata, DimensionSpec, EntitySpec, QualifierSpec
from .priors import (
    PriorBreakdown,
    association_strength_impact,
    domain_selectivity_impact,
    filter_prior,
    outlier_impact,
    sample_skewness,
)
from .properties import (
    FamilyKind,
    Filter,
    PropertyFamily,
    SemanticContext,
    SemanticProperty,
)
from .pipeline import (
    AbductionStage,
    ConstructionStage,
    ContextStage,
    DisambiguationStage,
    LookupStage,
    PipelineContext,
    Stage,
)
from .recommend import Recommendation, borderline_decisions, recommend_examples
from .session import BatchOutcome, DiscoverySession, ProbeCachingAdb
from .squid import DiscoveryResult, DiscoveryTimings, SquidSystem
from .workers import (
    ForkWorkerPool,
    ThreadWorkerPool,
    WorkerPool,
    create_worker_pool,
    database_fingerprint,
)

__all__ = [
    "AbductionReadyDatabase",
    "AbductionResult",
    "AbductionStage",
    "AdbBuildReport",
    "AdbMetadata",
    "BatchOutcome",
    "ConstructionStage",
    "ContextSet",
    "ContextStage",
    "DerivedRecipe",
    "DimensionSpec",
    "DisambiguationResult",
    "DisambiguationStage",
    "DiscoveryResult",
    "DiscoverySession",
    "DiscoveryTimings",
    "EntityMatch",
    "EntitySpec",
    "ExampleLookupError",
    "FamilyKind",
    "Filter",
    "FilterDecision",
    "ForkWorkerPool",
    "LookupStage",
    "PipelineContext",
    "PriorBreakdown",
    "ProbeCachingAdb",
    "PropertyFamily",
    "QualifierSpec",
    "Recommendation",
    "SchemaDiscoveryResult",
    "Stage",
    "SemanticContext",
    "SemanticProperty",
    "SquidConfig",
    "SquidSystem",
    "ThreadWorkerPool",
    "WorkerPool",
    "abduce",
    "association_strength_impact",
    "borderline_decisions",
    "recommend_examples",
    "brute_force_best_subset",
    "create_worker_pool",
    "database_fingerprint",
    "build_adb_query",
    "build_base_query",
    "build_original_query",
    "disambiguate",
    "discover_contexts",
    "discover_families",
    "domain_selectivity_impact",
    "filter_prior",
    "lookup_examples",
    "outlier_impact",
    "sample_skewness",
]
