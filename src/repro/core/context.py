"""Semantic context discovery (§6.1.2) and filter construction.

Given the resolved example entities, this module derives the semantic
contexts X = {x1, x2, ...} the probabilistic model reasons over:

* **basic categorical** — all examples share value v → (⟨A, v, ⊥⟩, |E|);
* **basic numeric** — the tightest range → (⟨A, [vmin, vmax], ⊥⟩, |E|)
  (minimal valid filter, Definition 3.2);
* **derived** — all examples associated with value v → (⟨A, v, θmin⟩, |E|)
  where θmin is the weakest association strength among the examples.

Each context is paired with its minimal valid filter, annotated with the
precomputed selectivity and domain coverage the priors need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .adb import AbductionReadyDatabase
from .config import SquidConfig
from .properties import (
    FamilyKind,
    Filter,
    PropertyFamily,
    SemanticContext,
    SemanticProperty,
)
from .statistics import CategoricalStats, DerivedStats, NumericStats


@dataclass
class ContextSet:
    """Discovered contexts and their minimal valid filters for one entity."""

    entity: str
    example_count: int
    contexts: List[SemanticContext]
    filters: List[Filter]
    """``filters[i]`` encodes ``contexts[i]`` (the paper's φi ↔ xi)."""


def discover_contexts(
    adb: AbductionReadyDatabase,
    entity_table: str,
    entity_keys: Sequence[Any],
    config: Optional[SquidConfig] = None,
) -> ContextSet:
    """Derive all semantic contexts shared by the example entities."""
    config = config or adb.config
    keys = list(entity_keys)
    contexts: List[SemanticContext] = []
    filters: List[Filter] = []
    for family in adb.families_for(entity_table):
        found = _family_contexts(adb, family, keys, config)
        for prop in found:
            context = SemanticContext(prop=prop, example_count=len(keys))
            contexts.append(context)
            filters.append(_make_filter(adb, prop))
    return ContextSet(
        entity=entity_table,
        example_count=len(keys),
        contexts=contexts,
        filters=filters,
    )


def _family_contexts(
    adb: AbductionReadyDatabase,
    family: PropertyFamily,
    keys: Sequence[Any],
    config: SquidConfig,
) -> List[SemanticProperty]:
    """Contexts contributed by a single property family."""
    per_example = adb.entity_properties_many(family, keys)
    if any(not props for props in per_example):
        # some example lacks the property entirely -> no valid filter here
        return []

    if family.kind is FamilyKind.DIRECT_NUMERIC:
        values = [next(iter(props)) for props in per_example]
        vmin, vmax = min(values), max(values)
        if config.numeric_slack > 0.0:
            span = (vmax - vmin) or abs(vmin) or 1.0
            vmin -= span * config.numeric_slack
            vmax += span * config.numeric_slack
        return [SemanticProperty(family=family, value=(vmin, vmax), theta=None)]

    if family.kind.is_basic:
        shared = set(per_example[0])
        for props in per_example[1:]:
            shared &= set(props)
        if shared:
            return [
                SemanticProperty(
                    family=family,
                    value=value,
                    theta=None,
                    label=adb.dim_label_of(family, value),
                )
                for value in sorted(shared, key=repr)
            ]
        return _disjunctive_context(adb, family, per_example, config)

    # derived family: shared values with θmin = weakest association
    shared = set(per_example[0])
    for props in per_example[1:]:
        shared &= set(props)
    out = []
    for value in sorted(shared, key=repr):
        thetas = [props[value] for props in per_example]
        if config.normalize_association:
            totals = [
                adb.association_total(family, key) or 1.0 for key in keys
            ]
            thetas = [t / total for t, total in zip(thetas, totals)]
        out.append(
            SemanticProperty(
                family=family,
                value=value,
                theta=min(thetas),
                label=adb.dim_label_of(family, value),
            )
        )
    return out


def _disjunctive_context(
    adb: AbductionReadyDatabase,
    family: PropertyFamily,
    per_example: List[Dict[Any, float]],
    config: SquidConfig,
) -> List[SemanticProperty]:
    """Footnote 7: a value-set filter when no single value is shared.

    Only single-valued categorical kinds qualify (one value per entity);
    the observed value union is the minimal valid disjunction.
    """
    if config.max_disjunction < 2:
        return []
    if family.kind not in (FamilyKind.DIRECT_CATEGORICAL, FamilyKind.FK_DIM):
        return []
    values = frozenset(next(iter(props)) for props in per_example)
    if len(values) < 2 or len(values) > config.max_disjunction:
        return []
    labels = sorted(adb.dim_label_of(family, v) for v in values)
    return [
        SemanticProperty(
            family=family,
            value=values,  # type: ignore[arg-type]
            theta=None,
            label="{" + ", ".join(labels) + "}",
        )
    ]


def _make_filter(adb: AbductionReadyDatabase, prop: SemanticProperty) -> Filter:
    """Annotate a property with its selectivity and domain coverage."""
    family = prop.family
    stats = adb.statistics.get(family)
    if family.kind is FamilyKind.DIRECT_NUMERIC:
        assert isinstance(stats, NumericStats)
        low, high = prop.value  # type: ignore[misc]
        return Filter(
            prop=prop,
            selectivity=stats.selectivity(low, high),
            domain_coverage=stats.coverage(low, high),
        )
    if family.kind.is_basic:
        assert isinstance(stats, CategoricalStats)
        if isinstance(prop.value, frozenset):
            return Filter(
                prop=prop,
                selectivity=stats.selectivity_in(sorted(prop.value, key=repr)),
                domain_coverage=stats.coverage(sorted(prop.value, key=repr)),
            )
        return Filter(
            prop=prop,
            selectivity=stats.selectivity(prop.value),
            domain_coverage=stats.coverage([prop.value]),
        )
    assert isinstance(stats, DerivedStats)
    theta = prop.theta if prop.theta is not None else 1.0
    if adb.config.normalize_association or _is_normalized(theta, stats, prop.value):
        selectivity = _normalized_selectivity(adb, family, prop.value, theta, stats)
    else:
        selectivity = stats.selectivity(prop.value, theta)
    return Filter(
        prop=prop,
        selectivity=selectivity,
        domain_coverage=stats.coverage([prop.value]),
    )


def _is_normalized(theta: float, stats: DerivedStats, value: Any) -> bool:
    """Heuristic: fractional θ < 1 implies the normalised mode produced it."""
    return 0.0 < theta < 1.0


def _normalized_selectivity(
    adb: AbductionReadyDatabase,
    family: PropertyFamily,
    value: Any,
    theta: float,
    stats: DerivedStats,
) -> float:
    """Selectivity under normalised association strengths.

    The precomputed per-value strength arrays store raw counts, so the
    normalised variant recomputes the share of entities whose *fraction*
    of associations to ``value`` is at least θ.  Derived relations are
    small (one row per entity-value pair), so this stays cheap and is only
    used in the case-study configuration.
    """
    relation = adb.db.relation(family.derived_table)
    entity_col = relation.column(family.derived_entity_col)
    value_col = relation.column(family.derived_value_col)
    count_col = relation.column("count")
    totals: Dict[Any, float] = {}
    hits: Dict[Any, float] = {}
    for rid in relation.row_ids():
        key = entity_col[rid]
        count = float(count_col[rid])
        totals[key] = totals.get(key, 0.0) + count
        if value_col[rid] == value:
            hits[key] = count
    n = adb.entity_count(family.entity)
    if n == 0:
        return 0.0
    satisfied = sum(
        1
        for key, hit in hits.items()
        if totals.get(key, 0.0) > 0 and hit / totals[key] >= theta
    )
    return satisfied / n
