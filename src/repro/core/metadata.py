"""αDB metadata: the minimal schema annotations SQuID needs (Section 5).

The paper's offline module relies on "(1) the database schema, including the
specification of primary and foreign key constraints, and (2) additional
meta-data, which can be provided once by a database administrator, that
specify which tables describe entities (e.g. person, movie), and which
tables and attributes describe direct properties of entities (e.g. genre,
age)".  Everything else — fact tables, derived properties — is discovered
automatically from the schema graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.errors import SchemaError


@dataclass(frozen=True)
class EntitySpec:
    """An entity table: its key and the attribute users give examples of."""

    table: str
    key: str
    display: str
    """Display attribute, e.g. ``person.name`` or ``movie.title``: the
    column whose values users supply as example tuples."""

    derive_properties: bool = True
    """Whether the offline module builds derived families for this entity.
    Disabling it bounds αDB size for entities nobody queries by example."""


@dataclass(frozen=True)
class DimensionSpec:
    """A property (dimension) table: small domain of values for entities."""

    table: str
    key: str
    label: str
    """Label attribute holding the human-readable value (e.g. ``name``)."""


@dataclass(frozen=True)
class QualifierSpec:
    """A qualifier on a fact table that splits entity-entity associations.

    Example: ``castinfo.role_id`` qualifies person↔movie associations by
    role, yielding separate families such as "movies as Actor" and
    "movies as Director" — the distinction behind the paper's IQ6
    discussion (Clint Eastwood directing vs. acting).
    """

    fact_table: str
    column: str
    dim_table: str


@dataclass
class AdbMetadata:
    """Administrator-provided annotations driving αDB construction."""

    entities: List[EntitySpec] = field(default_factory=list)
    dimensions: List[DimensionSpec] = field(default_factory=list)
    property_attributes: Dict[str, List[str]] = field(default_factory=dict)
    """Per entity table: direct attributes that are semantic properties
    (e.g. ``person -> [gender, birth_year]``).  FK attributes pointing at
    dimension tables are discovered automatically and need not be listed."""

    qualifiers: List[QualifierSpec] = field(default_factory=list)
    excluded_attributes: Dict[str, List[str]] = field(default_factory=dict)
    """Attributes never to treat as properties (keys, display names)."""

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def entity(self, table: str) -> EntitySpec:
        """The :class:`EntitySpec` for ``table`` (raises if absent)."""
        for spec in self.entities:
            if spec.table == table:
                return spec
        raise SchemaError(f"{table!r} is not declared as an entity")

    def is_entity(self, table: str) -> bool:
        """Whether ``table`` is a declared entity table."""
        return any(spec.table == table for spec in self.entities)

    def dimension(self, table: str) -> Optional[DimensionSpec]:
        """The :class:`DimensionSpec` for ``table``, or ``None``."""
        for spec in self.dimensions:
            if spec.table == table:
                return spec
        return None

    def is_dimension(self, table: str) -> bool:
        """Whether ``table`` is a declared dimension table."""
        return self.dimension(table) is not None

    def qualifier_for(self, fact_table: str) -> Optional[QualifierSpec]:
        """The qualifier declared on ``fact_table``, if any."""
        for spec in self.qualifiers:
            if spec.fact_table == fact_table:
                return spec
        return None

    def properties_of(self, table: str) -> List[str]:
        """Direct property attributes declared for ``table``."""
        return list(self.property_attributes.get(table, []))

    def is_excluded(self, table: str, attribute: str) -> bool:
        """Whether ``table.attribute`` must not become a property."""
        return attribute in self.excluded_attributes.get(table, [])

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, database: Database) -> None:
        """Check every annotation against the actual schema."""
        if not self.entities:
            raise SchemaError("metadata declares no entity tables")
        for spec in self.entities:
            schema = database.relation(spec.table).schema
            for column in (spec.key, spec.display):
                if not schema.has_column(column):
                    raise SchemaError(
                        f"entity {spec.table!r}: missing column {column!r}"
                    )
        for dim in self.dimensions:
            schema = database.relation(dim.table).schema
            for column in (dim.key, dim.label):
                if not schema.has_column(column):
                    raise SchemaError(
                        f"dimension {dim.table!r}: missing column {column!r}"
                    )
        for table, attributes in self.property_attributes.items():
            schema = database.relation(table).schema
            for attribute in attributes:
                if not schema.has_column(attribute):
                    raise SchemaError(
                        f"property attribute {table}.{attribute} does not exist"
                    )
        for qual in self.qualifiers:
            schema = database.relation(qual.fact_table).schema
            if not schema.has_column(qual.column):
                raise SchemaError(
                    f"qualifier {qual.fact_table}.{qual.column} does not exist"
                )
            if self.dimension(qual.dim_table) is None:
                raise SchemaError(
                    f"qualifier dimension {qual.dim_table!r} is not declared"
                )
        overlap = {e.table for e in self.entities} & {
            d.table for d in self.dimensions
        }
        if overlap:
            raise SchemaError(
                f"tables declared both entity and dimension: {sorted(overlap)}"
            )
