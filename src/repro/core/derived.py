"""Materialisation of derived αDB relations (Section 5, Q6).

Each :class:`~repro.core.discovery.DerivedRecipe` becomes a relation
``name(entity_key, value, count)`` — the paper's ``persontogenre``
pattern::

    CREATE TABLE persontogenre AS
      (SELECT person_id, genre_id, count(*) AS count
       FROM castinfo, movietogenre
       WHERE castinfo.movie_id = movietogenre.movie_id
       GROUP BY person_id, genre_id)

Counting is vectorised with numpy: (entity, value) pairs are encoded as
composite int64 keys and reduced with ``np.unique(return_counts=True)``,
which keeps offline construction fast even for the scaled IMDb variants.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..relational.database import Database
from ..relational.schema import ColumnDef, TableSchema
from ..relational.types import ColumnType
from .discovery import DerivedRecipe


def materialize_all(database: Database, recipes: Sequence[DerivedRecipe]) -> List[str]:
    """Materialise every recipe into ``database``; returns relation names."""
    return [materialize(database, recipe) for recipe in recipes]


def materialize(database: Database, recipe: DerivedRecipe) -> str:
    """Materialise one derived relation; returns its name."""
    entity_keys, values = _collect_pairs(database, recipe)
    rows = _count_pairs(entity_keys, values)
    schema = TableSchema(
        recipe.name,
        [
            ColumnDef(recipe.entity_key_col, ColumnType.INT, nullable=False),
            ColumnDef(recipe.value_col, recipe.value_ctype, nullable=False),
            ColumnDef("count", ColumnType.INT, nullable=False),
        ],
    )
    if recipe.name in database:
        database.drop_table(recipe.name)
    relation = database.create_table(schema)
    relation.extend(rows)
    return recipe.name


def _collect_pairs(
    database: Database, recipe: DerivedRecipe
) -> Tuple[List[Any], List[Any]]:
    """(entity_key, value) occurrence lists for one recipe."""
    fact = database.relation(recipe.fact_table)
    entity_col = fact.column(recipe.fact_entity_col)
    mid_col = fact.column(recipe.fact_mid_col)
    qualifier_col = (
        fact.column(recipe.qualifier_col) if recipe.qualifier_col else None
    )

    def fact_rows():
        for rid in fact.row_ids():
            if entity_col[rid] is None or mid_col[rid] is None:
                continue
            if (
                qualifier_col is not None
                and qualifier_col[rid] != recipe.qualifier_value
            ):
                continue
            yield rid

    if recipe.kind == "entity":
        keys, values = [], []
        for rid in fact_rows():
            keys.append(entity_col[rid])
            values.append(mid_col[rid])
        return keys, values

    if recipe.kind in ("mid_attr", "mid_fk"):
        mid = database.relation(recipe.mid_table)
        attr_store = mid.column(recipe.mid_attr)
        pk_lookup = mid.lookup_pk
        keys, values = [], []
        for rid in fact_rows():
            mid_rid = pk_lookup(mid_col[rid])
            if mid_rid is None:
                continue
            value = attr_store[mid_rid]
            if value is None:
                continue
            keys.append(entity_col[rid])
            values.append(value)
        return keys, values

    if recipe.kind == "chain":
        second = database.relation(recipe.second_fact_table)
        index = database.hash_index(
            recipe.second_fact_table, recipe.second_fact_mid_col
        )
        dim_store = second.column(recipe.second_fact_dim_col)
        keys, values = [], []
        for rid in fact_rows():
            for second_rid in index.lookup(mid_col[rid]):
                value = dim_store[second_rid]
                if value is None:
                    continue
                keys.append(entity_col[rid])
                values.append(value)
        return keys, values

    raise ValueError(f"unknown recipe kind {recipe.kind!r}")


def _count_pairs(keys: List[Any], values: List[Any]) -> List[Tuple[Any, Any, int]]:
    """GROUP BY (key, value) with count(*), vectorised when values are ints."""
    if not keys:
        return []
    if isinstance(values[0], (int, np.integer)) and not isinstance(values[0], bool):
        karr = np.asarray(keys, dtype=np.int64)
        varr = np.asarray(values, dtype=np.int64)
        vmin = int(varr.min())
        span = int(varr.max()) - vmin + 1
        composite = karr * span + (varr - vmin)
        uniq, counts = np.unique(composite, return_counts=True)
        out_keys = uniq // span
        out_values = uniq % span + vmin
        return [
            (int(k), int(v), int(c))
            for k, v, c in zip(out_keys, out_values, counts)
        ]
    counter: Dict[Tuple[Any, Any], int] = {}
    for key, value in zip(keys, values):
        pair = (key, value)
        counter[pair] = counter.get(pair, 0) + 1
    return [(k, v, c) for (k, v), c in sorted(counter.items(), key=lambda kv: repr(kv[0]))]
