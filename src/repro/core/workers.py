"""Persistent worker pools with worker-affine unit scheduling.

PR 2's batch session created a throwaway executor per batch; its forked
children additionally re-ran entity lookup once per (child × example
set), because fork-inherited state cannot be seeded after the fact.
This module replaces both with a pool that

* **starts once** and is reused across batches (and across the serving
  tier's concurrent requests) — the fork cost and the copy-on-write
  shipping of the warm αDB (materialised probe maps, prebuilt
  column/sorted views, the loaded execution backend) are paid a single
  time;
* schedules (example set × candidate base query) units **worker-affine**:
  every unit of one example set lands on the same worker, and the first
  unit carries the parent's lookup result with it, so lookup state is
  *never* recomputed in a child.  Counters prove it
  (``lookup_reruns`` stays 0; see :meth:`WorkerPool.stats`).

Two pool flavours share one interface and one scheduling policy:

* :class:`ForkWorkerPool` — ``fork()``-spawned processes, one request
  queue per worker (affinity is the queue), one shared result queue
  drained by a collector thread that resolves the submitters' futures;
* :class:`ThreadWorkerPool` — the same layout over threads, for
  platforms without ``fork`` and for workloads where the numpy kernels
  (which release the GIL) dominate.

Submission is thread-safe and returns :class:`concurrent.futures.Future`
objects, which also makes the pool directly awaitable from asyncio via
``asyncio.wrap_future`` — that is exactly how
:meth:`repro.core.session.DiscoverySession.discover_many_async` drives
it.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..parallel import (
    database_fingerprint,
    default_task_workers,
    fork_available,
    fork_state_handoff,
    inherited_fork_state,
)
from .config import SquidConfig
from .pipeline import DiscoveryResult, PipelineContext, run_candidate

__all__ = [
    "ForkWorkerPool",
    "ThreadWorkerPool",
    "WorkerPool",
    "create_worker_pool",
    "database_fingerprint",
    "default_pool_workers",
]

#: Per-worker cap on cached lookup states: a worker serving an endless
#: request stream must not grow its matches cache without bound.  Sized
#: far above any realistic number of concurrently in-flight sets.
MATCHES_CACHE_LIMIT = 512

_SHUTDOWN = None


class _WorkerCore:
    """The per-worker execution loop shared by both pool flavours.

    One instance lives in each worker (forked child or thread).  It
    caches lookup state by set token: the first unit of a set ships the
    parent's matches, later units (affine — same worker by construction)
    reuse them.  ``lookup_reruns`` counts the fallback where a unit
    arrives without matches and misses the cache; the scheduler's
    affinity makes that impossible short of cache eviction, and tests
    assert it stays 0.
    """

    def __init__(self, worker_id: int, adb: Any, backend: Any) -> None:
        self.worker_id = worker_id
        self.adb = adb
        self.backend = backend
        self._matches: "Dict[int, Any]" = {}
        self.units_run = 0
        self.sets_seen = 0
        self.lookup_reruns = 0

    def _matches_for(
        self,
        token: int,
        examples: List[str],
        config: SquidConfig,
        shipped: Optional[List[Any]],
    ) -> List[Any]:
        matches = self._matches.get(token)
        if matches is not None:
            return matches
        if shipped is not None:
            matches = shipped
            self.sets_seen += 1
        else:
            # Fallback only: affinity should have shipped the state.
            from .pipeline import LOOKUP_STAGE

            ctx = PipelineContext(
                adb=self.adb,
                backend=self.backend,
                config=config,
                examples=examples,
            )
            LOOKUP_STAGE(ctx)
            matches = ctx.matches
            self.lookup_reruns += 1
        while len(self._matches) >= MATCHES_CACHE_LIMIT:
            self._matches.pop(next(iter(self._matches)))
        self._matches[token] = matches
        return matches

    def run_unit(
        self,
        token: int,
        examples: List[str],
        cand_idx: int,
        config: SquidConfig,
        shipped: Optional[List[Any]],
    ) -> DiscoveryResult:
        matches = self._matches_for(token, examples, config, shipped)
        ctx = PipelineContext(
            adb=self.adb,
            backend=self.backend,
            config=config,
            examples=examples,
            match=matches[cand_idx],
        )
        result = run_candidate(ctx)
        self.units_run += 1
        return result

    def counters(self) -> Dict[str, int]:
        return {
            "units_run": self.units_run,
            "sets_seen": self.sets_seen,
            "lookup_reruns": self.lookup_reruns,
        }


def _fork_worker_main(worker_id: int, request_q, result_q) -> None:
    """Entry point of a forked pool worker (runs until sentinel).

    The warm (αDB, backend) pair arrives through the shared
    :func:`repro.parallel.fork_state_handoff` copy-on-write global —
    never pickled."""
    adb, backend = inherited_fork_state()
    core = _WorkerCore(worker_id, adb, backend)
    while True:
        message = request_q.get()
        if message is _SHUTDOWN:
            break
        req_id, token, examples, cand_idx, config, shipped = message
        try:
            result = core.run_unit(token, examples, cand_idx, config, shipped)
            result_q.put((req_id, True, result, worker_id, core.counters()))
        except Exception as exc:  # surfaced through the submitter's future
            result_q.put((req_id, False, exc, worker_id, core.counters()))


class WorkerPool:
    """Base: affinity scheduling, futures plumbing, counters.

    Subclasses provide ``_start_workers`` / ``_send`` / ``_stop_workers``;
    everything above the transport — token allocation, least-loaded
    worker assignment, the pending-future table — is shared.
    """

    kind: str = "abstract"

    def __init__(self, adb: Any, backend: Any, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.adb = adb
        self.backend = backend
        self.workers = workers
        self.started = False
        self.closed = False
        self.batches_served = 0
        self.fingerprint: Optional[Tuple[Tuple[str, int, int], ...]] = None

        self._lock = threading.Lock()
        self._req_ids = itertools.count()
        self._tokens = itertools.count()
        self._pending: Dict[int, Tuple[Future, int]] = {}
        self._affinity: Dict[int, int] = {}
        self._inflight_per_worker: List[int] = [0] * workers
        self._shipped_tokens: set = set()
        self._worker_counters: Dict[int, Dict[str, int]] = {}

    # -- transport hooks (subclass responsibility) ---------------------
    def _start_workers(self) -> None:
        raise NotImplementedError

    def _send(self, worker_id: int, message: Any) -> None:
        raise NotImplementedError

    def _stop_workers(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn the workers (idempotent)."""
        if self.started:
            return self
        self.fingerprint = database_fingerprint(self.adb.db)
        self._start_workers()
        self.started = True
        return self

    def close(self) -> None:
        """Stop the workers; pending futures are failed, not abandoned."""
        if self.closed:
            return
        with self._lock:
            # set under the lock so submit_unit's locked re-check and the
            # pending-clear below cannot interleave with a late submit
            self.closed = True
        if self.started:
            self._stop_workers()
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future, _ in pending:
            if not future.done():
                future.set_exception(RuntimeError("worker pool closed"))

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def new_token(self) -> int:
        """A fresh set token (unique across the pool's whole lifetime)."""
        return next(self._tokens)

    def submit_unit(
        self,
        token: int,
        examples: Sequence[str],
        cand_idx: int,
        config: SquidConfig,
        matches: List[Any],
    ) -> "Future[DiscoveryResult]":
        """Schedule one (example set × candidate) unit; affine by token.

        The first unit of a token picks the least-loaded worker and ships
        ``matches`` (the parent's lookup state) along; every later unit of
        the same token rides to the same worker and ships nothing.
        """
        if not self.started or self.closed:
            raise RuntimeError("worker pool is not running")
        future: "Future[DiscoveryResult]" = Future()
        with self._lock:
            # Re-check under the lock: a monitor-triggered close() may
            # have failed-and-cleared _pending between the unlocked check
            # above and here; registering after that would leave this
            # future unresolvable.
            if self.closed:
                raise RuntimeError("worker pool is not running")
            req_id = next(self._req_ids)
            worker_id = self._affinity.get(token)
            if worker_id is None:
                worker_id = min(
                    range(self.workers),
                    key=lambda w: self._inflight_per_worker[w],
                )
                self._affinity[token] = worker_id
            shipped = None
            if token not in self._shipped_tokens:
                self._shipped_tokens.add(token)
                shipped = matches
            self._pending[req_id] = (future, worker_id)
            self._inflight_per_worker[worker_id] += 1
        self._send(
            worker_id,
            (req_id, token, list(examples), cand_idx, config, shipped),
        )
        return future

    def _resolve(
        self,
        req_id: int,
        ok: bool,
        payload: Any,
        worker_id: int,
        counters: Dict[str, int],
    ) -> None:
        with self._lock:
            entry = self._pending.pop(req_id, None)
            self._inflight_per_worker[worker_id] = max(
                0, self._inflight_per_worker[worker_id] - 1
            )
            self._worker_counters[worker_id] = counters
        future = entry[0] if entry is not None else None
        if future is None or future.done():
            return
        if ok:
            future.set_result(payload)
        else:
            future.set_exception(payload)

    def note_batch_served(self) -> None:
        """Record one completed batch.  ``batches_served`` is shared with
        the owning session's concurrent batch threads, so the bump runs
        under the pool's lock — callers must never mutate the counter
        directly (the invariant linter enforces this)."""
        with self._lock:
            self.batches_served += 1

    def forget(self, tokens: Sequence[int]) -> None:
        """Drop affinity bookkeeping for finished sets (workers bound
        their own caches; the parent-side maps are trimmed here)."""
        with self._lock:
            for token in tokens:
                self._affinity.pop(token, None)
                self._shipped_tokens.discard(token)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Pool counters, aggregated over the latest per-worker reports.

        ``pool_lookup_reruns`` is the headline number: worker-affine
        scheduling plus shipped lookup state keeps it at 0 (each rerun
        would be one redundant inverted-index probe in a child).
        """
        with self._lock:
            reports = list(self._worker_counters.values())
            inflight = sum(self._inflight_per_worker)
        return {
            "pool_workers": self.workers,
            "pool_kind_" + self.kind: 1,
            "pool_batches_served": self.batches_served,
            "pool_inflight": inflight,
            "pool_units_run": sum(r["units_run"] for r in reports),
            "pool_sets_shipped": sum(r["sets_seen"] for r in reports),
            "pool_lookup_reruns": sum(r["lookup_reruns"] for r in reports),
        }


class ForkWorkerPool(WorkerPool):
    """Fork-based pool: warm state ships via copy-on-write, once."""

    kind = "process"

    #: Seconds between worker-liveness checks of the monitor thread.
    MONITOR_INTERVAL = 0.2

    def __init__(self, adb: Any, backend: Any, workers: int) -> None:
        super().__init__(adb, backend, workers)
        self._mp = multiprocessing.get_context("fork")
        self._request_queues: List[Any] = []
        self._result_queue: Any = None
        self._processes: List[Any] = []
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

    def _start_workers(self) -> None:
        self._result_queue = self._mp.SimpleQueue()
        with fork_state_handoff((self.adb, self.backend)):
            for worker_id in range(self.workers):
                request_q = self._mp.SimpleQueue()
                process = self._mp.Process(
                    target=_fork_worker_main,
                    args=(worker_id, request_q, self._result_queue),
                    daemon=True,
                )
                process.start()
                self._request_queues.append(request_q)
                self._processes.append(process)
        self._collector = threading.Thread(
            target=self._collect, name="repro-pool-collector", daemon=True
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._watch_workers, name="repro-pool-monitor", daemon=True
        )
        self._monitor.start()

    def _collect(self) -> None:
        while True:
            message = self._result_queue.get()
            if message is _SHUTDOWN:
                break
            self._resolve(*message)

    def _watch_workers(self) -> None:
        """Fail fast instead of hanging when a forked worker dies.

        A killed child (OOM, segfault) never reports back, so without
        this its submitters would block forever on their futures.  On
        death: the dead worker's pending futures get the error, and the
        pool closes (failing the rest) — the owning session starts a
        fresh pool on its next batch.
        """
        while not self.closed:
            for worker_id, process in enumerate(self._processes):
                if self.closed:
                    return
                if not process.is_alive():
                    self._on_worker_death(worker_id, process.exitcode)
                    return
            time.sleep(self.MONITOR_INTERVAL)

    def _on_worker_death(self, worker_id: int, exitcode: Any) -> None:
        with self._lock:
            dead = [
                (req_id, future)
                for req_id, (future, owner) in self._pending.items()
                if owner == worker_id
            ]
            for req_id, _ in dead:
                del self._pending[req_id]
        error = RuntimeError(
            f"pool worker {worker_id} died (exit code {exitcode})"
        )
        for _, future in dead:
            if not future.done():
                future.set_exception(error)
        self.close()

    def _send(self, worker_id: int, message: Any) -> None:
        self._request_queues[worker_id].put(message)

    def _stop_workers(self) -> None:
        for request_q in self._request_queues:
            request_q.put(_SHUTDOWN)
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1)
        self._result_queue.put(_SHUTDOWN)
        if self._collector is not None:
            self._collector.join(timeout=5)
        # the monitor exits on its own once ``closed`` is set; never join
        # it here — worker-death handling calls close() *from* it


class ThreadWorkerPool(WorkerPool):
    """Thread-based pool: same scheduling, shared-memory transport."""

    kind = "thread"

    def __init__(self, adb: Any, backend: Any, workers: int) -> None:
        super().__init__(adb, backend, workers)
        self._queues: List[Any] = []
        self._threads: List[threading.Thread] = []

    def _start_workers(self) -> None:
        import queue

        for worker_id in range(self.workers):
            request_q: "queue.Queue" = queue.Queue()
            thread = threading.Thread(
                target=self._thread_main,
                args=(worker_id, request_q),
                name=f"repro-pool-worker-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._queues.append(request_q)
            self._threads.append(thread)

    def _thread_main(self, worker_id: int, request_q) -> None:
        core = _WorkerCore(worker_id, self.adb, self.backend)
        while True:
            message = request_q.get()
            if message is _SHUTDOWN:
                break
            req_id, token, examples, cand_idx, config, shipped = message
            try:
                result = core.run_unit(
                    token, examples, cand_idx, config, shipped
                )
                self._resolve(req_id, True, result, worker_id, core.counters())
            except Exception as exc:
                self._resolve(req_id, False, exc, worker_id, core.counters())

    def _send(self, worker_id: int, message: Any) -> None:
        self._queues[worker_id].put(message)

    def _stop_workers(self) -> None:
        for request_q in self._queues:
            request_q.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=5)


def create_worker_pool(
    adb: Any,
    backend: Any,
    workers: int,
    executor: str = "process",
) -> WorkerPool:
    """Pool factory: ``process`` (falling back where fork is missing) or
    ``thread``.  The returned pool is *not* started; call ``start()``
    after the αDB is warm so the fork snapshot ships the warm state."""
    if executor == "process" and fork_available():
        return ForkWorkerPool(adb, backend, workers)
    return ThreadWorkerPool(adb, backend, workers)


def default_pool_workers() -> int:
    """A sensible pool width: the machine's cores, capped at 8."""
    return default_task_workers()
