"""SQuID configuration: the paper's tunable parameters plus ablation knobs.

The four headline parameters and their defaults come from Appendix E
(Figure 21): base filter prior ρ = 0.1, domain-coverage penalty γ = 2,
association-strength threshold τa = 5, skewness threshold τs = 2.0.

Additional knobs expose design decisions the paper discusses in prose:

* ``eta`` — the domain-coverage threshold η of Appendix A below which a
  filter is not penalised at all.
* ``outlier_k`` — the ``k`` of the mean/standard-deviation outlier rule
  of Appendix B (``a_i`` is an outlier if ``a_i - mean > k*s``), with
  ``k >= 2``.
* ``entity_dim_tau_a`` — τa applied to derived families whose value
  dimension is itself an entity (movies↔persons, publications↔authors).
  Such association strengths are inherently ~1, so the global τa would
  reject them outright; the paper's IQ5/DQ4 results show these filters
  must survive (see DESIGN.md §5).
* ``normalize_association`` — Section 7.4's case-study variant where θ is
  the *fraction* of an entity's associations rather than the raw count.
* ``max_fact_depth`` — Section 5 restricts derived-property discovery to
  a depth of two fact tables; exposed for the ablation benchmark.
* ``numeric_slack`` — ablation of Definition 3.2's tightest-bound choice:
  widens numeric ranges by this relative slack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..sql.engine import (
    DEFAULT_BACKEND,
    DEFAULT_CACHE_SIZE,
    DEFAULT_GUARD_FACTOR,
    DEFAULT_SAMPLE_BUDGET,
    DEFAULT_SHARD_MIN_ROWS,
    available_backends,
)


def validate_fanout(jobs: int, executor: str) -> None:
    """Validate worker-pool settings (shared by config and sessions)."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if executor not in ("thread", "process"):
        raise ValueError(
            f"executor must be 'thread' or 'process', got {executor!r}"
        )


@dataclass(frozen=True)
class SquidConfig:
    """All tunable parameters of the SQuID pipeline."""

    # --- probabilistic abduction model (Figure 21 defaults) -----------
    rho: float = 0.1
    """Base filter prior ρ ∈ (0, 1): default prior of including a filter."""

    gamma: float = 2.0
    """Domain-coverage penalty γ >= 0 (Appendix A); 0 disables δ."""

    tau_a: float = 5.0
    """Association-strength threshold τa: derived filters with θ < τa are
    labelled insignificant (α = 0)."""

    tau_s: float = 2.0
    """Skewness threshold τs for the outlier impact λ (Appendix B)."""

    # --- secondary model parameters ------------------------------------
    eta: float = 0.25
    """Domain-coverage fraction η below which δ(φ) = 1 (Appendix A)."""

    outlier_k: float = 2.0
    """Constant k >= 2 of the outlier test ``θ - mean > k * stddev``."""

    entity_dim_tau_a: float = 1.0
    """τa override for derived families with entity-valued dimensions."""

    normalize_association: bool = False
    """Use fractional association strengths (Section 7.4 case studies)."""

    # --- offline discovery ---------------------------------------------
    max_fact_depth: int = 2
    """Maximum number of fact tables on a derived-property path (§5)."""

    # --- online behaviour ------------------------------------------------
    disambiguate: bool = True
    """Resolve ambiguous example-to-entity mappings (§6.1.1)."""

    max_disjunction: int = 0
    """Footnote 7's optional disjunction for categorical attributes: when
    the examples do not share a single value of a single-valued categorical
    family, allow a filter over the (tightest) observed value set, up to
    this many values.  0 disables disjunction (the paper's default
    exposition)."""

    max_disambiguation_combinations: int = 2048
    """Exhaustive assignment search cap; beyond it, fall back to greedy."""

    numeric_slack: float = 0.0
    """Relative widening of numeric range filters (ablation of Def. 3.2)."""

    prune_redundant_filters: bool = False
    """Drop abduced filters whose removal leaves the result set unchanged.

    With whole-output example sets (the closed-world QRE setting of
    Section 7.5) ψ(φ)^|E| vanishes for *every* shared context, so Algorithm
    1 includes them all; this Occam's-razor pass keeps the emitted query as
    simple as possible, as the paper's Theorem 1 discussion prescribes."""

    max_example_warn: int = 100
    """Soft cap: above this many examples a ValueError is raised (QBE
    users provide few examples; this guards against misuse)."""

    # --- execution backend -----------------------------------------------
    backend: str = DEFAULT_BACKEND
    """Execution backend for αDB queries: ``interpreted`` (the reference
    row-at-a-time engine), ``vectorized`` (numpy kernels over cached
    column arrays; the default), or ``sqlite`` (an in-memory SQLite
    mirror)."""

    query_cache_size: int = DEFAULT_CACHE_SIZE
    """LRU entries of the shared query-result cache keyed on formatted
    SQL (0 disables caching).  The Occam's-razor pruning pass and
    evaluation reruns re-execute identical queries; the cache makes those
    repeats free."""

    shards: int = 0
    """Probe-side shard workers of the ``sharded`` engine (and of the
    ``dispatch`` router's sharded tier).  0 means auto: the machine's
    cores, capped at 8."""

    shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS
    """Activation threshold of the sharded engine: a block only fans out
    when its estimated carried work (start rows × aliases) reaches this
    many row-gathers; smaller blocks stay on the single-process
    vectorized path."""

    estimator: bool = True
    """Drive the ``dispatch`` router with the v2 sampling-based
    cardinality estimator (point estimates with [lo, hi] safety bounds,
    misroute guards, per-decision telemetry).  ``False`` restores the v1
    fixed EQ→1 / range→n/4 heuristics."""

    estimator_sample_budget: int = DEFAULT_SAMPLE_BUDGET
    """Per-column sample budget of the v2 estimator: columns at or under
    this many non-NULL values are scanned in full (exact statistics);
    larger columns get a deterministic without-replacement sample of
    this size.  Bigger budgets tighten the safety bounds at the price of
    a longer first-touch scan per column (see docs/serving.md)."""

    estimator_guard_factor: float = DEFAULT_GUARD_FACTOR
    """Misroute guard threshold: a block routed to the interpreted
    engine aborts and reroutes to the safe engine once its observed
    mid-flight rows exceed the estimate's upper bound by this factor."""

    analyze: bool = False
    """Statically verify every query before execution (the
    :mod:`repro.analysis` plan verifier as a pre-execution gate):
    error-severity findings — unknown references, type-incompatible
    joins/predicates, statically unsatisfiable conjunctions,
    engine-defined GROUP BY projections — reject the query with a
    :class:`~repro.analysis.PlanVerificationError` before any engine
    runs it; warnings only count in the ``analyze_*`` stats.  Verdicts
    are memoized per (formatted SQL, relation stamps), so the warm-plan
    overhead is one dict probe."""

    # --- batch discovery / worker fan-out --------------------------------
    jobs: int = 1
    """Default worker-pool width of :class:`~repro.core.session.
    DiscoverySession`: independent (example set × candidate base query)
    work units fan out across this many workers.  1 keeps the sequential
    reference path."""

    executor: str = "thread"
    """Worker pool flavour for ``jobs > 1``: ``thread`` (shared αDB, best
    when the vectorized kernels dominate) or ``process`` (fork-based,
    true CPU parallelism; falls back to threads where fork is
    unavailable)."""

    persistent_pool: bool = True
    """Keep one :class:`~repro.core.workers.WorkerPool` alive across
    batches (and the serving tier's concurrent requests): workers start
    once, inherit the warm αDB, and receive (set × candidate) units
    worker-affine with the parent's lookup state shipped along.
    ``False`` restores the per-batch throwaway executors (the PR 2
    baseline the serving benchmark compares against)."""

    def __post_init__(self) -> None:
        if not 0.0 < self.rho < 1.0:
            raise ValueError(f"rho must be in (0, 1), got {self.rho}")
        if self.gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {self.gamma}")
        if self.eta <= 0:
            raise ValueError(f"eta must be > 0, got {self.eta}")
        if self.tau_a < 0:
            raise ValueError(f"tau_a must be >= 0, got {self.tau_a}")
        if self.outlier_k < 0:
            raise ValueError(f"outlier_k must be >= 0, got {self.outlier_k}")
        if self.max_fact_depth not in (1, 2):
            raise ValueError("max_fact_depth must be 1 or 2")
        if self.backend not in available_backends():
            raise ValueError(
                f"backend must be one of {', '.join(available_backends())}, "
                f"got {self.backend!r}"
            )
        if self.query_cache_size < 0:
            raise ValueError(
                f"query_cache_size must be >= 0, got {self.query_cache_size}"
            )
        if self.shards < 0:
            raise ValueError(f"shards must be >= 0, got {self.shards}")
        if self.shard_min_rows < 0:
            raise ValueError(
                f"shard_min_rows must be >= 0, got {self.shard_min_rows}"
            )
        if self.estimator_sample_budget < 16:
            raise ValueError(
                "estimator_sample_budget must be >= 16, got "
                f"{self.estimator_sample_budget}"
            )
        if self.estimator_guard_factor < 1.0:
            raise ValueError(
                "estimator_guard_factor must be >= 1, got "
                f"{self.estimator_guard_factor}"
            )
        validate_fanout(self.jobs, self.executor)

    def with_overrides(self, **kwargs) -> "SquidConfig":
        """A copy of this config with selected fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def default(cls) -> "SquidConfig":
        """The paper's default configuration (Figure 21)."""
        return cls()

    @classmethod
    def optimistic(cls) -> "SquidConfig":
        """Closed-world / QRE configuration (Section 7.5).

        For query reverse engineering "there is no need to drop
        coincidental filters", so SQuID is made optimistic: high filter
        prior, low association-strength threshold, no domain-coverage
        penalty, and no skew gating.
        """
        return cls(
            rho=0.9,
            gamma=0.0,
            tau_a=1.0,
            tau_s=-1.0,
            entity_dim_tau_a=1.0,
            prune_redundant_filters=True,
        )

    @classmethod
    def case_study(cls) -> "SquidConfig":
        """Section 7.4 configuration with normalised association strength."""
        return cls(normalize_association=True, tau_a=0.3, entity_dim_tau_a=0.05)
