"""Entity lookup: mapping example strings to candidate entities (§6.1).

Users provide single-column values (names, titles).  The inverted column
index identifies which entity display attribute contains *all* of the
examples; each example then maps to one or more candidate entity keys
(ambiguity is resolved by :mod:`repro.core.disambiguation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..relational.errors import QueryError
from .adb import AbductionReadyDatabase
from .metadata import EntitySpec


@dataclass
class EntityMatch:
    """All candidate entities for one example set on one entity type."""

    entity: EntitySpec
    candidates: List[List[Any]]
    """Per example (in input order): the candidate entity keys."""

    @property
    def is_ambiguous(self) -> bool:
        """Whether at least one example maps to several entities."""
        return any(len(options) > 1 for options in self.candidates)

    def combination_count(self) -> int:
        """Number of complete assignments (product of candidate counts)."""
        total = 1
        for options in self.candidates:
            total *= len(options)
        return total


class ExampleLookupError(QueryError):
    """No entity attribute contains every provided example."""


def lookup_examples(
    adb: AbductionReadyDatabase, examples: Sequence[str]
) -> List[EntityMatch]:
    """Candidate entity types (+ per-example entity keys) for the examples.

    Returns one :class:`EntityMatch` per display attribute that contains
    all examples; raises :class:`ExampleLookupError` if none does.
    """
    examples = list(examples)
    if not examples:
        raise ExampleLookupError("no examples provided")
    unique = list(dict.fromkeys(examples))
    columns = adb.inverted.candidate_columns(unique)
    matches: List[EntityMatch] = []
    for table, column in columns:
        spec = _entity_for_display(adb, table, column)
        if spec is None:
            continue
        relation = adb.db.relation(table)
        key_store = relation.column(spec.key)
        candidates = []
        for example in unique:
            rows = adb.inverted.matches_in(example, table, column)
            candidates.append([key_store[rid] for rid in rows])
        matches.append(EntityMatch(entity=spec, candidates=candidates))
    if not matches:
        raise ExampleLookupError(
            f"no entity attribute contains all {len(unique)} examples"
        )
    return matches


def _entity_for_display(
    adb: AbductionReadyDatabase, table: str, column: str
) -> EntitySpec | None:
    for spec in adb.metadata.entities:
        if spec.table == table and spec.display == column:
            return spec
    return None
