"""End-to-end SQuID system facade (Figure 4).

``SquidSystem.build`` runs the offline module once (αDB construction);
``discover`` then performs the online pipeline per example set:

1. entity lookup via the inverted column index,
2. entity disambiguation,
3. semantic context discovery,
4. query abduction (Algorithm 1),
5. query construction (SPJ over the αDB, plus the equivalent SPJAI form
   over the original schema).

The stages themselves live in :mod:`repro.core.pipeline`; this facade
drives them sequentially.  When the examples match several entity types
(several candidate base queries), each base query is abduced and the one
with the highest unnormalised log posterior wins; valid base queries
carry equal priors (Section 4.3).  For batch workloads (many example
sets, optional worker fan-out) use :meth:`SquidSystem.session` /
:class:`~repro.core.session.DiscoverySession`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..relational.database import Database
from ..sql.ast import AnyQuery
from ..sql.engine import CachingBackend, ExecutionBackend, create_backend
from ..sql.result import ResultSet
from .adb import AbductionReadyDatabase
from .config import SquidConfig
from .metadata import AdbMetadata
from .pipeline import (
    DiscoveryResult,
    DiscoveryTimings,
    discover_sequential,
    prune_redundant,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import DiscoverySession

__all__ = ["DiscoveryResult", "DiscoveryTimings", "SquidSystem"]


class SquidSystem:
    """The full system: offline αDB plus the online discovery pipeline.

    Every query the system issues — pruning probes, result
    materialisation, evaluation reruns — goes through one pluggable
    :class:`~repro.sql.engine.ExecutionBackend`, wrapped in the shared
    query-result cache when the configuration enables it.
    """

    def __init__(
        self,
        adb: AbductionReadyDatabase,
        backend: Optional[str] = None,
        cache_size: Optional[int] = None,
    ) -> None:
        self.adb = adb
        name = backend or adb.config.backend
        size = adb.config.query_cache_size if cache_size is None else cache_size
        self._backend = create_backend(
            name,
            adb.db,
            cache_size=size,
            shards=adb.config.shards,
            shard_min_rows=adb.config.shard_min_rows,
            use_estimator=adb.config.estimator,
            sample_budget=adb.config.estimator_sample_budget,
            guard_factor=adb.config.estimator_guard_factor,
            analyze=adb.config.analyze,
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: Database,
        metadata: AdbMetadata,
        config: Optional[SquidConfig] = None,
        backend: Optional[str] = None,
    ) -> "SquidSystem":
        """Run the offline module and return a ready system."""
        adb = AbductionReadyDatabase.build(database, metadata, config)
        return cls(adb, backend=backend)

    @property
    def config(self) -> SquidConfig:
        """The active configuration."""
        return self.adb.config

    @property
    def backend(self) -> ExecutionBackend:
        """The active execution backend (possibly cache-wrapped)."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the engine executing this system's queries."""
        return self._backend.name

    # ------------------------------------------------------------------
    # online pipeline
    # ------------------------------------------------------------------
    def discover(
        self,
        examples: Sequence[str],
        config: Optional[SquidConfig] = None,
    ) -> DiscoveryResult:
        """Abduce the most likely query intent for the given examples.

        Drives the staged pipeline sequentially: one shared lookup, then
        the per-candidate stages for every candidate base query, keeping
        the winner by log posterior.
        """
        config = config or self.adb.config
        return discover_sequential(self.adb, self._backend, examples, config)

    def session(
        self,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
        share_probes: bool = True,
        persistent_pool: Optional[bool] = None,
    ) -> "DiscoverySession":
        """A batch discovery session over this system (see
        :class:`~repro.core.session.DiscoverySession`)."""
        from .session import DiscoverySession

        return DiscoverySession(
            self,
            jobs=jobs,
            executor=executor,
            share_probes=share_probes,
            persistent_pool=persistent_pool,
        )

    def _prune_redundant(self, entity, selected):
        """Occam's-razor pruning pass (delegates to the pipeline stage
        helper; kept as a method for callers probing it directly)."""
        return prune_redundant(self.adb, self._backend, entity, selected)

    # ------------------------------------------------------------------
    # execution helpers
    # ------------------------------------------------------------------
    def execute(self, query: AnyQuery, *, cached: bool = True) -> ResultSet:
        """Run any query against the αDB through the active backend.

        ``cached=False`` bypasses the shared result cache (timing
        measurements want cold executions).
        """
        if not cached and isinstance(self._backend, CachingBackend):
            return self._backend.execute_uncached(query)
        return self._backend.execute(query)

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Hit/miss/eviction counters of the query-result cache (None if
        caching is disabled)."""
        if isinstance(self._backend, CachingBackend):
            return self._backend.cache.stats()
        return None

    def backend_stats(self) -> Optional[Dict[str, int]]:
        """Engine-level counters (e.g. the dispatch backend's per-engine
        routing decisions); None when the engine keeps none."""
        backend = self._backend
        if isinstance(backend, CachingBackend):
            backend = backend.inner
        stats = getattr(backend, "stats", None)
        return stats() if callable(stats) else None

    def warm_backend(self) -> None:
        """Prime engine-held caches (e.g. dispatch's stamped
        cardinalities); a no-op for engines without a ``warm`` hook."""
        backend = self._backend
        if isinstance(backend, CachingBackend):
            backend = backend.inner
        warm = getattr(backend, "warm", None)
        if callable(warm):
            warm()

    def result_keys(self, result: DiscoveryResult) -> set:
        """Entity keys returned by the abduced query."""
        rows = self._backend.execute(result.keyed_query).rows
        return {row[0] for row in rows}

    def result_values(self, result: DiscoveryResult) -> List[Any]:
        """Display-attribute values returned by the abduced query."""
        return self._backend.execute(result.query).single_column()
