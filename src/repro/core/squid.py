"""End-to-end SQuID system facade (Figure 4).

``SquidSystem.build`` runs the offline module once (αDB construction);
``discover`` then performs the online pipeline per example set:

1. entity lookup via the inverted column index,
2. entity disambiguation,
3. semantic context discovery,
4. query abduction (Algorithm 1),
5. query construction (SPJ over the αDB, plus the equivalent SPJAI form
   over the original schema).

When the examples match several entity types (several candidate base
queries), each base query is abduced and the one with the highest
unnormalised log posterior wins; valid base queries carry equal priors
(Section 4.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..relational.database import Database
from ..sql.ast import AnyQuery, Query
from ..sql.engine import CachingBackend, ExecutionBackend, create_backend
from ..sql.formatter import format_query
from ..sql.result import ResultSet
from .abduction import AbductionResult, abduce
from .adb import AbductionReadyDatabase
from .base_query import build_adb_query, build_base_query, build_original_query
from .config import SquidConfig
from .context import ContextSet, discover_contexts
from .disambiguation import DisambiguationResult, disambiguate
from .lookup import EntityMatch, ExampleLookupError, lookup_examples
from .metadata import AdbMetadata, EntitySpec


@dataclass
class DiscoveryTimings:
    """Per-stage wall-clock timings of one discovery call."""

    lookup_seconds: float = 0.0
    disambiguation_seconds: float = 0.0
    context_seconds: float = 0.0
    abduction_seconds: float = 0.0
    construction_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """End-to-end query intent discovery time."""
        return (
            self.lookup_seconds
            + self.disambiguation_seconds
            + self.context_seconds
            + self.abduction_seconds
            + self.construction_seconds
        )

    def accumulate(self, other: "DiscoveryTimings") -> None:
        """Add ``other``'s per-stage times (lookup excluded: it is shared
        across candidate base queries and counted once by the caller)."""
        self.disambiguation_seconds += other.disambiguation_seconds
        self.context_seconds += other.context_seconds
        self.abduction_seconds += other.abduction_seconds
        self.construction_seconds += other.construction_seconds


@dataclass
class DiscoveryResult:
    """Everything SQuID inferred for one example set."""

    entity: EntitySpec
    entity_keys: List[Any]
    contexts: ContextSet
    abduction: AbductionResult
    query: Query
    """The abduced SPJ query over the αDB (Q5 form), selecting the
    display attribute."""

    keyed_query: Query
    """Same query additionally projecting the entity key (for metrics)."""

    original_query: AnyQuery
    """Equivalent SPJAI query over the original schema (Q4 form)."""

    timings: DiscoveryTimings
    """Wall-clock of *this* candidate's pipeline (lookup is shared)."""

    disambiguation: Optional[DisambiguationResult] = None
    log_posterior: float = 0.0

    aggregate_timings: Optional[DiscoveryTimings] = None
    """Set on the winning result only: total time across *all* candidate
    base queries, including the ones that lost the posterior comparison."""

    @property
    def sql(self) -> str:
        """SQL text of the abduced αDB query."""
        return format_query(self.query)

    @property
    def original_sql(self) -> str:
        """SQL text of the original-schema SPJAI rendering."""
        return format_query(self.original_query)

    def explain(self) -> str:
        """Human-readable abduction report (filters kept vs dropped)."""
        lines = [f"entity: {self.entity.table} ({len(self.entity_keys)} examples)"]
        for decision in self.abduction.decisions:
            verdict = "KEEP" if decision.included else "drop"
            filt = decision.filt
            lines.append(
                f"  [{verdict}] {filt.notation()} "
                f"ψ={filt.selectivity:.4f} "
                f"Pr(φ)={decision.prior.prior:.4f} "
                f"include={decision.include_score:.3e} "
                f"exclude={decision.exclude_score:.3e}"
            )
        return "\n".join(lines)


class SquidSystem:
    """The full system: offline αDB plus the online discovery pipeline.

    Every query the system issues — pruning probes, result
    materialisation, evaluation reruns — goes through one pluggable
    :class:`~repro.sql.engine.ExecutionBackend`, wrapped in the shared
    query-result cache when the configuration enables it.
    """

    def __init__(
        self,
        adb: AbductionReadyDatabase,
        backend: Optional[str] = None,
        cache_size: Optional[int] = None,
    ) -> None:
        self.adb = adb
        name = backend or adb.config.backend
        size = adb.config.query_cache_size if cache_size is None else cache_size
        self._backend = create_backend(name, adb.db, cache_size=size)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: Database,
        metadata: AdbMetadata,
        config: Optional[SquidConfig] = None,
        backend: Optional[str] = None,
    ) -> "SquidSystem":
        """Run the offline module and return a ready system."""
        adb = AbductionReadyDatabase.build(database, metadata, config)
        return cls(adb, backend=backend)

    @property
    def config(self) -> SquidConfig:
        """The active configuration."""
        return self.adb.config

    @property
    def backend(self) -> ExecutionBackend:
        """The active execution backend (possibly cache-wrapped)."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the engine executing this system's queries."""
        return self._backend.name

    # ------------------------------------------------------------------
    # online pipeline
    # ------------------------------------------------------------------
    def discover(
        self,
        examples: Sequence[str],
        config: Optional[SquidConfig] = None,
    ) -> DiscoveryResult:
        """Abduce the most likely query intent for the given examples."""
        config = config or self.adb.config
        examples = list(examples)
        if len(examples) > config.max_example_warn:
            raise ValueError(
                f"{len(examples)} examples provided; QBE expects few "
                f"(cap: {config.max_example_warn})"
            )
        start = time.perf_counter()
        matches = lookup_examples(self.adb, examples)
        lookup_seconds = time.perf_counter() - start

        # Each candidate base query gets its own timings (lookup is shared
        # and attributed to every candidate); the aggregate over all
        # candidates — including the losers — is reported separately.
        aggregate = DiscoveryTimings(lookup_seconds=lookup_seconds)
        best: Optional[DiscoveryResult] = None
        for match in matches:
            timings = DiscoveryTimings(lookup_seconds=lookup_seconds)
            candidate = self._discover_for_match(match, config, timings)
            aggregate.accumulate(timings)
            if best is None or candidate.log_posterior > best.log_posterior:
                best = candidate
        assert best is not None
        best.aggregate_timings = aggregate
        return best

    def _discover_for_match(
        self,
        match: EntityMatch,
        config: SquidConfig,
        timings: DiscoveryTimings,
    ) -> DiscoveryResult:
        start = time.perf_counter()
        resolution = disambiguate(self.adb, match, config)
        timings.disambiguation_seconds += time.perf_counter() - start
        keys = resolution.keys

        start = time.perf_counter()
        contexts = discover_contexts(self.adb, match.entity.table, keys, config)
        timings.context_seconds += time.perf_counter() - start

        start = time.perf_counter()
        abduction = abduce(contexts.filters, len(keys), config)
        timings.abduction_seconds += time.perf_counter() - start

        start = time.perf_counter()
        selected = abduction.selected
        if config.prune_redundant_filters and len(selected) > 1:
            selected = self._prune_redundant(match.entity, selected)
        query = build_adb_query(self.adb, match.entity, selected)
        keyed = build_adb_query(self.adb, match.entity, selected, select_key=True)
        original = build_original_query(self.adb, match.entity, selected)
        timings.construction_seconds += time.perf_counter() - start

        return DiscoveryResult(
            entity=match.entity,
            entity_keys=keys,
            contexts=contexts,
            abduction=abduction,
            query=query,
            keyed_query=keyed,
            original_query=original,
            timings=timings,
            disambiguation=resolution,
            log_posterior=abduction.log_posterior(),
        )

    def _prune_redundant(self, entity, selected):
        """Occam's-razor pass: drop filters that do not change the result.

        Filters are probed most-common-first (descending selectivity): a
        broad filter subsumed by a sharper one contributes nothing to the
        result set and only inflates the query.  Each probe is one αDB
        query, so the pass costs O(|ϕ|) executions.
        """
        current = list(selected)
        baseline = self._backend.execute(
            build_adb_query(self.adb, entity, current, select_key=True)
        ).as_set()
        for filt in sorted(selected, key=lambda f: -f.selectivity):
            if len(current) <= 1:
                break
            trial = [f for f in current if f is not filt]
            result = self._backend.execute(
                build_adb_query(self.adb, entity, trial, select_key=True)
            ).as_set()
            if result == baseline:
                current = trial
        return current

    # ------------------------------------------------------------------
    # execution helpers
    # ------------------------------------------------------------------
    def execute(self, query: AnyQuery, *, cached: bool = True) -> ResultSet:
        """Run any query against the αDB through the active backend.

        ``cached=False`` bypasses the shared result cache (timing
        measurements want cold executions).
        """
        if not cached and isinstance(self._backend, CachingBackend):
            return self._backend.execute_uncached(query)
        return self._backend.execute(query)

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Hit/miss counters of the query-result cache (None if disabled)."""
        if isinstance(self._backend, CachingBackend):
            return self._backend.cache.stats()
        return None

    def result_keys(self, result: DiscoveryResult) -> set:
        """Entity keys returned by the abduced query."""
        rows = self._backend.execute(result.keyed_query).rows
        return {row[0] for row in rows}

    def result_values(self, result: DiscoveryResult) -> List[Any]:
        """Display-attribute values returned by the abduced query."""
        return self._backend.execute(result.query).single_column()
