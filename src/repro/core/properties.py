"""Semantic properties, property families, filters, and contexts (Section 3).

A *semantic property* is the triple p = ⟨A, V, θ⟩: attribute A, value (or
value range) V, and association strength θ (⊥ for basic properties).  A
*property family* groups all properties over the same attribute of the same
entity and carries the SQL plumbing needed to turn a property into
predicates; a *filter* φp is the structured-language representation of a
property; a *semantic context* x = (p, |E|) records that p was observed
across an example set of a given size (Section 4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union


class FamilyKind(enum.Enum):
    """How a property family attaches to its entity."""

    DIRECT_CATEGORICAL = "direct_categorical"
    """Categorical attribute stored on the entity table (e.g. gender)."""

    DIRECT_NUMERIC = "direct_numeric"
    """Numeric attribute stored on the entity table (e.g. age, year)."""

    FK_DIM = "fk_dim"
    """FK attribute of the entity pointing at a dimension (person.country_id)."""

    FACT_DIM = "fact_dim"
    """Dimension associated through one fact table (movie —movietogenre→
    genre); a *basic* property: the entity either has the value or not."""

    FACT_ATTR = "fact_attr"
    """Attribute stored on an associating table itself
    (academics —research→ research.interest, the paper's Example 1.1);
    a *basic* property reached through one key--foreign-key join."""

    DERIVED_ENTITY = "derived_entity"
    """Entity-valued association through one fact table with a count
    (person —castinfo→ movie), optionally qualified (e.g. by role)."""

    DERIVED_DIM = "derived_dim"
    """Depth-2 derived property: aggregate of a basic property of an
    associated entity (persontogenre: #movies of each genre per person)."""

    @property
    def is_basic(self) -> bool:
        """Basic properties have θ = ⊥ (Section 3.1)."""
        return self in (
            FamilyKind.DIRECT_CATEGORICAL,
            FamilyKind.DIRECT_NUMERIC,
            FamilyKind.FK_DIM,
            FamilyKind.FACT_DIM,
            FamilyKind.FACT_ATTR,
        )

    @property
    def is_derived(self) -> bool:
        """Derived properties carry an association strength θ."""
        return not self.is_basic

    @property
    def is_numeric(self) -> bool:
        """Whether property values are numeric ranges."""
        return self is FamilyKind.DIRECT_NUMERIC


@dataclass(frozen=True)
class PropertyFamily:
    """All semantic properties over one attribute of one entity.

    The SQL plumbing fields describe how to reach the attribute from the
    entity table; unused fields stay empty for a given kind.
    """

    entity: str
    kind: FamilyKind
    attribute: str
    """Human-readable label, e.g. ``gender``, ``genre``, ``movie[Actor]``."""

    column: str = ""
    """DIRECT_*: the attribute column on the entity table.
    DERIVED_DIM over a raw attribute: the value column of the αDB relation."""

    dim_table: str = ""
    dim_key: str = ""
    dim_label: str = ""
    """Dimension (or entity) table supplying values, with key and label."""

    fk_column: str = ""
    """FK_DIM: the FK column on the entity table."""

    fact_table: str = ""
    fact_entity_col: str = ""
    fact_dim_col: str = ""
    """FACT_DIM: fact table plus its FK columns to entity and dimension."""

    derived_table: str = ""
    derived_entity_col: str = ""
    derived_value_col: str = ""
    """DERIVED_*: the materialised αDB relation and its columns."""

    mid_table: str = ""
    """DERIVED_DIM: the associated entity the property aggregates over."""

    value_is_ref: bool = False
    """Whether stored values are keys into ``dim_table`` (vs raw values)."""

    @property
    def key(self) -> Tuple[str, str]:
        """Stable identity of the family: (entity, attribute)."""
        return (self.entity, self.attribute)

    def __str__(self) -> str:
        return f"{self.entity}.{self.attribute}[{self.kind.value}]"


#: V in ⟨A, V, θ⟩: a scalar for categorical properties, an inclusive
#: (low, high) pair for numeric ranges, or a frozenset for the optional
#: categorical disjunction of footnote 7.
PropertyValue = Union[int, float, str, bool, Tuple[Any, Any], frozenset]


@dataclass(frozen=True)
class SemanticProperty:
    """p = ⟨A, V, θ⟩ over a concrete family.

    ``theta`` is ``None`` (⊥) for basic properties.  For value-reference
    families ``value`` is a dimension key and ``label`` its readable form.
    """

    family: PropertyFamily
    value: PropertyValue
    theta: Optional[float] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.family.kind.is_basic and self.theta is not None:
            raise ValueError("basic properties have theta = ⊥")
        if self.family.kind.is_derived and self.theta is None:
            raise ValueError("derived properties require theta")
        if not self.label:
            display = self.display_value()
            object.__setattr__(self, "label", display)

    def display_value(self) -> str:
        """Readable form of V (dimension label or the raw value)."""
        if self.label:
            return self.label
        if isinstance(self.value, tuple):
            low, high = self.value
            return f"[{low}, {high}]"
        if isinstance(self.value, frozenset):
            return "{" + ", ".join(sorted(map(str, self.value))) + "}"
        return str(self.value)

    def notation(self) -> str:
        """The paper's ⟨A, V, θ⟩ notation, for logs and examples."""
        theta = "⊥" if self.theta is None else f"{self.theta:g}"
        return f"⟨{self.family.attribute}, {self.display_value()}, {theta}⟩"


@dataclass(frozen=True)
class Filter:
    """A semantic property filter φp (Section 3.1).

    Carries the statistics the abduction model needs alongside the
    property itself: the filter's selectivity ψ(φ) under the base query
    and its domain coverage (Appendix A).
    """

    prop: SemanticProperty
    selectivity: float
    domain_coverage: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError(f"selectivity out of range: {self.selectivity}")
        if not 0.0 <= self.domain_coverage <= 1.0 + 1e-9:
            raise ValueError(f"domain coverage out of range: {self.domain_coverage}")

    @property
    def family(self) -> PropertyFamily:
        """The filter's property family."""
        return self.prop.family

    @property
    def theta(self) -> Optional[float]:
        """Association strength of the underlying property."""
        return self.prop.theta

    def notation(self) -> str:
        """φ⟨A, V, θ⟩ rendering, for logs and examples."""
        return f"φ{self.prop.notation()}"


@dataclass(frozen=True)
class SemanticContext:
    """x = (p, |E|): property p observed across all |E| examples."""

    prop: SemanticProperty
    example_count: int

    def __post_init__(self) -> None:
        if self.example_count < 1:
            raise ValueError("a context needs at least one example")

    def notation(self) -> str:
        """The paper's (p, |E|) rendering."""
        return f"({self.prop.notation()}, {self.example_count})"
