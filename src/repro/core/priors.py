"""Filter-event priors: Pr(φ) = ρ · δ(φ) · α(φ) · λ(φ)  (§4.2.2, App. A/B).

* ρ — base prior, common to all filters;
* δ(φ) — domain selectivity impact: penalises filters covering a large
  fraction of their attribute's domain,
  ``δ = 1 / max(1, coverage/η)^γ``;
* α(φ) — association strength impact: derived filters with θ below the
  threshold τa are insignificant (α = 0), all others get α = 1;
* λ(φ) — outlier impact: a derived filter earns λ = 1 only when the
  association-strength distribution of its family is skewed beyond τs
  *and* its own θ is an outlier (mean + k·stddev rule); basic filters
  always get λ = 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .config import SquidConfig
from .properties import FamilyKind, Filter


def domain_selectivity_impact(filt: Filter, config: SquidConfig) -> float:
    """δ(φ): 1 below coverage threshold η, decaying with exponent γ above."""
    coverage = filt.domain_coverage
    if config.gamma == 0.0 or coverage <= 0.0:
        return 1.0
    return 1.0 / max(1.0, coverage / config.eta) ** config.gamma


def association_strength_impact(filt: Filter, config: SquidConfig) -> float:
    """α(φ): 0 for derived filters with θ below their τa, else 1."""
    theta = filt.theta
    if theta is None:
        return 1.0
    threshold = (
        config.entity_dim_tau_a
        if filt.family.kind is FamilyKind.DERIVED_ENTITY
        else config.tau_a
    )
    return 0.0 if theta < threshold else 1.0


def sample_skewness(values: Sequence[float]) -> float:
    """Sample skewness with the paper's formula (Appendix B).

    ``skew = n * Σ (a_i - mean)^3 / (s^3 (n-1)(n-2))`` with the sample
    standard deviation s.  Undefined (returns 0.0) for n < 3 or zero
    spread.
    """
    n = len(values)
    if n < 3:
        return 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    if variance <= 0.0:
        return 0.0
    s = math.sqrt(variance)
    denominator = s**3 * (n - 1) * (n - 2)
    if denominator == 0.0 or not math.isfinite(denominator):
        return 0.0  # underflow/overflow: no usable skew signal
    third = sum((v - mean) ** 3 for v in values)
    return n * third / denominator


def is_outlier(theta: float, values: Sequence[float], k: float) -> bool:
    """Mean/standard-deviation outlier rule: ``theta - mean > k * s``."""
    n = len(values)
    if n < 3:
        return True  # skewness undefined: treat all elements as outliers
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    s = math.sqrt(variance) if variance > 0 else 0.0
    return (theta - mean) > k * s


def outlier_impact(
    filt: Filter, family_thetas: Sequence[float], config: SquidConfig
) -> float:
    """λ(φ) per Appendix B.

    Basic filters always get λ = 1.  Derived filters over *entity-valued*
    dimensions also get λ = 1: their strengths are inherently ≈1 (an actor
    appears in a movie once), so skew within the family carries no signal
    — the informative part is the shared association itself (see
    DESIGN.md §5).  Remaining derived filters require a skewed family
    distribution and an outlying θ.
    """
    if filt.theta is None:
        return 1.0
    if filt.family.kind is FamilyKind.DERIVED_ENTITY:
        return 1.0
    thetas = list(family_thetas)
    if len(thetas) < 3:
        return 1.0  # skewness undefined: all elements treated as outliers
    if sample_skewness(thetas) <= config.tau_s:
        return 0.0
    return 1.0 if is_outlier(filt.theta, thetas, config.outlier_k) else 0.0


@dataclass(frozen=True)
class PriorBreakdown:
    """All factors of one filter's prior, for inspection and tests."""

    rho: float
    delta: float
    alpha: float
    lam: float

    @property
    def prior(self) -> float:
        """Pr(φ) = ρ · δ · α · λ, clamped into [0, 1)."""
        return min(0.999999, self.rho * self.delta * self.alpha * self.lam)


def filter_prior(
    filt: Filter,
    family_thetas: Sequence[float],
    config: SquidConfig,
) -> PriorBreakdown:
    """Compute every factor of Pr(φ) for one filter.

    ``family_thetas`` are the association strengths of all *discovered*
    filters in the same family (Figure 8's Θ_A distribution).
    """
    return PriorBreakdown(
        rho=config.rho,
        delta=domain_selectivity_impact(filt, config),
        alpha=association_strength_impact(filt, config),
        lam=outlier_impact(filt, family_thetas, config),
    )


def family_theta_map(filters: Sequence[Filter]) -> Dict[Tuple[str, str], List[float]]:
    """Group discovered association strengths by family key.

    This materialises the Θ_A distributions of Figure 8: for each derived
    family, the strengths of every filter the example set produced.
    """
    out: Dict[Tuple[str, str], List[float]] = {}
    for filt in filters:
        if filt.theta is not None:
            out.setdefault(filt.family.key, []).append(filt.theta)
    return out
