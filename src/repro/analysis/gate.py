"""The pre-execution verification gate over any execution backend.

:class:`AnalyzingBackend` decorates an :class:`ExecutionBackend` the way
:class:`CachingBackend` does, but instead of memoizing *results* it
memoizes *verdicts*: before a query reaches the engine it runs
:func:`repro.analysis.plan.verify_query` against the live schema (plus
the dispatch route's statistics provider when one is available), raises
:class:`PlanVerificationError` on any error-severity finding, and counts
warnings without blocking.  Verdicts are cached per
``(formatted SQL, relation stamps)`` exactly like query results, so the
steady-state cost of the gate on a warm plan is one dict probe.

Wrap order matters: ``CachingBackend(AnalyzingBackend(engine))`` keeps
the result cache outermost so cache *hits* skip re-verification too,
while ``SquidSystem.backend_stats()`` still reaches the gate counters
through the ``inner`` chain.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..sql.ast import AnyQuery
from ..sql.engine.base import CacheStamp, ExecutionBackend, tables_of
from ..sql.estimator.sampler import StatisticsProvider
from ..sql.formatter import format_query
from ..sql.result import ResultSet
from ..relational.errors import UnknownTableError
from .diagnostics import Diagnostic, PlanVerificationError
from .plan import verify_query

#: Bound on the verdict memo (verdicts are tiny; this is ample).
DEFAULT_VERDICT_MEMO = 512


class AnalyzingBackend(ExecutionBackend):
    """Decorator that statically verifies every query before execution.

    ``statistics`` is an optional shared
    :class:`~repro.sql.estimator.sampler.StatisticsProvider` (the
    dispatch route passes its own so the gate and the router reuse one
    stamped memo); when None the gate builds a private provider, and the
    PLAN007 domain check still only fires on exact statistics.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        *,
        statistics: Optional[StatisticsProvider] = None,
        memo_entries: int = DEFAULT_VERDICT_MEMO,
    ) -> None:
        super().__init__(inner.db)
        self.inner = inner
        self.name = inner.name
        self.statistics = (
            statistics
            if statistics is not None
            else StatisticsProvider(inner.db)
        )
        self._memo_entries = memo_entries
        # formatted SQL -> (stamp, diagnostics); mutated under _lock.
        self._verdicts: "OrderedDict[str, Tuple[CacheStamp, Tuple[Diagnostic, ...]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.analyzed = 0
        self.memo_hits = 0
        self.rejected = 0
        self.warned = 0

    def _verify(self, query: AnyQuery) -> Tuple[Diagnostic, ...]:
        """The memoized verdict for ``query`` against the current stamps."""
        key = format_query(query)
        try:
            stamp: Optional[CacheStamp] = tuple(
                (name, self.db.relation(name).uid, self.db.relation(name).version)
                for name in tables_of(query)
            )
        except UnknownTableError:
            # Unverifiable stamp == unknown table: verify uncached so the
            # PLAN001 rejection is raised (and re-raised on every retry).
            stamp = None
        if stamp is not None:
            with self._lock:
                entry = self._verdicts.get(key)
                if entry is not None and entry[0] == stamp:
                    self.memo_hits += 1
                    self._verdicts.move_to_end(key)
                    return entry[1]
        diagnostics = tuple(
            verify_query(self.db, query, statistics=self.statistics)
        )
        with self._lock:
            self.analyzed += 1
            if any(not d.is_error for d in diagnostics):
                self.warned += 1
            if stamp is not None:
                self._verdicts[key] = (stamp, diagnostics)
                self._verdicts.move_to_end(key)
                while len(self._verdicts) > self._memo_entries:
                    self._verdicts.popitem(last=False)
        return diagnostics

    def execute(self, query: AnyQuery) -> ResultSet:
        diagnostics = self._verify(query)
        if any(d.is_error for d in diagnostics):
            with self._lock:
                self.rejected += 1
            raise PlanVerificationError(diagnostics)
        return self.inner.execute(query)

    def warm(self) -> Optional[int]:
        """Forward cache-priming to the inner engine (dispatch's stamped
        cardinalities); None for engines without a ``warm`` hook."""
        warm = getattr(self.inner, "warm", None)
        return warm() if callable(warm) else None

    def stats(self) -> Dict[str, int]:
        """Gate counters merged over the inner engine's stats."""
        inner_stats = getattr(self.inner, "stats", None)
        merged: Dict[str, int] = dict(inner_stats()) if callable(inner_stats) else {}
        with self._lock:
            merged.update(
                analyze_checked=self.analyzed,
                analyze_memo_hits=self.memo_hits,
                analyze_rejected=self.rejected,
                analyze_warned=self.warned,
            )
        return merged

    def close(self) -> None:
        with self._lock:
            self._verdicts.clear()
        self.inner.close()
