"""Schema-aware static verification of SPJ(A, intersect) query plans.

:func:`verify_query` checks a :class:`~repro.sql.ast.Query` /
``IntersectQuery`` against a :class:`~repro.relational.database.Database`
schema — and, when a statistics provider is given, against per-column
value domains — *before* any engine executes it.  Every finding is a
:class:`~repro.analysis.diagnostics.Diagnostic` with a stable code:

====== ======== ========================================================
code   severity finding
====== ======== ========================================================
PLAN001 error   FROM references a table the database does not have
PLAN002 error   a column reference names a column its table lacks
PLAN003 error   equi-join between type-incompatible columns
PLAN004 error   predicate value incompatible with the column's type
PLAN005 warning join graph is disconnected (cartesian-product block)
PLAN006 error   predicate conjunction statically unsatisfiable
PLAN007 warning predicate cannot match any current value (exact stats)
PLAN008 warning block exceeds SQLite's 64-join-table limit (chained
                MATERIALIZED CTE compilation engages on that route)
PLAN009 error   GROUP BY projection not functionally determined
PLAN010 error   INTERSECT blocks have type-incompatible columns
====== ======== ========================================================

Severity semantics: *errors* mark queries whose execution is wrong,
engine-dependent, or provably empty from the query text alone — the
pre-execution gate (:class:`~repro.analysis.gate.AnalyzingBackend`)
refuses to run them.  *Warnings* mark hazards that execute fine today
(a cartesian block, a >64-alias star) and data-dependent emptiness.

PLAN007 deliberately fires only on **exact** statistics (columns whose
non-NULL count fits the sample budget, where every derived figure is a
ground truth) — a sampled domain could miss live values, and this check
must never produce a false positive: the differential fuzz harness
asserts a clean verifier verdict on every sampled intent.

INT and FLOAT columns are mutually compatible everywhere (joins,
predicates, INTERSECT positions); every other type only matches itself.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.schema import TableSchema
from ..relational.types import ColumnType
from ..sql.ast import AnyQuery, ColumnRef, IntersectQuery, Op, Query
from .diagnostics import Diagnostic, Severity

#: Stable plan-verifier diagnostic codes (see module docstring).
PLAN_CODES: Tuple[str, ...] = tuple(f"PLAN{i:03d}" for i in range(1, 11))

#: SQLite's hard limit on tables in one join (the >64-alias hazard).
SQLITE_MAX_JOIN_TABLES = 64


def _compatible(a: ColumnType, b: ColumnType) -> bool:
    """Whether two column types can be compared/joined meaningfully."""
    return a is b or (a.is_numeric and b.is_numeric)


def _value_fits(value: Any, ctype: ColumnType) -> bool:
    """Whether one predicate constant is comparable with ``ctype``."""
    if ctype.is_numeric:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if ctype is ColumnType.TEXT:
        return isinstance(value, str)
    if ctype is ColumnType.BOOL:
        return isinstance(value, bool)
    return False  # pragma: no cover - no further types exist


def _lt(a: Any, b: Any) -> Optional[bool]:
    """``a < b`` with unorderable pairs mapped to None (no finding)."""
    try:
        return bool(a < b)
    except TypeError:
        return None


class _BlockVerifier:
    """Runs every per-block check, accumulating diagnostics."""

    def __init__(
        self,
        db: Database,
        block: Query,
        prefix: str,
        statistics: Optional[Any],
        out: List[Diagnostic],
    ) -> None:
        self.db = db
        self.block = block
        self.prefix = prefix
        self.statistics = statistics
        self.out = out
        self.alias_map = block.alias_map()
        # alias -> TableSchema, for aliases whose base table exists
        self.schemas: Dict[str, TableSchema] = {}

    def emit(
        self, code: str, severity: Severity, message: str, span: str
    ) -> None:
        self.out.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                span=f"{self.prefix}{span}",
            )
        )

    # -- reference resolution ------------------------------------------
    def check_tables(self) -> None:
        for i, table in enumerate(self.block.tables):
            if table.name not in self.db:
                self.emit(
                    "PLAN001",
                    Severity.ERROR,
                    f"unknown table {table.name!r} (alias {table.alias!r})",
                    f"tables[{i}]",
                )
            else:
                self.schemas[table.alias] = self.db.relation(table.name).schema

    def _resolve(self, ref: ColumnRef, span: str) -> Optional[ColumnType]:
        """The column's type, or None (emitting PLAN002 if the table is
        known but the column is not; unknown tables already got PLAN001)."""
        schema = self.schemas.get(ref.table)
        if schema is None:
            return None
        if not schema.has_column(ref.column):
            self.emit(
                "PLAN002",
                Severity.ERROR,
                f"table {schema.name!r} (alias {ref.table!r}) has no column "
                f"{ref.column!r}",
                span,
            )
            return None
        return schema.column_type(ref.column)

    def check_columns(self) -> Dict[Tuple[str, str], ColumnType]:
        """Resolve every column reference; returns the resolved types of
        predicate columns keyed by (alias, column)."""
        for i, ref in enumerate(self.block.select):
            self._resolve(ref, f"select[{i}]")
        for i, ref in enumerate(self.block.group_by):
            self._resolve(ref, f"group_by[{i}]")
        resolved: Dict[Tuple[str, str], ColumnType] = {}
        for i, pred in enumerate(self.block.predicates):
            ctype = self._resolve(pred.column, f"predicates[{i}]")
            if ctype is not None:
                resolved[(pred.column.table, pred.column.column)] = ctype
        return resolved

    # -- joins ----------------------------------------------------------
    def check_joins(self) -> None:
        for i, join in enumerate(self.block.joins):
            span = f"joins[{i}]"
            left = self._resolve(join.left, span)
            right = self._resolve(join.right, span)
            if left is None or right is None:
                continue
            if not _compatible(left, right):
                self.emit(
                    "PLAN003",
                    Severity.ERROR,
                    f"join {join} compares {left.value} with {right.value}",
                    span,
                )

    def check_connectivity(self) -> None:
        aliases = [t.alias for t in self.block.tables]
        if len(aliases) < 2:
            return
        parent = {alias: alias for alias in aliases}

        def find(a: str) -> str:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for join in self.block.joins:
            la, ra = join.left.table, join.right.table
            if la in parent and ra in parent:
                parent[find(la)] = find(ra)
        components = sorted({find(a) for a in aliases})
        if len(components) > 1:
            self.emit(
                "PLAN005",
                Severity.WARNING,
                f"join graph splits into {len(components)} components "
                f"(roots {components}): the block is a cartesian product",
                "joins",
            )

    # -- predicates -----------------------------------------------------
    def check_predicate_types(
        self, resolved: Dict[Tuple[str, str], ColumnType]
    ) -> Dict[Tuple[str, str], ColumnType]:
        """PLAN004; returns the subset of columns whose predicates all
        type-check (interval reasoning is meaningless on the rest)."""
        clean = dict(resolved)
        for i, pred in enumerate(self.block.predicates):
            key = (pred.column.table, pred.column.column)
            ctype = resolved.get(key)
            if ctype is None:
                continue
            if pred.op is Op.BETWEEN:
                values: Sequence[Any] = list(pred.value)  # type: ignore[arg-type]
            elif pred.op is Op.IN:
                values = sorted(pred.value, key=repr)  # type: ignore[arg-type]
            else:
                values = [pred.value]
            bad = [v for v in values if not _value_fits(v, ctype)]
            if bad:
                self.emit(
                    "PLAN004",
                    Severity.ERROR,
                    f"{pred.op.value} predicate on {pred.column} compares "
                    f"{ctype.value} column with {bad[0]!r} "
                    f"({type(bad[0]).__name__})",
                    f"predicates[{i}]",
                )
                clean.pop(key, None)
        return clean

    def check_satisfiability(
        self, typed: Dict[Tuple[str, str], ColumnType]
    ) -> None:
        """PLAN006: per-column interval reasoning over the conjunction."""
        by_column: Dict[Tuple[str, str], List[Tuple[int, Any]]] = {}
        for i, pred in enumerate(self.block.predicates):
            key = (pred.column.table, pred.column.column)
            if key in typed:
                by_column.setdefault(key, []).append((i, pred))
        for key, preds in by_column.items():
            eqs: List[Any] = []
            lowers: List[Any] = []
            uppers: List[Any] = []
            in_sets: List[frozenset] = []
            spans = [f"predicates[{i}]" for i, _ in preds]
            for i, pred in preds:
                if pred.op is Op.EQ:
                    eqs.append(pred.value)
                elif pred.op is Op.GE:
                    lowers.append(pred.value)
                elif pred.op is Op.LE:
                    uppers.append(pred.value)
                elif pred.op is Op.BETWEEN:
                    low, high = pred.value  # type: ignore[misc]
                    lowers.append(low)
                    uppers.append(high)
                elif pred.op is Op.IN:
                    in_sets.append(frozenset(pred.value))  # type: ignore[arg-type]
            reason = self._conjunction_conflict(eqs, lowers, uppers, in_sets)
            if reason is not None:
                alias, column = key
                self.emit(
                    "PLAN006",
                    Severity.ERROR,
                    f"predicates on {alias}.{column} are unsatisfiable: "
                    f"{reason}",
                    spans[0],
                )
        having = self.block.having
        if having is not None and having.value < 1:
            if having.op in (Op.EQ, Op.LE):
                self.emit(
                    "PLAN006",
                    Severity.ERROR,
                    f"HAVING count(*) {having.op.value} {having.value} can "
                    "never hold (every group has at least one row)",
                    "having",
                )

    @staticmethod
    def _conjunction_conflict(
        eqs: List[Any],
        lowers: List[Any],
        uppers: List[Any],
        in_sets: List[frozenset],
    ) -> Optional[str]:
        """Why the conjunction is empty, or None if it may be satisfiable."""
        for in_set in in_sets:
            if not in_set:
                return "IN over an empty value set"
        for first in eqs[1:]:
            if _lt(eqs[0], first) or _lt(first, eqs[0]):
                return f"equality to both {eqs[0]!r} and {first!r}"
        low = None
        for bound in lowers:
            if low is None or _lt(low, bound):
                low = bound
        up = None
        for bound in uppers:
            if up is None or _lt(bound, up):
                up = bound
        if low is not None and up is not None and _lt(up, low):
            return f"empty range [{low!r}, {up!r}]"
        for eq in eqs:
            if (low is not None and _lt(eq, low)) or (
                up is not None and _lt(up, eq)
            ):
                return f"equality to {eq!r} outside range"
            for in_set in in_sets:
                if eq not in in_set:
                    return f"equality to {eq!r} not in IN set"
        if in_sets:
            members = set(in_sets[0])
            for in_set in in_sets[1:]:
                members &= in_set
            if not members:
                return "IN sets have no common member"
            surviving = [
                m
                for m in members
                if not (low is not None and _lt(m, low))
                and not (up is not None and _lt(up, m))
            ]
            if not surviving:
                return "no IN member falls inside the range"
        return None

    def check_domains(self, typed: Dict[Tuple[str, str], ColumnType]) -> None:
        """PLAN007: exact-statistics emptiness (never fires on samples)."""
        if self.statistics is None:
            return
        for i, pred in enumerate(self.block.predicates):
            key = (pred.column.table, pred.column.column)
            if key not in typed:
                continue
            stats = self.statistics.column(
                self.alias_map[pred.column.table], pred.column.column
            )
            if not stats.exact or stats.non_null == 0:
                continue
            reason = self._domain_conflict(pred, stats)
            if reason is not None:
                self.emit(
                    "PLAN007",
                    Severity.WARNING,
                    f"{pred.op.value} predicate on {pred.column} matches "
                    f"no current value: {reason}",
                    f"predicates[{i}]",
                )

    @staticmethod
    def _domain_conflict(pred: Any, stats: Any) -> Optional[str]:
        counts = stats.value_counts
        if pred.op is Op.EQ:
            if counts is not None and pred.value not in counts:
                return f"{pred.value!r} absent from the column domain"
        elif pred.op is Op.IN:
            if counts is not None and all(v not in counts for v in pred.value):
                return "no IN member occurs in the column domain"
        elif pred.op is Op.GE:
            if stats.max_value is not None and _lt(stats.max_value, pred.value):
                return f"column maximum is {stats.max_value!r}"
        elif pred.op is Op.LE:
            if stats.min_value is not None and _lt(pred.value, stats.min_value):
                return f"column minimum is {stats.min_value!r}"
        elif pred.op is Op.BETWEEN:
            low, high = pred.value
            if stats.max_value is not None and _lt(stats.max_value, low):
                return f"column maximum is {stats.max_value!r}"
            if stats.min_value is not None and _lt(high, stats.min_value):
                return f"column minimum is {stats.min_value!r}"
        return None

    # -- shape ----------------------------------------------------------
    def check_projection_shape(self) -> None:
        """PLAN009: with GROUP BY, every selected column must be
        functionally determined by the group keys — either a group key
        itself, or any column of an alias whose primary key is grouped
        (PK → whole-row dependency).  Anything else projects an
        engine-defined representative row."""
        group_by = self.block.group_by
        if not group_by:
            return
        keys = set(group_by)
        pk_aliases = set()
        for ref in group_by:
            schema = self.schemas.get(ref.table)
            if schema is not None and schema.primary_key == ref.column:
                pk_aliases.add(ref.table)
        for i, ref in enumerate(self.block.select):
            if ref in keys or ref.table in pk_aliases:
                continue
            if ref.table not in self.schemas:
                continue  # PLAN001 already covers it
            self.emit(
                "PLAN009",
                Severity.ERROR,
                f"SELECT {ref} is not determined by GROUP BY "
                f"({', '.join(str(g) for g in group_by)}): the projected "
                "representative row is engine-defined",
                f"select[{i}]",
            )

    def check_sqlite_hazard(self) -> None:
        aliases = len(self.block.tables)
        if aliases > SQLITE_MAX_JOIN_TABLES:
            self.emit(
                "PLAN008",
                Severity.WARNING,
                f"{aliases} table aliases exceed SQLite's "
                f"{SQLITE_MAX_JOIN_TABLES}-table join limit; the sqlite "
                "route falls back to chained MATERIALIZED CTE stages",
                "tables",
            )

    # -- driver ---------------------------------------------------------
    def run(self) -> None:
        self.check_tables()
        resolved = self.check_columns()
        self.check_joins()
        self.check_connectivity()
        typed = self.check_predicate_types(resolved)
        self.check_satisfiability(typed)
        self.check_domains(typed)
        self.check_projection_shape()
        self.check_sqlite_hazard()


def _select_types(
    db: Database, block: Query
) -> List[Optional[ColumnType]]:
    alias_map = block.alias_map()
    out: List[Optional[ColumnType]] = []
    for ref in block.select:
        table = alias_map.get(ref.table)
        if table is None or table not in db:
            out.append(None)
            continue
        schema = db.relation(table).schema
        out.append(
            schema.column_type(ref.column)
            if schema.has_column(ref.column)
            else None
        )
    return out


def verify_query(
    db: Database,
    query: AnyQuery,
    statistics: Optional[Any] = None,
) -> List[Diagnostic]:
    """Statically verify one query against ``db``'s schema.

    ``statistics`` is an optional
    :class:`~repro.sql.estimator.sampler.StatisticsProvider` (anything
    with a ``column(table, column) -> ColumnStatistics`` method); when
    given, the PLAN007 domain check runs on columns with exact
    statistics.  Returns every finding, errors and warnings, in a
    deterministic order; an empty list means the plan is clean.
    """
    out: List[Diagnostic] = []
    if isinstance(query, IntersectQuery):
        for b, block in enumerate(query.blocks):
            _BlockVerifier(
                db, block, f"blocks[{b}].", statistics, out
            ).run()
        reference = _select_types(db, query.blocks[0])
        for b, block in enumerate(query.blocks[1:], start=1):
            for pos, (want, got) in enumerate(
                zip(reference, _select_types(db, block))
            ):
                if want is None or got is None:
                    continue
                if not _compatible(want, got):
                    out.append(
                        Diagnostic(
                            code="PLAN010",
                            severity=Severity.ERROR,
                            message=(
                                f"INTERSECT column {pos} is {want.value} in "
                                f"blocks[0] but {got.value} in blocks[{b}]"
                            ),
                            span=f"blocks[{b}].select[{pos}]",
                        )
                    )
    else:
        _BlockVerifier(db, query, "", statistics, out).run()
    return out
