"""Static analysis for the SQuID reproduction: plan verifier + linter.

Two halves, one diagnostic vocabulary:

* :mod:`repro.analysis.plan` — a **static query-plan verifier** that
  checks :class:`~repro.sql.ast.Query` / ``IntersectQuery`` ASTs against
  a database schema (and, optionally, per-column statistics) *before*
  any engine executes them.  Every check emits a structured
  :class:`~repro.analysis.diagnostics.Diagnostic` with a stable
  ``PLAN0xx`` code; :class:`~repro.analysis.gate.AnalyzingBackend`
  turns the verifier into an optional pre-execution gate
  (``SquidConfig.analyze`` / ``--analyze``).

* :mod:`repro.analysis.lint` — a **codebase invariant linter** built on
  CPython's :mod:`ast`, enforcing repo-specific contracts generic
  linters cannot see (lock discipline around shared counters,
  version-stamp bumps on relation mutation, ``(uid, version)`` stamp
  pairing, execution-backend contract completeness, seeded-randomness
  discipline in the synth sampling paths, copy-on-write warm-state
  immutability inside worker units).  ``tools/lint_repro.py`` is the
  CLI driver; CI runs it on every PR.

See ``docs/analysis.md`` for the full diagnostic-code catalog.
"""

from __future__ import annotations

from .diagnostics import (
    Diagnostic,
    PlanVerificationError,
    Severity,
    errors_of,
    format_diagnostics,
)
from .gate import AnalyzingBackend
from .plan import PLAN_CODES, verify_query

__all__ = [
    "AnalyzingBackend",
    "Diagnostic",
    "PLAN_CODES",
    "PlanVerificationError",
    "Severity",
    "errors_of",
    "format_diagnostics",
    "verify_query",
]
