"""Structured diagnostics shared by the plan verifier and the linter.

A :class:`Diagnostic` is one finding: a stable code (``PLAN001``,
``LINT003``, ...), a severity, a human-readable message, and a *span* —
where in the analysed artifact the finding anchors.  For query ASTs the
span is a dot-path into the query (``blocks[1].predicates[2]``); for
lint findings it is a ``file:line`` location.  Codes are part of the
public contract: tests pin one positive and one negative case per code,
and the docs catalog (``docs/analysis.md``) documents every one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..relational.errors import QueryError


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe queries/code that are wrong or unsafe —
    the execution gate refuses to run them and the lint driver exits
    non-zero.  ``WARNING`` findings describe hazards (a cartesian block,
    a >64-alias star headed for the SQLite chained-CTE path) that are
    legal but worth surfacing; they never block execution.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str
    """Stable identifier (``PLAN0xx`` for plan checks, ``LINT0xx`` for
    codebase invariants); never renumbered once shipped."""

    severity: Severity
    message: str

    span: str = ""
    """Where the finding anchors: a dot-path into the query AST
    (``blocks[0].joins[1]``) or a ``file:line`` source location."""

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def __str__(self) -> str:
        where = f" at {self.span}" if self.span else ""
        return f"{self.code} [{self.severity.value}]{where}: {self.message}"


def errors_of(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """The error-severity subset, order preserved."""
    return [d for d in diagnostics if d.is_error]


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """One finding per line (stable order — as emitted)."""
    return "\n".join(str(d) for d in diagnostics)


class PlanVerificationError(QueryError):
    """Raised by the pre-execution gate when a plan has error findings.

    Carries the full diagnostic list (warnings included) so callers can
    report everything the verifier saw, not just the blocking finding.
    Subclasses :class:`~repro.relational.errors.QueryError` so every
    existing invalid-query handler (the serving tier's 400 path, the
    harness's error-parity comparison) treats a gate rejection exactly
    like an engine-raised validation failure.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(diagnostics)
        errors = errors_of(self.diagnostics)
        summary = "; ".join(str(d) for d in errors) or "no errors"
        super().__init__(
            f"query rejected by plan verifier ({len(errors)} error(s)): "
            f"{summary}"
        )
