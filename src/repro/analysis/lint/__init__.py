"""Repo-specific invariant linter built on CPython's :mod:`ast`.

Generic linters check style; this one checks the *contracts* this
codebase runs on — the invariants whose violations have historically
surfaced only as flaky concurrency bugs or stale-cache wrong answers:

====== =================================================================
code   contract
====== =================================================================
LINT001 shared counters of lock-owning classes are only mutated under
        the owning lock (and never reached around from other modules)
LINT002 every mutation path of a version-stamped container bumps the
        version stamp in the same method
LINT003 a ``.version`` stamp is never read without the paired ``.uid``
        (a version alone aliases across re-created tables)
LINT004 every concrete ``ExecutionBackend`` implements the full engine
        surface — ``execute``, ``stats`` and a ``name``
LINT005 ``repro.synth`` sampling paths use only seeded randomness (no
        ``random.*`` module calls, wall clocks, or entropy sources)
LINT006 worker-unit code never mutates the fork-shipped copy-on-write
        warm state (αDB, backend, database snapshots)
====== =================================================================

All rules are error-severity: ``tools/lint_repro.py`` exits non-zero on
any finding and the CI ``lint`` job runs it on every PR.  See
``docs/analysis.md`` for the rule-by-rule rationale and the recipe for
adding a new rule.
"""

from __future__ import annotations

from .driver import lint_paths, lint_sources
from .rules import LINT_CODES

__all__ = ["LINT_CODES", "lint_paths", "lint_sources"]
