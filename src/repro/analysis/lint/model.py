"""First pass of the linter: a cheap semantic model of the scanned files.

The rules need more than single-node pattern matching — which classes
own locks, which attributes are shared counters, how the backend class
hierarchy resolves across modules.  :func:`build_model` parses every
file once and answers those questions; the rules in
:mod:`repro.analysis.lint.rules` then walk the ASTs with the model in
hand.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Constructor call names that create a mutual-exclusion lock.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore"}


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``self._lock`` → ``["self", "_lock"]``; None for non-name chains.

    Resolves pure ``Name``/``Attribute`` chains only — anything with a
    call or subscript in the middle is not a static chain.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def call_name(node: ast.expr) -> Optional[str]:
    """The trailing name of a call target (``threading.Lock`` → ``Lock``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class ClassInfo:
    """What one class declares, as far as the rules care."""

    name: str
    path: str
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)
    lock_attrs: Set[str] = field(default_factory=set)
    int_counters: Set[str] = field(default_factory=set)
    has_version_stamp: bool = False
    sets_instance_name: bool = False
    method_names: Set[str] = field(default_factory=set)
    abstract_methods: Set[str] = field(default_factory=set)

    @property
    def is_abstract(self) -> bool:
        return bool(self.abstract_methods) or "ABC" in self.base_names

    def methods(self) -> List[ast.AST]:
        return [
            item
            for item in self.node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]


@dataclass
class FileModel:
    """One parsed file plus its class declarations."""

    path: str
    tree: ast.Module
    classes: List[ClassInfo] = field(default_factory=list)


@dataclass
class Model:
    """Everything the rules know about the scanned file set."""

    files: List[FileModel] = field(default_factory=list)
    #: class name -> info (simple-name resolution; last writer wins,
    #: which is fine for this repo's unique class names).
    classes_by_name: Dict[str, ClassInfo] = field(default_factory=dict)
    #: counter attribute name -> owning lock-holding class names.
    guarded_counters: Dict[str, Set[str]] = field(default_factory=dict)

    def ancestry(self, info: ClassInfo) -> List[ClassInfo]:
        """``info`` plus every resolvable base, nearest first."""
        out: List[ClassInfo] = []
        queue = [info]
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            out.append(current)
            for base in current.base_names:
                resolved = self.classes_by_name.get(base)
                if resolved is not None:
                    queue.append(resolved)
        return out

    def inherits_from(self, info: ClassInfo, root: str) -> bool:
        return any(a.name == root for a in self.ancestry(info)) or any(
            root in a.base_names for a in self.ancestry(info)
        )


def _scan_init(info: ClassInfo, init: ast.AST) -> None:
    """Harvest lock/counter/stamp attribute declarations from __init__."""
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        chain = attr_chain(node.targets[0])
        if chain is None or len(chain) != 2 or chain[0] != "self":
            continue
        attr = chain[1]
        value = node.value
        if isinstance(value, ast.Call) and call_name(value.func) in _LOCK_FACTORIES:
            info.lock_attrs.add(attr)
        elif (
            isinstance(value, ast.Constant)
            and type(value.value) is int  # bools are ints; exclude them
        ):
            info.int_counters.add(attr)
        if attr == "_version":
            info.has_version_stamp = True
        if attr == "name":
            info.sets_instance_name = True


def _scan_class(path: str, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(name=node.name, path=path, node=node)
    for base in node.bases:
        name = call_name(base)
        if name is not None:
            info.base_names.append(name)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.method_names.add(item.name)
            for deco in item.decorator_list:
                if call_name(deco) == "abstractmethod":
                    info.abstract_methods.add(item.name)
            if item.name == "__init__":
                _scan_init(info, item)
        elif isinstance(item, ast.Assign) and len(item.targets) == 1:
            target = item.targets[0]
            if isinstance(target, ast.Name) and target.id == "name":
                info.sets_instance_name = True
    return info


def build_model(sources: Sequence[Tuple[str, str]]) -> Model:
    """Parse ``(path, source)`` pairs into a :class:`Model`.

    Files that fail to parse are skipped silently here — the driver
    reports them as their own diagnostic before the rules run.
    """
    model = Model()
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        fm = FileModel(path=path, tree=tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                info = _scan_class(path, node)
                fm.classes.append(info)
                model.classes_by_name[info.name] = info
        model.files.append(fm)
    for info in model.classes_by_name.values():
        if not info.lock_attrs:
            continue
        for counter in info.int_counters:
            model.guarded_counters.setdefault(counter, set()).add(info.name)
    return model
