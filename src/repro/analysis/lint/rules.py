"""The lint rules.  Each rule is a function ``(Model) -> [Diagnostic]``.

Rules are deliberately *repo-shaped*: they encode contracts this
codebase documents in docstrings (lock ownership, stamp discipline,
fork-time copy-on-write) rather than universal Python style.  A new
rule is one function plus a ``LINT0xx`` entry in :data:`LINT_CODES` and
a registration in :data:`ALL_RULES`; see ``docs/analysis.md``.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..diagnostics import Diagnostic, Severity
from .model import ClassInfo, FileModel, Model, attr_chain, call_name

#: Code -> one-line contract (the catalog; mirrored in docs/analysis.md).
LINT_CODES: Dict[str, str] = {
    "LINT001": "shared counters of lock-owning classes mutate under the lock",
    "LINT002": "version-stamped container mutations bump the stamp",
    "LINT003": ".version stamp reads are paired with .uid",
    "LINT004": "concrete ExecutionBackends implement execute/stats/name",
    "LINT005": "synth sampling paths use only seeded randomness",
    "LINT006": "worker units never mutate copy-on-write warm state",
}


def _diag(code: str, message: str, path: str, node: ast.AST) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        message=message,
        span=f"{path}:{getattr(node, 'lineno', 0)}",
    )


def _functions(tree: ast.AST) -> Iterable[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` → ``"X"``, else None."""
    chain = attr_chain(node)
    if chain is not None and len(chain) == 2 and chain[0] == "self":
        return chain[1]
    return None


# ---------------------------------------------------------------------------
# LINT001 — lock discipline around shared counters
# ---------------------------------------------------------------------------
def _with_holds_lock(node: ast.AST, lock_attrs: Set[str]) -> bool:
    """Whether a ``with`` item acquires one of the class's locks (or any
    lock-named object — module-level ``_FORK_LOCK`` style)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            if sub.attr in lock_attrs or "lock" in sub.attr.lower():
                return True
        elif isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
    return False


def _counter_targets(info: ClassInfo) -> Set[str]:
    """Attributes whose mutation must be locked: the int counters plus
    container counters (dict/list-of-int tallies built in __init__)."""
    targets = set(info.int_counters)
    init = next(
        (
            m
            for m in info.methods()
            if getattr(m, "name", None) == "__init__"
        ),
        None,
    )
    if init is None:
        return targets
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        attr = _self_attr(node.targets[0])
        if attr is None:
            continue
        value = node.value
        if isinstance(value, (ast.Dict, ast.DictComp, ast.List, ast.ListComp)):
            targets.add(attr)
        elif isinstance(value, ast.Call) and call_name(value.func) in {
            "dict",
            "list",
            "defaultdict",
            "Counter",
            "OrderedDict",
        }:
            targets.add(attr)
        elif isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
            targets.add(attr)  # the `[0] * workers` tally idiom
    return targets


def _scan_locked(
    body: Sequence[ast.stmt],
    locked: bool,
    lock_attrs: Set[str],
    on_unlocked: Callable[[ast.stmt], None],
) -> None:
    """Walk statements tracking whether a class lock is held lexically."""
    for stmt in body:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = locked or any(
                _with_holds_lock(item.context_expr, lock_attrs)
                for item in stmt.items
            )
            _scan_locked(stmt.body, inner, lock_attrs, on_unlocked)
            continue
        if not locked and isinstance(stmt, ast.AugAssign):
            on_unlocked(stmt)
        for field_body in ("body", "orelse", "finalbody", "handlers"):
            sub = getattr(stmt, field_body, None)
            if not sub:
                continue
            if field_body == "handlers":
                for handler in sub:
                    _scan_locked(
                        handler.body, locked, lock_attrs, on_unlocked
                    )
            else:
                _scan_locked(sub, locked, lock_attrs, on_unlocked)


def rule_lint001(model: Model) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    # (a) in-class: counters of a lock-owning class mutate under its lock.
    for fm in model.files:
        for info in fm.classes:
            if not info.lock_attrs:
                continue
            counters = _counter_targets(info)
            for method in info.methods():
                if method.name == "__init__":
                    continue

                def flag(stmt: ast.stmt) -> None:
                    target = stmt.target
                    attr = _self_attr(target)
                    if attr is None and isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                    if attr in counters:
                        out.append(
                            _diag(
                                "LINT001",
                                f"{info.name}.{attr} is a shared counter "
                                f"guarded by {sorted(info.lock_attrs)}; "
                                f"mutation in {method.name}() is outside "
                                "the lock",
                                fm.path,
                                stmt,
                            )
                        )

                _scan_locked(method.body, False, info.lock_attrs, flag)
    # (b) cross-object: nobody reaches around another object's lock.
    for fm in model.files:
        for node in ast.walk(fm.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            chain = attr_chain(node.target)
            if chain is None or len(chain) < 2 or chain[0] == "self":
                continue
            owners = model.guarded_counters.get(chain[-1])
            if owners:
                out.append(
                    _diag(
                        "LINT001",
                        f"direct mutation of {'.'.join(chain)} reaches "
                        f"around the lock of {sorted(owners)[0]}; add a "
                        "locked method on the owner instead",
                        fm.path,
                        node,
                    )
                )
    return out


# ---------------------------------------------------------------------------
# LINT002 — version-stamp bumps on mutation
# ---------------------------------------------------------------------------
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "clear",
    "pop",
    "popitem",
    "remove",
    "discard",
    "setdefault",
}


def _is_cacheish(attr: str) -> bool:
    return "cache" in attr or attr == "_version"


def _tainted_locals(method: ast.AST) -> Set[str]:
    """Local names bound from stored-data attributes of ``self`` (e.g.
    ``for store, v in zip(self._columns, values)`` taints ``store``)."""

    def self_data_ref(expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            attr = _self_attr(sub)
            if attr is not None and not _is_cacheish(attr):
                return True
        return False

    def names_of(target: ast.AST) -> Iterable[str]:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                yield sub.id

    tainted: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and self_data_ref(node.value):
            for target in node.targets:
                tainted.update(names_of(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)) and self_data_ref(
            node.iter
        ):
            tainted.update(names_of(node.target))
    return tainted


def rule_lint002(model: Model) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for fm in model.files:
        for info in fm.classes:
            if not info.has_version_stamp:
                continue
            for method in info.methods():
                if method.name == "__init__":
                    continue
                tainted = _tainted_locals(method)
                mutations: List[ast.AST] = []
                bumps = False
                for node in ast.walk(method):
                    if isinstance(node, (ast.Assign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            if _self_attr(target) == "_version":
                                bumps = True
                            elif isinstance(target, ast.Subscript):
                                base = target.value
                                attr = _self_attr(base)
                                if attr is not None and not _is_cacheish(attr):
                                    mutations.append(node)
                                elif (
                                    isinstance(base, ast.Name)
                                    and base.id in tainted
                                ):
                                    mutations.append(node)
                    elif isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute
                    ):
                        if node.func.attr not in _MUTATOR_METHODS:
                            continue
                        receiver = node.func.value
                        attr = _self_attr(receiver)
                        if attr is not None and not _is_cacheish(attr):
                            mutations.append(node)
                        elif (
                            isinstance(receiver, ast.Name)
                            and receiver.id in tainted
                        ):
                            mutations.append(node)
                if mutations and not bumps:
                    out.append(
                        _diag(
                            "LINT002",
                            f"{info.name}.{method.name}() mutates stored "
                            "data but never bumps self._version; stamped "
                            "caches would serve stale results",
                            fm.path,
                            mutations[0],
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# LINT003 — (uid, version) stamp pairing
# ---------------------------------------------------------------------------
def rule_lint003(model: Model) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for fm in model.files:
        for func in _functions(fm.tree):
            version_reads: List[ast.Attribute] = []
            has_uid = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Attribute):
                    continue
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    continue  # self._version internals are the stamp source
                if node.attr == "version":
                    version_reads.append(node)
                elif node.attr == "uid":
                    has_uid = True
            if version_reads and not has_uid:
                out.append(
                    _diag(
                        "LINT003",
                        f"{func.name}() reads .version without the paired "
                        ".uid — a bare version aliases across re-created "
                        "same-name tables",
                        fm.path,
                        version_reads[0],
                    )
                )
    return out


# ---------------------------------------------------------------------------
# LINT004 — ExecutionBackend contract completeness
# ---------------------------------------------------------------------------
_BACKEND_ROOT = "ExecutionBackend"
_BACKEND_SURFACE = ("execute", "stats")


def rule_lint004(model: Model) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for fm in model.files:
        for info in fm.classes:
            if info.name == _BACKEND_ROOT or info.is_abstract:
                continue
            if not model.inherits_from(info, _BACKEND_ROOT):
                continue
            chain = model.ancestry(info)
            for required in _BACKEND_SURFACE:
                concrete = any(
                    required in a.method_names
                    and required not in a.abstract_methods
                    for a in chain
                )
                if not concrete:
                    out.append(
                        _diag(
                            "LINT004",
                            f"{info.name} is a concrete {_BACKEND_ROOT} "
                            f"without a {required}() implementation",
                            fm.path,
                            info.node,
                        )
                    )
            names_it = any(
                a.sets_instance_name for a in chain if a.name != _BACKEND_ROOT
            )
            if not names_it:
                out.append(
                    _diag(
                        "LINT004",
                        f"{info.name} never sets its engine name (class "
                        "attribute or self.name); stats and routing "
                        "reports would show 'abstract'",
                        fm.path,
                        info.node,
                    )
                )
    return out


# ---------------------------------------------------------------------------
# LINT005 — seeded-randomness discipline in synth sampling paths
# ---------------------------------------------------------------------------
_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"},
    "datetime": {"now", "utcnow", "today"},
    "os": {"urandom"},
    "uuid": {"uuid1", "uuid4"},
}


def _synth_scoped(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return "synth" in parts


def rule_lint005(model: Model) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for fm in model.files:
        if not _synth_scoped(fm.path):
            continue
        module_aliases: Dict[str, str] = {}  # local alias -> module name
        from_random: Set[str] = set()
        for node in ast.walk(fm.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    module_aliases[alias.asname or root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                if root == "random":
                    for alias in node.names:
                        from_random.add(alias.asname or alias.name)
        for node in ast.walk(fm.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is not None and len(chain) >= 2:
                module = module_aliases.get(chain[0])
                if module == "random":
                    if not (chain[-1] == "Random" and node.args):
                        out.append(
                            _diag(
                                "LINT005",
                                f"{'.'.join(chain)}() draws from the "
                                "process-global RNG; use make_rng(seed, "
                                "label) so scenarios stay seed-"
                                "deterministic",
                                fm.path,
                                node,
                            )
                        )
                elif module in _CLOCK_ATTRS and chain[-1] in _CLOCK_ATTRS[module]:
                    out.append(
                        _diag(
                            "LINT005",
                            f"{'.'.join(chain)}() injects wall-clock/"
                            "entropy nondeterminism into a sampling path",
                            fm.path,
                            node,
                        )
                    )
                elif module == "numpy" and "random" in chain:
                    if not (chain[-1] == "default_rng" and node.args):
                        out.append(
                            _diag(
                                "LINT005",
                                f"{'.'.join(chain)}() uses numpy's global "
                                "or unseeded RNG in a sampling path",
                                fm.path,
                                node,
                            )
                        )
            elif isinstance(node.func, ast.Name) and node.func.id in from_random:
                if not (node.func.id == "Random" and node.args):
                    out.append(
                        _diag(
                            "LINT005",
                            f"{node.func.id}() came from the random module "
                            "unseeded; use make_rng(seed, label)",
                            fm.path,
                            node,
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# LINT006 — copy-on-write warm state stays immutable in worker units
# ---------------------------------------------------------------------------
#: Functions/classes whose bodies run inside pool workers (forked children
#: or pool threads) against the fork-shipped warm state.
WORKER_UNIT_SCOPES = {
    "_WorkerCore",
    "_ShardWorker",
    "_fork_worker_main",
    "_thread_main",
    "_fork_unit",
    "_run_shard",
}

#: Names that carry the warm state into worker scopes.
_WARM_NAMES = {"adb", "backend", "db"}

_WARM_MUTATORS = _MUTATOR_METHODS | {
    "insert_dict",
    "bulk_load",
    "create_table",
    "drop_table",
}


def _warm_rooted(chain: Optional[List[str]]) -> bool:
    if chain is None:
        return False
    if chain[0] == "self":
        return len(chain) > 2 and chain[1] in _WARM_NAMES
    return len(chain) > 1 and chain[0] in _WARM_NAMES


def _warm_in_expr(expr: ast.AST) -> bool:
    for sub in ast.walk(expr):
        chain = attr_chain(sub)
        if chain is None:
            continue
        if chain[0] == "self" and len(chain) >= 2 and chain[1] in _WARM_NAMES:
            return True
        if chain[0] in _WARM_NAMES and len(chain) >= 1:
            return True
    return False


def rule_lint006(model: Model) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for fm in model.files:
        scopes: List[ast.AST] = []
        for node in ast.walk(fm.tree):
            if (
                isinstance(
                    node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
                )
                and node.name in WORKER_UNIT_SCOPES
            ):
                scopes.append(node)
        for scope in scopes:
            for node in ast.walk(scope):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        base = (
                            target.value
                            if isinstance(target, ast.Subscript)
                            else target
                        )
                        if _warm_rooted(attr_chain(base)):
                            out.append(
                                _diag(
                                    "LINT006",
                                    "worker unit writes into fork-shipped "
                                    "warm state; copy-on-write pages would "
                                    "silently diverge from the parent",
                                    fm.path,
                                    node,
                                )
                            )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr not in _WARM_MUTATORS:
                        continue
                    receiver = node.func.value
                    if _warm_rooted(attr_chain(receiver)) or (
                        attr_chain(receiver) is None
                        and _warm_in_expr(receiver)
                    ):
                        out.append(
                            _diag(
                                "LINT006",
                                f"worker unit calls .{node.func.attr}() on "
                                "fork-shipped warm state; mutation must "
                                "happen in the parent (which restarts "
                                "pools on change)",
                                fm.path,
                                node,
                            )
                        )
    return out


ALL_RULES: List[Callable[[Model], List[Diagnostic]]] = [
    rule_lint001,
    rule_lint002,
    rule_lint003,
    rule_lint004,
    rule_lint005,
    rule_lint006,
]
