"""Lint driver: file discovery, parsing, rule execution, ordering.

Two entry points share all logic: :func:`lint_paths` walks real files
(the ``tools/lint_repro.py`` CLI and CI), :func:`lint_sources` lints an
in-memory ``{path: source}`` mapping (the rule unit tests feed crafted
positive/negative snippets through the identical pipeline).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Sequence, Tuple

from ..diagnostics import Diagnostic, Severity
from .model import build_model
from .rules import ALL_RULES


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in filenames:
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return sorted(found)


def _span_key(diag: Diagnostic) -> Tuple[str, int, str]:
    path, _, line = diag.span.rpartition(":")
    try:
        return (path, int(line), diag.code)
    except ValueError:
        return (diag.span, 0, diag.code)


def lint_sources(sources: Dict[str, str]) -> List[Diagnostic]:
    """Lint an in-memory ``{path: source}`` mapping."""
    pairs = sorted(sources.items())
    out: List[Diagnostic] = []
    for path, source in pairs:
        try:
            ast.parse(source, filename=path)
        except SyntaxError as exc:
            out.append(
                Diagnostic(
                    code="LINT000",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                    span=f"{path}:{exc.lineno or 0}",
                )
            )
    model = build_model(pairs)
    for rule in ALL_RULES:
        out.extend(rule(model))
    out.sort(key=_span_key)
    return out


def lint_paths(paths: Sequence[str]) -> List[Diagnostic]:
    """Lint every Python file under ``paths`` (files or directories)."""
    sources: Dict[str, str] = {}
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            sources[path] = handle.read()
    return lint_sources(sources)
