"""Synthetic scenario generation and differential fuzzing.

Every evaluation in this repo historically ran on the paper's three
datasets (IMDb, DBLP, Adult).  This package fabricates *arbitrary many*
new scenarios — schema, data, semantic-property families, and
ground-truth intent queries — deterministically from a single seed, and
differential-tests the whole stack against them:

* :mod:`repro.synth.config` — weighted sampler configurations
  (schema/data/join/predicate/aggregate), one frozen dataclass each, in
  the style of seeded ``RandomSqlGenerator`` samplers;
* :mod:`repro.synth.schema_gen` — seed-deterministic schema plans:
  entity tables, dimension tables, FK fact graphs, typed attribute
  columns, optional qualifiers;
* :mod:`repro.synth.data_gen` — relation materialisation with
  configurable cardinality, Zipfian activity skew, and per-entity
  dimension affinity (the mechanism that makes derived
  semantic-property filters abducible);
* :mod:`repro.synth.intents` — ground-truth intent sampling (joins,
  predicates, aggregates drawn from the weighted configs) plus example
  derivation by executing the intent query;
* :mod:`repro.synth.scenario` — the assembled
  :class:`~repro.synth.scenario.Scenario` (config → plan → database →
  metadata → intents) with shrinker masks and a stable fingerprint;
* :mod:`repro.synth.harness` — the differential fuzz harness: per
  scenario, run discovery and assert all registered engines return
  byte-identical results, the abduced output covers the examples, and
  the result is checked against the known ground truth;
* :mod:`repro.synth.corpus` — minimized-repro corpus entries
  (``tests/corpus/*.json``), the greedy shrinker, and replay;
* :mod:`repro.synth.load` — synthetic request streams for the serving
  tier.

Everything is a pure function of the :class:`ScenarioConfig` (which
embeds the seed): the same config is byte-identical across processes,
fork/thread executors, and ``--jobs`` settings.
"""

from .config import (
    AggregateSamplerConfig,
    DataSamplerConfig,
    IntentSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    ScenarioConfig,
    SchemaSamplerConfig,
)
from .corpus import (
    CorpusEntry,
    default_corpus_dir,
    entry_passes,
    load_corpus,
    replay_entry,
    shrink_config,
    write_entry,
)
from .harness import (
    DifferentialHarness,
    FuzzReport,
    ScenarioFailure,
    ScenarioReport,
    canonical_result,
    fuzz_seeds,
    parse_seed_range,
)
from .intents import AssocCondition, AttrCondition, IntentSpec, SyntheticIntent
from .load import request_stream, sequential_responses
from .scenario import (
    Scenario,
    ScenarioMaskError,
    default_scenario_config,
    generate_scenario,
)
from .schema_gen import (
    AttributePlan,
    DimensionPlan,
    EntityPlan,
    FactPlan,
    SchemaPlan,
    sample_schema,
)

__all__ = [
    "AggregateSamplerConfig",
    "AssocCondition",
    "AttrCondition",
    "AttributePlan",
    "CorpusEntry",
    "DataSamplerConfig",
    "DifferentialHarness",
    "DimensionPlan",
    "EntityPlan",
    "FactPlan",
    "FuzzReport",
    "IntentSamplerConfig",
    "IntentSpec",
    "JoinSamplerConfig",
    "PredicateSamplerConfig",
    "Scenario",
    "ScenarioConfig",
    "ScenarioFailure",
    "ScenarioMaskError",
    "ScenarioReport",
    "SchemaPlan",
    "SchemaSamplerConfig",
    "SyntheticIntent",
    "canonical_result",
    "default_corpus_dir",
    "default_scenario_config",
    "entry_passes",
    "fuzz_seeds",
    "generate_scenario",
    "load_corpus",
    "parse_seed_range",
    "replay_entry",
    "request_stream",
    "sample_schema",
    "sequential_responses",
    "shrink_config",
    "write_entry",
]
