"""Synthetic request streams for the serving tier.

Turns a scenario's intents into the JSON requests the
:class:`~repro.serve.DiscoveryServer` speaks, so the serving benchmark
and load tests can replay realistic, seed-deterministic traffic instead
of hand-written example sets.  :func:`sequential_responses` computes the
byte-exact reference answers via :func:`repro.serve.sequential_response`
— the concurrent server must match them payload for payload.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.squid import SquidSystem
from ..datasets.seeds import make_rng
from ..serve import encode_response, sequential_response
from .scenario import Scenario


def request_stream(
    scenario: Scenario, count: Optional[int] = None
) -> List[Dict[str, Any]]:
    """``count`` discovery requests cycling the scenario's intents.

    The default is one request per intent; larger counts repeat intents
    in a seed-deterministic shuffled order (so a replayed stream doesn't
    hammer one warm cache entry back to back).  Request ids encode the
    scenario, intent, and repetition — responses can always be traced
    back to their ground truth."""
    intents = list(scenario.intents)
    if not intents:
        return []
    if count is None:
        count = len(intents)
    rng = make_rng(scenario.seed, "synth/load")
    requests: List[Dict[str, Any]] = []
    while len(requests) < count:
        round_no = len(requests) // len(intents)
        for pos in rng.permutation(len(intents)):
            if len(requests) >= count:
                break
            intent = intents[int(pos)]
            requests.append(
                {
                    "id": f"{scenario.name}/{intent.index}/{round_no}",
                    "examples": list(intent.examples),
                }
            )
    return requests


def sequential_responses(
    system: SquidSystem, requests: List[Dict[str, Any]]
) -> List[str]:
    """Canonical reference payloads, one encoded JSON string per request
    (no ``seconds`` field — these are the bytes concurrent serving must
    reproduce)."""
    return [
        encode_response(sequential_response(system, request))
        for request in requests
    ]
