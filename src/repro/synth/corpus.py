"""The minimized-repro regression corpus (``tests/corpus/*.json``).

Every failure the fuzzer surfaces is shrunk to a minimal scenario — the
shrinker greedily drops intents, fact/dimension tables, attribute
columns, and intent conditions for as long as the same failure kind
keeps reproducing — and written here as one self-contained JSON entry:
the full :class:`ScenarioConfig` (seed + sampler knobs + masks), the
failure kind, and an ``expect`` marker.

``expect`` encodes the entry's regression semantics:

* ``"pass"`` — a failure that has since been fixed; the tier-1 replay
  test asserts the harness now reports **no** failures for it.
* ``"fail"`` — a known-open failure; replay asserts the recorded kind
  still reproduces (so a silent behaviour change is caught from both
  directions).  Freshly-written entries start as ``"fail"`` and are
  flipped to ``"pass"`` by whoever lands the fix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from .config import ScenarioConfig
from .scenario import ScenarioMaskError, generate_scenario

PathLike = Union[str, Path]

_EXPECTATIONS = ("pass", "fail")

#: Shrinker budget: candidate evaluations per failure.  Each evaluation
#: re-generates and re-tests a (tiny) scenario, so this bounds shrink
#: cost to a couple of seconds.
DEFAULT_SHRINK_BUDGET = 80


def default_corpus_dir() -> Path:
    """``tests/corpus`` of this checkout (the checked-in corpus)."""
    return Path(__file__).resolve().parents[3] / "tests" / "corpus"


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable minimized repro."""

    entry_id: str
    kind: str
    seed: int
    config: ScenarioConfig
    intent_index: Optional[int] = None
    detail: str = ""
    expect: str = "fail"

    def __post_init__(self) -> None:
        if self.expect not in _EXPECTATIONS:
            raise ValueError(
                f"expect must be one of {_EXPECTATIONS}, got {self.expect!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.entry_id,
            "kind": self.kind,
            "seed": self.seed,
            "intent_index": self.intent_index,
            "detail": self.detail,
            "expect": self.expect,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "CorpusEntry":
        return cls(
            entry_id=raw["id"],
            kind=raw["kind"],
            seed=raw["seed"],
            intent_index=raw.get("intent_index"),
            detail=raw.get("detail", ""),
            expect=raw.get("expect", "fail"),
            config=ScenarioConfig.from_dict(raw["config"]),
        )


def write_entry(entry: CorpusEntry, directory: PathLike) -> Path:
    """Serialise one entry as ``<id>.json`` (sorted keys, trailing
    newline — byte-stable for clean diffs in review)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.entry_id}.json"
    path.write_text(
        json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_corpus(directory: Optional[PathLike] = None) -> List[CorpusEntry]:
    """All entries of a corpus directory, id-ordered."""
    directory = Path(directory) if directory else default_corpus_dir()
    entries: List[CorpusEntry] = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.json")):
        raw = json.loads(path.read_text(encoding="utf-8"))
        entries.append(CorpusEntry.from_dict(raw))
    return entries


def replay_entry(entry: CorpusEntry, strict_gt: bool = False):
    """Re-run the harness on one corpus entry.

    Returns the :class:`~repro.synth.harness.ScenarioReport`.  Strictness
    defaults to off; ``ground_truth`` entries replay with it on (their
    failure kind only exists under strictness)."""
    from .harness import run_scenario_config

    strict = strict_gt or entry.kind == "ground_truth"
    return run_scenario_config(entry.config, strict_gt=strict)


def entry_passes(entry: CorpusEntry) -> bool:
    """Whether the entry's expectation currently holds."""
    try:
        report = replay_entry(entry)
    except ScenarioMaskError:
        return False
    if entry.expect == "pass":
        return report.ok
    return any(f.kind == entry.kind for f in report.failures)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def _mask_candidates(config: ScenarioConfig) -> Iterator[ScenarioConfig]:
    """One-step-smaller configs, most-promising drops first.

    Ordered fact tables → dimensions → entity tables → attribute columns
    → intent conditions: dropping a fact removes the most downstream αDB
    machinery per accepted step, so the greedy loop converges fast."""
    try:
        scenario = generate_scenario(config)
    except ScenarioMaskError:
        return
    plan = scenario.plan
    facts = [f.name for e in plan.entities for f in e.facts]
    dims = [d.name for d in plan.dimensions]
    entities = [e.name for e in plan.entities]
    for table in facts + dims + entities[1:]:
        yield config.with_masks(
            keep_intents=config.keep_intents,
            drop_tables=config.drop_tables + (table,),
            drop_columns=config.drop_columns,
            drop_conditions=config.drop_conditions,
        )
    for ent in plan.entities:
        for attr in ent.attributes:
            yield config.with_masks(
                keep_intents=config.keep_intents,
                drop_tables=config.drop_tables,
                drop_columns=config.drop_columns + (f"{ent.name}.{attr.name}",),
                drop_conditions=config.drop_conditions,
            )
    for intent in scenario.intents:
        for j in range(len(intent.spec.conditions)):
            pair = (intent.index, j)
            if pair in config.drop_conditions:
                continue
            yield config.with_masks(
                keep_intents=config.keep_intents,
                drop_tables=config.drop_tables,
                drop_columns=config.drop_columns,
                drop_conditions=config.drop_conditions + (pair,),
            )


def shrink_config(
    config: ScenarioConfig,
    reproduces: Callable[[ScenarioConfig], bool],
    focus_intent: Optional[int] = None,
    budget: int = DEFAULT_SHRINK_BUDGET,
) -> ScenarioConfig:
    """Greedily minimize ``config`` while ``reproduces`` stays true.

    First restricts the scenario to the failing intent (``focus_intent``),
    then repeatedly tries one-step masks — dropping a table, a column, or
    a condition — accepting any step after which the failure still
    reproduces, until a full pass accepts nothing or the evaluation
    ``budget`` is spent.  ``reproduces`` must treat
    :class:`ScenarioMaskError` as "does not reproduce"."""
    checks = 0

    def check(candidate: ScenarioConfig) -> bool:
        nonlocal checks
        if checks >= budget:
            return False
        checks += 1
        try:
            return reproduces(candidate)
        except ScenarioMaskError:
            return False

    current = config
    if focus_intent is not None and config.keep_intents is None:
        focused = config.with_masks(
            keep_intents=(focus_intent,),
            drop_tables=config.drop_tables,
            drop_columns=config.drop_columns,
            drop_conditions=config.drop_conditions,
        )
        if check(focused):
            current = focused

    improved = True
    while improved and checks < budget:
        improved = False
        for candidate in _mask_candidates(current):
            if checks >= budget:
                break
            if check(candidate):
                current = candidate
                improved = True
                break
    return current
