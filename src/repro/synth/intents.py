"""Ground-truth intent sampling and example derivation.

An *intent* is the query the simulated user has in mind.  It is sampled
structurally — how many association (join) conditions, how many direct
attribute predicates, whether an aggregate rides along — from the
weighted :class:`JoinSamplerConfig` / :class:`PredicateSamplerConfig` /
:class:`AggregateSamplerConfig` knobs, with constants drawn from the
*materialised data* so selectivity is non-degenerate.  Candidate intents
are rejection-sampled against an acceptance window on their ground-truth
cardinality: too-empty and near-universal intents teach the fuzzer
nothing.

The intent compiles to the repo's query AST over the original schema
(entity alias ``e``, per-condition aliases ``f<i>``/``d<i>``/``q<i>``),
projecting ``(key, display)`` exactly like the hand-written benchmark
workloads, so a sampled intent *is* a :class:`~repro.workloads.registry.
Workload` ground-truth query.  Example sets are then derived by
executing the intent and sampling display values from its result — the
closed loop the differential harness checks abduction against.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..datasets.seeds import make_rng, span_draw, weighted_choice
from ..relational import Database
from ..sql.ast import (
    AnyQuery,
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)
from ..sql.executor import execute
from .config import IntentSamplerConfig
from .schema_gen import EntityPlan, SchemaPlan

_OPS = {"=": Op.EQ, ">=": Op.GE, "<=": Op.LE, "BETWEEN": Op.BETWEEN}
_NUMERIC_OPS = (">=", "<=", "BETWEEN")


@dataclass(frozen=True)
class AttrCondition:
    """A direct-attribute predicate ``entity.attr OP value``."""

    attr: str
    op: str
    value: Any
    high: Any = None
    """Upper bound when ``op`` is BETWEEN (``value`` is the lower)."""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unsupported op {self.op!r}")
        if (self.op == "BETWEEN") != (self.high is not None):
            raise ValueError("high is for (and only for) BETWEEN")

    def predicate(self, alias: str = "e") -> Predicate:
        value = (self.value, self.high) if self.op == "BETWEEN" else self.value
        return Predicate(ColumnRef(alias, self.attr), _OPS[self.op], value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "attr",
            "attr": self.attr,
            "op": self.op,
            "value": self.value,
            "high": self.high,
        }


@dataclass(frozen=True)
class AssocCondition:
    """An association condition: the entity joins a fact table to a
    dimension filtered on one label, optionally qualified and optionally
    aggregated (``HAVING count(*) >= having_min``)."""

    fact: str
    dim: str
    label: str
    qualifier: Optional[str] = None
    qualifier_label: Optional[str] = None
    having_min: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.qualifier is None) != (self.qualifier_label is None):
            raise ValueError("qualifier and qualifier_label go together")
        if self.having_min is not None and self.having_min < 1:
            raise ValueError(f"having_min must be >= 1, got {self.having_min}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "assoc",
            "fact": self.fact,
            "dim": self.dim,
            "label": self.label,
            "qualifier": self.qualifier,
            "qualifier_label": self.qualifier_label,
            "having_min": self.having_min,
        }


Condition = Union[AttrCondition, AssocCondition]


def condition_from_dict(raw: Dict[str, Any]) -> Condition:
    """Inverse of ``Condition.to_dict``."""
    kind = raw.get("type")
    if kind == "attr":
        return AttrCondition(
            attr=raw["attr"],
            op=raw["op"],
            value=raw["value"],
            high=raw.get("high"),
        )
    if kind == "assoc":
        return AssocCondition(
            fact=raw["fact"],
            dim=raw["dim"],
            label=raw["label"],
            qualifier=raw.get("qualifier"),
            qualifier_label=raw.get("qualifier_label"),
            having_min=raw.get("having_min"),
        )
    raise ValueError(f"unknown condition type {kind!r}")


@dataclass(frozen=True)
class IntentSpec:
    """One sampled ground-truth intent: an entity plus conditions."""

    entity: str
    conditions: Tuple[Condition, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entity": self.entity,
            "conditions": [c.to_dict() for c in self.conditions],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "IntentSpec":
        return cls(
            entity=raw["entity"],
            conditions=tuple(
                condition_from_dict(c) for c in raw.get("conditions", ())
            ),
        )

    # ------------------------------------------------------------------
    # compilation to the query AST
    # ------------------------------------------------------------------
    def query(self) -> AnyQuery:
        """The intent as an SPJ(A, intersect) query over the original
        schema, projecting ``(id, name)`` of the entity.

        Plain association and attribute conditions share one block;
        every aggregated association becomes its own GROUP BY / HAVING
        block intersected in (the Q4 shape abduction itself emits)."""
        select = (ColumnRef("e", "id"), ColumnRef("e", "name"))
        entity_ref = TableRef(self.entity, "e")

        tables: List[TableRef] = [entity_ref]
        joins: List[JoinCondition] = []
        predicates: List[Predicate] = []
        having_blocks: List[Query] = []
        for i, cond in enumerate(self.conditions):
            if isinstance(cond, AttrCondition):
                predicates.append(cond.predicate())
                continue
            hop_tables, hop_joins, hop_preds = _assoc_clauses(
                self.entity, cond, i
            )
            if cond.having_min is None:
                tables += hop_tables
                joins += hop_joins
                predicates += hop_preds
            else:
                having_blocks.append(
                    Query(
                        select=select,
                        tables=(entity_ref, *hop_tables),
                        joins=tuple(hop_joins),
                        predicates=tuple(hop_preds),
                        group_by=(ColumnRef("e", "id"),),
                        having=HavingCount(Op.GE, cond.having_min),
                    )
                )
        main = Query(
            select=select,
            tables=tuple(tables),
            joins=tuple(joins),
            predicates=tuple(predicates),
        )
        if having_blocks:
            return IntersectQuery((main, *having_blocks))
        return main

    def validate_against(self, plan: SchemaPlan) -> None:
        """Raise ``ValueError`` if the intent references anything a
        masked plan no longer has (a rejected shrink step)."""
        ent = plan.entity(self.entity)  # KeyError -> caller handles
        for cond in self.conditions:
            if isinstance(cond, AttrCondition):
                ent.attribute(cond.attr)
                continue
            fact = ent.fact(cond.fact)
            if fact.dim != cond.dim:
                raise KeyError(f"{cond.fact} no longer joins {cond.dim}")
            if cond.qualifier is not None and fact.qualifier != cond.qualifier:
                raise KeyError(f"{cond.fact} lost qualifier {cond.qualifier}")

    def counts(self) -> Tuple[int, int]:
        """(join count, selection-atom count) of the compiled query."""
        query = self.query()
        blocks = query.blocks if isinstance(query, IntersectQuery) else (query,)
        joins = sum(len(b.joins) for b in blocks)
        selections = sum(
            p.atom_count() for b in blocks for p in b.predicates
        ) + sum(1 for b in blocks if b.having is not None)
        return joins, selections

    def describe(self) -> str:
        """One-line human description for workload listings."""
        parts: List[str] = []
        for cond in self.conditions:
            if isinstance(cond, AttrCondition):
                if cond.op == "BETWEEN":
                    parts.append(f"{cond.attr} in [{cond.value}, {cond.high}]")
                else:
                    parts.append(f"{cond.attr} {cond.op} {cond.value}")
            else:
                clause = f"has {cond.dim}={cond.label}"
                if cond.qualifier_label is not None:
                    clause += f" as {cond.qualifier_label}"
                if cond.having_min is not None:
                    clause += f" (x{cond.having_min}+)"
                parts.append(clause)
        detail = " and ".join(parts) or "all rows"
        return f"{self.entity} where {detail}"


def _assoc_clauses(
    entity: str, cond: AssocCondition, index: int
) -> Tuple[List[TableRef], List[JoinCondition], List[Predicate]]:
    """FROM/JOIN/WHERE clauses of one association hop, aliased by its
    condition index so several hops through the same tables coexist."""
    f, d = f"f{index}", f"d{index}"
    tables = [TableRef(cond.fact, f), TableRef(cond.dim, d)]
    joins = [
        JoinCondition(ColumnRef("e", "id"), ColumnRef(f, f"{entity}_id")),
        JoinCondition(ColumnRef(f, f"{cond.dim}_id"), ColumnRef(d, "id")),
    ]
    predicates = [Predicate(ColumnRef(d, "name"), Op.EQ, cond.label)]
    if cond.qualifier is not None:
        q = f"q{index}"
        tables.append(TableRef(cond.qualifier, q))
        joins.append(
            JoinCondition(
                ColumnRef(f, f"{cond.qualifier}_id"), ColumnRef(q, "id")
            )
        )
        predicates.append(
            Predicate(ColumnRef(q, "name"), Op.EQ, cond.qualifier_label)
        )
    return tables, joins, predicates


@dataclass(frozen=True)
class SyntheticIntent:
    """A realised intent: spec, compiled query, ground truth, examples.

    ``index`` is the intent's position in the *full* (unmasked) scenario
    — it keys the example-derivation RNG stream, so a shrunk scenario
    re-derives the same example draw for the surviving intent."""

    index: int
    spec: IntentSpec
    query: AnyQuery = field(compare=False)
    ground_truth: Tuple[Any, ...] = ()
    examples: Tuple[str, ...] = ()

    @property
    def ground_truth_keys(self) -> frozenset:
        return frozenset(self.ground_truth)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "spec": self.spec.to_dict(),
            "ground_truth": list(self.ground_truth),
            "examples": list(self.examples),
        }


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------
def _observed(db: Database, table: str, column: str) -> List[Any]:
    """Non-null values of a column, in row order (frequency-weighted
    sampling pool)."""
    return [v for v in db.relation(table).column(column) if v is not None]


def _sample_assoc(
    rng, db: Database, plan: SchemaPlan, fact, config: IntentSamplerConfig
) -> Optional[AssocCondition]:
    pool = _observed(db, fact.name, fact.dim_column)
    if not pool:
        return None
    dim_id = pool[int(rng.integers(0, len(pool)))]
    label = plan.dimension(fact.dim).labels[dim_id - 1]
    qualifier = qualifier_label = None
    if (
        fact.qualifier is not None
        and rng.random() < config.joins.p_qualifier_filter
    ):
        qual_pool = _observed(db, fact.name, fact.qualifier_column)
        if qual_pool:
            qual_id = qual_pool[int(rng.integers(0, len(qual_pool)))]
            qualifier = fact.qualifier
            qualifier_label = plan.dimension(fact.qualifier).labels[qual_id - 1]
    having_min = None
    if rng.random() < config.aggregates.p_having:
        having_min = int(
            rng.integers(2, config.aggregates.max_having_count + 1)
        )
    return AssocCondition(
        fact=fact.name,
        dim=fact.dim,
        label=label,
        qualifier=qualifier,
        qualifier_label=qualifier_label,
        having_min=having_min,
    )


def _sample_attr(rng, db: Database, ent: EntityPlan, attr, config) -> Optional[AttrCondition]:
    pool = _observed(db, ent.name, attr.name)
    if not pool:
        return None
    pivot = pool[int(rng.integers(0, len(pool)))]
    if not attr.is_numeric:
        return AttrCondition(attr=attr.name, op="=", value=pivot)
    op = weighted_choice(
        rng, _NUMERIC_OPS, config.predicates.numeric_op_weights
    )
    if op == "BETWEEN":
        other = pool[int(rng.integers(0, len(pool)))]
        low, high = sorted((pivot, other))
        return AttrCondition(attr=attr.name, op="BETWEEN", value=low, high=high)
    return AttrCondition(attr=attr.name, op=op, value=pivot)


def _draw_spec(
    rng, db: Database, plan: SchemaPlan, config: IntentSamplerConfig
) -> IntentSpec:
    ent = plan.entities[int(rng.integers(0, len(plan.entities)))]
    counts = list(range(len(config.joins.condition_weights)))
    n_assoc = weighted_choice(rng, counts, config.joins.condition_weights)
    n_assoc = min(n_assoc, len(ent.facts))
    fact_order = rng.permutation(len(ent.facts))
    conditions: List[Condition] = []
    for pos in fact_order[:n_assoc]:
        cond = _sample_assoc(rng, db, plan, ent.facts[int(pos)], config)
        if cond is not None:
            conditions.append(cond)
    counts = list(range(len(config.predicates.predicate_weights)))
    n_pred = weighted_choice(rng, counts, config.predicates.predicate_weights)
    n_pred = min(n_pred, len(ent.attributes))
    attr_order = rng.permutation(len(ent.attributes))
    for pos in attr_order[:n_pred]:
        cond = _sample_attr(rng, db, ent, ent.attributes[int(pos)], config)
        if cond is not None:
            conditions.append(cond)
    return IntentSpec(entity=ent.name, conditions=tuple(conditions))


def _ground_truth(db: Database, spec: IntentSpec) -> Tuple[Any, ...]:
    """Sorted entity keys the intent selects (reference engine)."""
    rows = execute(db, spec.query()).rows
    return tuple(sorted({row[0] for row in rows}))


def _fallback_spec(db: Database, plan: SchemaPlan) -> Optional[IntentSpec]:
    """A deterministic last-resort intent: the first entity's first fact
    filtered on its most common dimension label.  Used when rejection
    sampling keeps missing the acceptance window (tiny masked scenarios)."""
    for ent in plan.entities:
        total = len(db.relation(ent.name))
        for fact in ent.facts:
            pool = _observed(db, fact.name, fact.dim_column)
            if not pool:
                continue
            dim_id, _ = Counter(pool).most_common(1)[0]
            label = plan.dimension(fact.dim).labels[dim_id - 1]
            spec = IntentSpec(
                entity=ent.name,
                conditions=(
                    AssocCondition(fact=fact.name, dim=fact.dim, label=label),
                ),
            )
            if 2 <= len(_ground_truth(db, spec)) < total:
                return spec
    return None


def sample_intent_specs(
    plan: SchemaPlan,
    db: Database,
    config: IntentSamplerConfig,
    seed: int,
) -> List[IntentSpec]:
    """Rejection-sample up to ``config.intents`` accepted intent specs.

    Each intent slot draws from its own RNG stream
    (``synth/intents/<k>``), so the number of attempts one slot burns
    never shifts another slot's draws."""
    specs: List[IntentSpec] = []
    for k in range(config.intents):
        rng = make_rng(seed, f"synth/intents/{k}")
        for _ in range(config.attempts):
            spec = _draw_spec(rng, db, plan, config)
            keys = _ground_truth(db, spec)
            total = len(db.relation(spec.entity))
            if (
                config.min_result
                <= len(keys)
                <= config.max_result_fraction * total
            ):
                specs.append(spec)
                break
    if not specs:
        fallback = _fallback_spec(db, plan)
        if fallback is not None:
            specs.append(fallback)
    return specs


def derive_examples(
    intent_index: int,
    spec: IntentSpec,
    ground_truth: Sequence[Any],
    db: Database,
    config: IntentSamplerConfig,
    seed: int,
) -> Tuple[str, ...]:
    """Sample an example set (display values) from the ground truth.

    Streamed by the intent's *full-scenario* index so masked replays
    draw identically.  Examples are unique display values — duplicated
    displays would collapse into one example anyway."""
    rng = make_rng(seed, f"synth/examples/{intent_index}")
    relation = db.relation(spec.entity)
    by_key = dict(zip(relation.column("id"), relation.column("name")))
    displays: List[str] = []
    seen: set = set()
    for key in ground_truth:
        name = by_key[key]
        if name not in seen:
            seen.add(name)
            displays.append(name)
    size = min(span_draw(rng, config.examples), len(displays))
    chosen = rng.choice(len(displays), size=size, replace=False)
    return tuple(displays[int(i)] for i in sorted(chosen))
