"""Relation materialisation for sampled schema plans.

Row sampling is *per-table streamed*: every table draws from
``make_rng(seed, "synth/data/<table>")``, so the rows of one table never
depend on how many draws another table consumed.  That property is what
makes the shrinker sound — a masked scenario reuses the full scenario's
rows verbatim (projected through :func:`project_rows`) instead of
re-sampling, so a minimized repro still contains the exact tuples that
triggered the failure.

The association generator plants the paper's statistical structure at
miniature scale: Zipfian per-entity activity, a fraction of entities
with no associations at all, and per-entity *dimension affinity* — an
entity's associations concentrate on one preferred dimension value,
which is precisely what gives derived semantic-property filters the
association strength (θ ≥ τa) abduction needs to find them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..datasets.seeds import make_rng, span_draw, zipf_weights
from ..relational import Database
from .config import DataSamplerConfig
from .schema_gen import EntityPlan, FactPlan, SchemaPlan

Rows = Dict[str, List[Tuple[Any, ...]]]


def _entity_rows(
    ent: EntityPlan, config: DataSamplerConfig, seed: int, count: int
) -> List[Tuple[Any, ...]]:
    rng = make_rng(seed, f"synth/data/{ent.name}")
    rows: List[Tuple[Any, ...]] = []
    names: List[str] = []
    for i in range(count):
        if names and rng.random() < config.duplicate_display_rate:
            name = names[int(rng.integers(0, len(names)))]
        else:
            name = f"{ent.name.capitalize()} {i:03d}"
        names.append(name)
        row: List[Any] = [i + 1, name]
        for attr in ent.attributes:
            if attr.nullable and rng.random() < config.null_rate:
                row.append(None)
            elif attr.is_numeric:
                row.append(int(rng.integers(attr.low, attr.high + 1)))
            else:
                row.append(attr.values[int(rng.integers(0, len(attr.values)))])
        rows.append(tuple(row))
    return rows


def _fact_rows(
    fact: FactPlan,
    plan: SchemaPlan,
    config: DataSamplerConfig,
    seed: int,
    entity_count: int,
) -> List[Tuple[Any, ...]]:
    rng = make_rng(seed, f"synth/data/{fact.name}")
    dim_size = len(plan.dimension(fact.dim).labels)
    qual_size = (
        len(plan.dimension(fact.qualifier).labels)
        if fact.qualifier is not None
        else 0
    )
    # Zipfian activity, shuffled so the most active entity is not always
    # id 1; normalised to mean 1 so ``mean_associations`` stays the mean.
    weights = zipf_weights(entity_count, config.zipf_exponent)
    weights = weights / weights.mean()
    activity = rng.permutation(weights)

    rows: List[Tuple[Any, ...]] = []
    rid = 0
    for entity_id in range(1, entity_count + 1):
        if rng.random() < config.inactive_rate:
            continue
        preferred_dim = int(rng.integers(1, dim_size + 1))
        preferred_qual = (
            int(rng.integers(1, qual_size + 1)) if qual_size else 0
        )
        count = int(
            rng.poisson(config.mean_associations * activity[entity_id - 1])
        )
        for _ in range(count):
            if rng.random() < config.affinity:
                dim_id = preferred_dim
            else:
                dim_id = int(rng.integers(1, dim_size + 1))
            rid += 1
            row: List[Any] = [rid, entity_id, dim_id]
            if qual_size:
                if rng.random() < config.affinity:
                    row.append(preferred_qual)
                else:
                    row.append(int(rng.integers(1, qual_size + 1)))
            rows.append(tuple(row))
    return rows


def sample_rows(
    plan: SchemaPlan, config: DataSamplerConfig, seed: int
) -> Rows:
    """Rows for every table of the *full* plan, per-table streamed."""
    sizing = make_rng(seed, "synth/data/sizing")
    rows: Rows = {}
    for dim in plan.dimensions:
        rows[dim.name] = [
            (i + 1, label) for i, label in enumerate(dim.labels)
        ]
    for ent in plan.entities:
        count = span_draw(sizing, config.entity_rows)
        rows[ent.name] = _entity_rows(ent, config, seed, count)
        for fact in ent.facts:
            rows[fact.name] = _fact_rows(fact, plan, config, seed, count)
    return rows


def project_rows(full_plan: SchemaPlan, masked_plan: SchemaPlan, rows: Rows) -> Rows:
    """Project full-plan rows onto a masked plan.

    Dropped tables disappear; dropped entity attributes and dropped
    qualifier columns are removed positionally, keeping every surviving
    cell byte-identical to the full scenario.
    """
    out: Rows = {}
    for dim in masked_plan.dimensions:
        out[dim.name] = rows[dim.name]
    for ent in masked_plan.entities:
        full_ent = full_plan.entity(ent.name)
        keep = [0, 1] + [
            2 + i
            for i, attr in enumerate(full_ent.attributes)
            if any(a.name == attr.name for a in ent.attributes)
        ]
        if len(keep) == 2 + len(full_ent.attributes):
            out[ent.name] = rows[ent.name]
        else:
            out[ent.name] = [
                tuple(row[i] for i in keep) for row in rows[ent.name]
            ]
        for fact in ent.facts:
            full_fact = full_ent.fact(fact.name)
            if full_fact.qualifier is not None and fact.qualifier is None:
                out[fact.name] = [row[:3] for row in rows[fact.name]]
            else:
                out[fact.name] = rows[fact.name]
    return out


def build_database(plan: SchemaPlan, rows: Rows, name: str = "synth") -> Database:
    """Create and bulk-load a :class:`Database` from a plan + its rows."""
    db = Database(name)
    for schema in plan.table_schemas():
        db.create_table(schema)
        db.bulk_load(schema.name, rows[schema.name])
    db.check_integrity()
    return db
