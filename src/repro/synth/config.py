"""Weighted sampler configurations for the synthetic scenario generator.

One frozen dataclass per sampling concern, in the style of seeded
``RandomSqlGenerator`` sampler configs: the schema sampler, the data
sampler, and the three intent-shape samplers (joins, predicates,
aggregates).  :class:`ScenarioConfig` bundles them with the seed and the
shrinker masks; it is the *complete* description of a scenario — the
generator is a pure function of it, and the fuzz corpus serialises
nothing else.

All ranges are inclusive ``(low, high)`` pairs.  Weight tuples are
unnormalised; index ``i`` weights the outcome ``i`` (e.g.
``condition_weights[2]`` is the weight of sampling two association
conditions).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

Range = Tuple[int, int]


def _check_range(name: str, value: Range, minimum: int = 0) -> None:
    low, high = value
    if low > high:
        raise ValueError(f"{name}: low {low} > high {high}")
    if low < minimum:
        raise ValueError(f"{name}: low {low} < minimum {minimum}")


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check_weights(name: str, weights: Tuple[float, ...]) -> None:
    if not weights or all(w <= 0 for w in weights):
        raise ValueError(f"{name} needs at least one positive weight")
    if any(w < 0 for w in weights):
        raise ValueError(f"{name} must be non-negative, got {weights}")


@dataclass(frozen=True)
class SchemaSamplerConfig:
    """Shape of the sampled schema graph."""

    entity_tables: Range = (1, 2)
    """Entity tables (each gets a key, a display attribute, and direct
    property attributes)."""

    dim_tables: Range = (2, 4)
    """Dimension tables (small ``(id, name)`` value domains)."""

    dim_values: Range = (3, 8)
    """Distinct labels per dimension table."""

    fact_tables: Range = (1, 3)
    """Fact tables *per entity*, each an entity↔dimension association
    (capped by the number of dimension tables)."""

    numeric_attrs: Range = (1, 2)
    """Direct INT property attributes per entity table."""

    categorical_attrs: Range = (0, 2)
    """Direct TEXT property attributes per entity table."""

    categorical_values: Range = (2, 5)
    """Distinct values per categorical attribute."""

    numeric_span: Range = (8, 60)
    """Width of the value range a numeric attribute draws from."""

    p_qualifier: float = 0.2
    """Probability a fact table carries a qualifier column splitting its
    associations by a second dimension (the paper's castinfo.role_id)."""

    p_nullable: float = 0.35
    """Probability a direct attribute column is nullable."""

    def __post_init__(self) -> None:
        _check_range("entity_tables", self.entity_tables, 1)
        _check_range("dim_tables", self.dim_tables, 1)
        _check_range("dim_values", self.dim_values, 1)
        _check_range("fact_tables", self.fact_tables, 1)
        _check_range("numeric_attrs", self.numeric_attrs)
        _check_range("categorical_attrs", self.categorical_attrs)
        _check_range("categorical_values", self.categorical_values, 1)
        _check_range("numeric_span", self.numeric_span, 1)
        _check_fraction("p_qualifier", self.p_qualifier)
        _check_fraction("p_nullable", self.p_nullable)


@dataclass(frozen=True)
class DataSamplerConfig:
    """Cardinality and skew of the materialised relations."""

    entity_rows: Range = (40, 90)
    """Rows per entity table."""

    mean_associations: float = 3.0
    """Mean fact rows per entity per fact table (scaled by activity)."""

    affinity: float = 0.8
    """Probability an association reuses the entity's preferred dimension
    value.  High affinity concentrates association mass, giving derived
    semantic-property filters the θ ≥ τa strength abduction needs."""

    zipf_exponent: float = 1.1
    """Zipfian activity skew across entities (a few very active ones)."""

    inactive_rate: float = 0.1
    """Fraction of entities with no associations at all."""

    null_rate: float = 0.08
    """NULL fraction within a nullable attribute column."""

    duplicate_display_rate: float = 0.0
    """Fraction of entity display names intentionally duplicated
    (exercises the disambiguation stage; 0 keeps names unique)."""

    def __post_init__(self) -> None:
        _check_range("entity_rows", self.entity_rows, 1)
        if self.mean_associations < 0:
            raise ValueError(
                f"mean_associations must be >= 0, got {self.mean_associations}"
            )
        if self.zipf_exponent <= 0:
            raise ValueError(
                f"zipf_exponent must be > 0, got {self.zipf_exponent}"
            )
        _check_fraction("affinity", self.affinity)
        _check_fraction("inactive_rate", self.inactive_rate)
        _check_fraction("null_rate", self.null_rate)
        _check_fraction("duplicate_display_rate", self.duplicate_display_rate)


@dataclass(frozen=True)
class JoinSamplerConfig:
    """How many association (join) conditions an intent draws."""

    condition_weights: Tuple[float, ...] = (0.25, 0.5, 0.25)
    """Weight of sampling 0, 1, 2, ... association conditions (each is an
    entity ⋈ fact ⋈ dimension hop filtered on one dimension label)."""

    p_qualifier_filter: float = 0.35
    """Probability a condition on a qualified fact table also filters the
    qualifier dimension (e.g. "... as Director")."""

    def __post_init__(self) -> None:
        _check_weights("condition_weights", self.condition_weights)
        _check_fraction("p_qualifier_filter", self.p_qualifier_filter)


@dataclass(frozen=True)
class PredicateSamplerConfig:
    """How many direct-attribute predicates an intent draws, and of what
    operator mix."""

    predicate_weights: Tuple[float, ...] = (0.3, 0.5, 0.2)
    """Weight of sampling 0, 1, 2, ... direct-attribute predicates."""

    numeric_op_weights: Tuple[float, float, float] = (0.35, 0.35, 0.3)
    """Unnormalised weights of >=, <=, BETWEEN on numeric attributes
    (categorical attributes always draw equality)."""

    def __post_init__(self) -> None:
        _check_weights("predicate_weights", self.predicate_weights)
        _check_weights("numeric_op_weights", self.numeric_op_weights)


@dataclass(frozen=True)
class AggregateSamplerConfig:
    """HAVING count(*) shapes attached to association conditions."""

    p_having: float = 0.3
    """Probability an association condition carries a
    ``HAVING count(*) >= k`` aggregate (its own intersect block)."""

    max_having_count: int = 4
    """Upper bound of the sampled ``k`` (lower bound is 2)."""

    def __post_init__(self) -> None:
        _check_fraction("p_having", self.p_having)
        if self.max_having_count < 2:
            raise ValueError(
                f"max_having_count must be >= 2, got {self.max_having_count}"
            )


@dataclass(frozen=True)
class IntentSamplerConfig:
    """The ground-truth intent sampler: how many intents, their shape
    samplers, and the acceptance window for their result cardinality."""

    intents: int = 3
    """Target intents per scenario (fewer if sampling keeps rejecting)."""

    examples: Range = (3, 5)
    """Example-set size drawn per intent (capped by |ground truth|)."""

    min_result: int = 4
    """Reject intents whose ground truth has fewer tuples than this."""

    max_result_fraction: float = 0.6
    """Reject intents selecting more than this fraction of the entity
    table (near-universal intents are uninformative)."""

    attempts: int = 40
    """Sampling attempts per intent before giving up."""

    joins: JoinSamplerConfig = field(default_factory=JoinSamplerConfig)
    predicates: PredicateSamplerConfig = field(
        default_factory=PredicateSamplerConfig
    )
    aggregates: AggregateSamplerConfig = field(
        default_factory=AggregateSamplerConfig
    )

    def __post_init__(self) -> None:
        if self.intents < 1:
            raise ValueError(f"intents must be >= 1, got {self.intents}")
        _check_range("examples", self.examples, 1)
        if self.min_result < 1:
            raise ValueError(f"min_result must be >= 1, got {self.min_result}")
        _check_fraction("max_result_fraction", self.max_result_fraction)
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


@dataclass(frozen=True)
class ScenarioConfig:
    """Complete, serialisable description of one synthetic scenario.

    The generator is a pure function of this object: equal configs
    produce byte-identical schemas, data, intents, and example sets in
    any process.  The shrinker fields are post-hoc masks — they *filter*
    the fully-generated scenario instead of re-rolling it, so a
    minimized repro keeps the exact rows and draws of the original
    failure (dropping a table never shifts another table's randomness).
    """

    seed: int = 0
    schema: SchemaSamplerConfig = field(default_factory=SchemaSamplerConfig)
    data: DataSamplerConfig = field(default_factory=DataSamplerConfig)
    intents: IntentSamplerConfig = field(default_factory=IntentSamplerConfig)

    # --- shrinker masks (empty = the full scenario) --------------------
    keep_intents: Optional[Tuple[int, ...]] = None
    """Indices of sampled intents to keep (None keeps all)."""

    drop_tables: Tuple[str, ...] = ()
    """Fact/dimension/entity tables removed from the scenario."""

    drop_columns: Tuple[str, ...] = ()
    """Direct attribute columns removed, as ``table.column``."""

    drop_conditions: Tuple[Tuple[int, int], ...] = ()
    """``(intent_index, condition_index)`` pairs removed from intents."""

    def __post_init__(self) -> None:
        if self.keep_intents is not None:
            object.__setattr__(self, "keep_intents", tuple(self.keep_intents))
        object.__setattr__(self, "drop_tables", tuple(self.drop_tables))
        object.__setattr__(self, "drop_columns", tuple(self.drop_columns))
        object.__setattr__(
            self,
            "drop_conditions",
            tuple(tuple(pair) for pair in self.drop_conditions),
        )

    @property
    def is_masked(self) -> bool:
        """Whether any shrinker mask is active."""
        return bool(
            self.keep_intents is not None
            or self.drop_tables
            or self.drop_columns
            or self.drop_conditions
        )

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """The same sampler configuration at a different seed."""
        return replace(self, seed=seed)

    def with_masks(
        self,
        keep_intents: Optional[Tuple[int, ...]] = None,
        drop_tables: Tuple[str, ...] = (),
        drop_columns: Tuple[str, ...] = (),
        drop_conditions: Tuple[Tuple[int, int], ...] = (),
    ) -> "ScenarioConfig":
        """A copy with the masks replaced wholesale."""
        return replace(
            self,
            keep_intents=keep_intents,
            drop_tables=drop_tables,
            drop_columns=drop_columns,
            drop_conditions=drop_conditions,
        )

    # ------------------------------------------------------------------
    # corpus serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (tuples become lists)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ScenarioConfig":
        """Rebuild from :meth:`to_dict` output (lists back to tuples)."""
        intents_raw = dict(raw.get("intents", {}))
        for key in ("joins", "predicates", "aggregates"):
            if key in intents_raw:
                intents_raw[key] = _SUB_SAMPLERS[key](
                    **_tupled(intents_raw[key])
                )
        keep = raw.get("keep_intents")
        return cls(
            seed=raw.get("seed", 0),
            schema=SchemaSamplerConfig(**_tupled(raw.get("schema", {}))),
            data=DataSamplerConfig(**_tupled(raw.get("data", {}))),
            intents=IntentSamplerConfig(**_tupled(intents_raw)),
            keep_intents=None if keep is None else tuple(keep),
            drop_tables=tuple(raw.get("drop_tables", ())),
            drop_columns=tuple(raw.get("drop_columns", ())),
            drop_conditions=tuple(
                tuple(pair) for pair in raw.get("drop_conditions", ())
            ),
        )


_SUB_SAMPLERS = {
    "joins": JoinSamplerConfig,
    "predicates": PredicateSamplerConfig,
    "aggregates": AggregateSamplerConfig,
}


def _tupled(raw: Dict[str, Any]) -> Dict[str, Any]:
    """JSON lists back to the tuples the dataclasses expect."""
    return {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in raw.items()
    }
