"""The differential fuzz harness over all engines and the abduction loop.

Per scenario, the harness:

1. differential-tests the *ground-truth* intent query on the original
   database across every registered engine (interpreted, vectorized,
   sqlite, sharded, dispatch), asserting byte-identical canonical
   results;
2. runs each intent's example set through the full discovery pipeline
   (offline αDB build + the five online stages);
3. differential-tests the *abduced* query (display form and keyed form)
   on the αDB across the same engines;
4. asserts the abduced output covers the examples (abduction's
   correctness contract: every example is in the result); and
5. compares the abduced result set against the known ground truth,
   recording precision/recall — a hard failure only under
   ``strict_gt``, because abduction legitimately generalises beyond an
   example draw.

Every engine additionally runs behind the :mod:`repro.analysis` plan
verifier (an :class:`~repro.analysis.AnalyzingBackend` gate), and every
query the harness touches — sampled intents and abduced forms alike —
must verify *fully clean*: any diagnostic at all, warning included, is
an ``analysis`` failure.  That is the verifier's no-false-positive
guarantee, fuzzed on every CI run.

Failures carry the scenario seed + intent index, which is all the
shrinker needs: :func:`fuzz_seeds` minimizes each failing scenario
(dropping intents, tables, columns, conditions while the same failure
kind reproduces) and writes the result to the regression corpus.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..analysis import format_diagnostics, verify_query
from ..analysis.gate import AnalyzingBackend
from ..core.config import SquidConfig
from ..core.squid import SquidSystem
from ..relational import Database
from ..sql.ast import AnyQuery
from ..sql.engine import BACKENDS, ExecutionBackend, create_backend
from ..sql.estimator import StatisticsProvider
from ..sql.formatter import format_query
from ..sql.result import ResultSet
from .config import ScenarioConfig
from .scenario import (
    Scenario,
    ScenarioMaskError,
    default_scenario_config,
    generate_scenario,
)

#: All five engine routes, reference first.  ``sorted(BACKENDS)`` would
#: also work; the explicit order keeps failure output stable and makes
#: the acceptance criterion ("all five routes") greppable.
ENGINE_ORDER: Tuple[str, ...] = (
    "interpreted",
    "vectorized",
    "sqlite",
    "sharded",
    "dispatch",
)
REFERENCE_ENGINE = ENGINE_ORDER[0]

#: Failure kinds the harness emits.
KIND_GENERATION = "generation"
KIND_ERROR = "error"
KIND_DIVERGENCE = "engine_divergence"
KIND_COVERAGE = "coverage"
KIND_GROUND_TRUTH = "ground_truth"
KIND_ANALYSIS = "analysis"


def canonical_result(result: ResultSet) -> bytes:
    """The byte form of a result set the engines must agree on:
    column labels plus rows sorted by repr (engines make no ordering
    promises, but must return the same multiset with the same Python
    value types — ``repr`` surfaces type drift like 1 vs True)."""
    rows = sorted(result.rows, key=repr)
    return repr((tuple(result.columns), rows)).encode("utf-8")


def _digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()[:12]


@dataclass(frozen=True)
class ScenarioFailure:
    """One assertion the harness saw fail."""

    seed: int
    kind: str
    detail: str
    intent_index: Optional[int] = None

    def __str__(self) -> str:
        where = (
            f"seed {self.seed}"
            if self.intent_index is None
            else f"seed {self.seed} intent {self.intent_index}"
        )
        return f"[{self.kind}] {where}: {self.detail}"


@dataclass
class ScenarioReport:
    """Outcome of differential-testing one scenario."""

    seed: int
    intents: int = 0
    comparisons: int = 0
    """Engine-pair byte-identity comparisons performed."""

    gt_exact: int = 0
    """Intents whose abduced result equals the ground truth exactly."""

    gt_precision: float = 1.0
    gt_recall: float = 1.0
    """Averages over the scenario's intents (1.0 when empty)."""

    failures: List[ScenarioFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class FuzzReport:
    """Aggregate of a fuzzing run over many seeds."""

    engines: Tuple[str, ...]
    scenarios: int = 0
    intents: int = 0
    comparisons: int = 0
    gt_exact: int = 0
    failures: List[ScenarioFailure] = field(default_factory=list)
    corpus_entries: List[str] = field(default_factory=list)
    """Paths of minimized repro entries written this run."""

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"{self.scenarios} scenarios, {self.intents} intents "
            f"differential-tested across {len(self.engines)} engine routes "
            f"({', '.join(self.engines)})",
            f"{self.comparisons} byte-identity comparisons, "
            f"{self.gt_exact}/{self.intents} intents matched ground truth "
            "exactly",
        ]
        if self.failures:
            lines.append(f"{len(self.failures)} FAILURES:")
            lines += [f"  {failure}" for failure in self.failures]
        else:
            lines.append("no divergences")
        if self.corpus_entries:
            lines.append("minimized repros written:")
            lines += [f"  {path}" for path in self.corpus_entries]
        return "\n".join(lines)


class DifferentialHarness:
    """Differential-tests one scenario across every engine route."""

    def __init__(
        self,
        scenario: Scenario,
        squid_config: Optional[SquidConfig] = None,
        strict_gt: bool = False,
        engines: Tuple[str, ...] = ENGINE_ORDER,
    ) -> None:
        unknown = set(engines) - set(BACKENDS)
        if unknown:
            raise ValueError(f"unknown engines: {sorted(unknown)}")
        if engines[0] != REFERENCE_ENGINE:
            raise ValueError(
                f"engines must lead with the reference ({REFERENCE_ENGINE!r})"
            )
        self.scenario = scenario
        self.squid_config = squid_config or SquidConfig()
        self.strict_gt = strict_gt
        self.engines = engines

    # ------------------------------------------------------------------
    def _backends(
        self, db: Database, statistics: StatisticsProvider
    ) -> Dict[str, ExecutionBackend]:
        """One backend per engine route, each behind the plan-verifier
        gate (all gates share the database's stamped statistics memo)."""
        return {
            name: AnalyzingBackend(
                create_backend(name, db), statistics=statistics
            )
            for name in self.engines
        }

    def _verify_plan(
        self,
        statistics: StatisticsProvider,
        query: AnyQuery,
        label: str,
        report: ScenarioReport,
        intent_index: Optional[int],
    ) -> None:
        """Assert the plan verifier is fully clean on ``query``.

        Every query the harness sees is legitimately sampled or abduced,
        so *any* diagnostic — warning included — is a verifier false
        positive and recorded as an ``analysis`` failure."""
        diagnostics = verify_query(statistics.db, query, statistics=statistics)
        if diagnostics:
            report.failures.append(
                ScenarioFailure(
                    seed=self.scenario.seed,
                    kind=KIND_ANALYSIS,
                    intent_index=intent_index,
                    detail=(
                        f"plan verifier flagged {label}: "
                        f"{format_diagnostics(diagnostics)} "
                        f"for {format_query(query)}"
                    ),
                )
            )

    def _differential(
        self,
        backends: Dict[str, ExecutionBackend],
        query: AnyQuery,
        label: str,
        report: ScenarioReport,
        intent_index: Optional[int],
    ) -> Optional[ResultSet]:
        """Run ``query`` on every engine; record divergences from the
        reference.  Returns the reference result (None if it errored)."""
        try:
            reference = backends[REFERENCE_ENGINE].execute(query)
        except Exception as exc:
            report.failures.append(
                ScenarioFailure(
                    seed=self.scenario.seed,
                    kind=KIND_ERROR,
                    intent_index=intent_index,
                    detail=f"{REFERENCE_ENGINE} failed on {label}: "
                    f"{type(exc).__name__}: {exc}",
                )
            )
            return None
        expected = canonical_result(reference)
        for name in self.engines[1:]:
            try:
                got = canonical_result(backends[name].execute(query))
            except Exception as exc:
                report.failures.append(
                    ScenarioFailure(
                        seed=self.scenario.seed,
                        kind=KIND_ERROR,
                        intent_index=intent_index,
                        detail=f"{name} failed on {label}: "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            report.comparisons += 1
            if got != expected:
                report.failures.append(
                    ScenarioFailure(
                        seed=self.scenario.seed,
                        kind=KIND_DIVERGENCE,
                        intent_index=intent_index,
                        detail=(
                            f"{name} != {REFERENCE_ENGINE} on {label} "
                            f"({_digest(got)} vs {_digest(expected)}): "
                            f"{format_query(query)}"
                        ),
                    )
                )
        return reference

    # ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        scenario = self.scenario
        report = ScenarioReport(seed=scenario.seed, intents=len(scenario.intents))
        if not scenario.intents:
            return report

        original_stats = StatisticsProvider(scenario.db)
        original_backends = self._backends(scenario.db, original_stats)
        squid = SquidSystem.build(
            scenario.db, scenario.metadata, self.squid_config
        )
        adb_stats = StatisticsProvider(squid.adb.db)
        adb_backends = self._backends(squid.adb.db, adb_stats)

        precisions: List[float] = []
        recalls: List[float] = []
        for intent in scenario.intents:
            k = intent.index
            # (1) the known ground-truth query, on the original schema
            self._verify_plan(
                original_stats,
                intent.query,
                f"ground-truth query of intent {k}",
                report,
                k,
            )
            self._differential(
                original_backends,
                intent.query,
                f"ground-truth query of intent {k}",
                report,
                k,
            )
            # (2) the full discovery pipeline
            try:
                result = squid.discover(list(intent.examples))
            except Exception as exc:
                report.failures.append(
                    ScenarioFailure(
                        seed=scenario.seed,
                        kind=KIND_ERROR,
                        intent_index=k,
                        detail=f"discover({list(intent.examples)!r}) raised "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            # (3) the abduced query, display and keyed form, on the αDB
            self._verify_plan(
                adb_stats,
                result.query,
                f"abduced query of intent {k}",
                report,
                k,
            )
            self._verify_plan(
                adb_stats,
                result.keyed_query,
                f"abduced keyed query of intent {k}",
                report,
                k,
            )
            display_result = self._differential(
                adb_backends,
                result.query,
                f"abduced query of intent {k}",
                report,
                k,
            )
            keyed_result = self._differential(
                adb_backends,
                result.keyed_query,
                f"abduced keyed query of intent {k}",
                report,
                k,
            )
            if display_result is None or keyed_result is None:
                continue
            # (4) example coverage
            values = set(display_result.single_column())
            missing = [e for e in intent.examples if e not in values]
            if missing:
                report.failures.append(
                    ScenarioFailure(
                        seed=scenario.seed,
                        kind=KIND_COVERAGE,
                        intent_index=k,
                        detail=f"abduced result misses examples {missing!r}",
                    )
                )
                continue
            # (5) ground-truth comparison
            abduced_keys = {row[0] for row in keyed_result.rows}
            truth = intent.ground_truth_keys
            overlap = len(abduced_keys & truth)
            precision = overlap / len(abduced_keys) if abduced_keys else 0.0
            recall = overlap / len(truth) if truth else 1.0
            precisions.append(precision)
            recalls.append(recall)
            if abduced_keys == truth:
                report.gt_exact += 1
            elif self.strict_gt:
                report.failures.append(
                    ScenarioFailure(
                        seed=scenario.seed,
                        kind=KIND_GROUND_TRUTH,
                        intent_index=k,
                        detail=(
                            f"abduced {len(abduced_keys)} keys vs "
                            f"{len(truth)} ground truth "
                            f"(precision {precision:.2f}, recall {recall:.2f})"
                            f" for {intent.spec.describe()}"
                        ),
                    )
                )
        if precisions:
            report.gt_precision = sum(precisions) / len(precisions)
            report.gt_recall = sum(recalls) / len(recalls)
        return report


# ----------------------------------------------------------------------
# fuzz driver
# ----------------------------------------------------------------------
def parse_seed_range(text: str) -> range:
    """``"0:200"`` → range(0, 200); ``"17"`` → range(17, 18)."""
    raw = text.strip()
    if ":" in raw:
        start_text, _, stop_text = raw.partition(":")
        start, stop = int(start_text), int(stop_text)
        if stop <= start:
            raise ValueError(f"empty seed range {text!r}")
        return range(start, stop)
    seed = int(raw)
    return range(seed, seed + 1)


def run_scenario_config(
    config: ScenarioConfig,
    squid_config: Optional[SquidConfig] = None,
    strict_gt: bool = False,
    engines: Tuple[str, ...] = ENGINE_ORDER,
) -> ScenarioReport:
    """Generate + differential-test one scenario config.

    Generation problems (including mask errors) become a single
    ``generation`` failure instead of raising, so the fuzz loop and the
    corpus replayer treat them uniformly."""
    try:
        scenario = generate_scenario(config)
    except ScenarioMaskError:
        raise
    except Exception as exc:
        report = ScenarioReport(seed=config.seed)
        report.failures.append(
            ScenarioFailure(
                seed=config.seed,
                kind=KIND_GENERATION,
                detail=f"{type(exc).__name__}: {exc}",
            )
        )
        return report
    return DifferentialHarness(
        scenario, squid_config=squid_config, strict_gt=strict_gt, engines=engines
    ).run()


def fuzz_seeds(
    seeds: Iterable[int],
    base_config: Optional[ScenarioConfig] = None,
    squid_config: Optional[SquidConfig] = None,
    strict_gt: bool = False,
    engines: Tuple[str, ...] = ENGINE_ORDER,
    corpus_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Differential-fuzz a seed range; optionally write minimized repros.

    ``base_config`` carries non-default sampler knobs (its ``seed`` field
    is replaced per scenario).  When ``corpus_dir`` is set, every failing
    scenario is shrunk (see :func:`repro.synth.corpus.shrink_config`) and
    written there as a replayable JSON entry."""
    from .corpus import CorpusEntry, shrink_config, write_entry

    report = FuzzReport(engines=tuple(engines))
    written: set = set()
    for seed in seeds:
        config = (
            base_config.with_seed(seed)
            if base_config is not None
            else default_scenario_config(seed)
        )
        scenario_report = run_scenario_config(
            config, squid_config=squid_config, strict_gt=strict_gt, engines=engines
        )
        report.scenarios += 1
        report.intents += scenario_report.intents
        report.comparisons += scenario_report.comparisons
        report.gt_exact += scenario_report.gt_exact
        report.failures += scenario_report.failures
        if progress is not None:
            status = "ok" if scenario_report.ok else (
                f"FAIL ({len(scenario_report.failures)})"
            )
            progress(
                f"seed {seed}: {scenario_report.intents} intents, "
                f"{scenario_report.comparisons} comparisons, {status}"
            )
        if corpus_dir is None:
            continue
        for failure in scenario_report.failures:
            key = (failure.seed, failure.kind, failure.intent_index)
            if key in written:
                continue
            written.add(key)
            minimized = shrink_config(
                config,
                lambda candidate, _f=failure: _reproduces(
                    candidate, _f, squid_config, strict_gt, engines
                ),
                focus_intent=failure.intent_index,
            )
            entry = CorpusEntry(
                entry_id=_entry_id(failure),
                kind=failure.kind,
                seed=failure.seed,
                intent_index=failure.intent_index,
                detail=failure.detail,
                expect="fail",
                config=minimized,
            )
            path = write_entry(entry, corpus_dir)
            report.corpus_entries.append(str(path))
            if progress is not None:
                progress(f"  minimized repro -> {path}")
    return report


def _entry_id(failure: ScenarioFailure) -> str:
    suffix = "" if failure.intent_index is None else f"-i{failure.intent_index}"
    return f"seed{failure.seed}-{failure.kind}{suffix}"


def _reproduces(
    config: ScenarioConfig,
    failure: ScenarioFailure,
    squid_config: Optional[SquidConfig],
    strict_gt: bool,
    engines: Tuple[str, ...],
) -> bool:
    """Whether ``config`` still triggers ``failure``'s kind (for the
    shrinker).  Mask errors mean the candidate broke the scenario."""
    try:
        candidate_report = run_scenario_config(
            config, squid_config=squid_config, strict_gt=strict_gt, engines=engines
        )
    except ScenarioMaskError:
        return False
    return any(f.kind == failure.kind for f in candidate_report.failures)
