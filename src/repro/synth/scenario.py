"""Scenario assembly: config → plan → database → metadata → intents.

:func:`generate_scenario` is the one entry point, and it is a *pure
function* of its :class:`ScenarioConfig`: the same config produces a
byte-identical scenario (schema, rows, intents, example sets) in any
process, thread, or fork — the seed-stability tests assert this on the
:meth:`Scenario.fingerprint`.

Shrinker masks are applied *after* full generation: the full plan, full
rows, and full intent list are always sampled first, then masks project
them down.  A masked scenario therefore contains the exact tuples and
intent draws of its parent, which is what lets the corpus shrinker drop
tables/columns/conditions while a failure keeps reproducing.  Masks that
break a surviving intent's references (or empty its ground truth) raise
:class:`ScenarioMaskError` — the shrinker treats that as a rejected
step.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..core.metadata import AdbMetadata
from ..relational import Database
from ..workloads.registry import Workload, WorkloadRegistry
from .config import ScenarioConfig
from .data_gen import build_database, project_rows, sample_rows
from .intents import (
    IntentSpec,
    SyntheticIntent,
    _ground_truth,
    derive_examples,
    sample_intent_specs,
)
from .schema_gen import SchemaPlan, sample_schema


class ScenarioMaskError(ValueError):
    """A shrinker mask produced an unusable scenario (unknown names,
    an intent left referencing dropped tables, or empty ground truth)."""


def default_scenario_config(seed: int = 0) -> ScenarioConfig:
    """The fuzzer's default sampler configuration at ``seed``.

    Deliberately tiny (tens of entity rows, a handful of tables): one
    scenario must build its αDB and differential-run five engines in
    well under a second, so seed ranges in the hundreds stay cheap."""
    return ScenarioConfig(seed=seed)


@dataclass(frozen=True)
class Scenario:
    """One fully-materialised synthetic scenario."""

    config: ScenarioConfig
    plan: SchemaPlan
    db: Database
    metadata: AdbMetadata
    intents: Tuple[SyntheticIntent, ...]

    @property
    def seed(self) -> int:
        return self.config.seed

    @property
    def name(self) -> str:
        suffix = "-min" if self.config.is_masked else ""
        return f"synth-{self.seed}{suffix}"

    # ------------------------------------------------------------------
    # determinism probes
    # ------------------------------------------------------------------
    def canonical_payload(self) -> Dict[str, Any]:
        """Everything that must be byte-stable for one config, as plain
        data: schemas, every row, and every realised intent."""
        schemas = []
        for schema in self.plan.table_schemas():
            schemas.append(
                {
                    "table": schema.name,
                    "columns": [
                        (c.name, c.ctype.value, c.nullable)
                        for c in schema.columns
                    ],
                    "primary_key": schema.primary_key,
                    "foreign_keys": [
                        (fk.column, fk.ref_table, fk.ref_column)
                        for fk in schema.foreign_keys
                    ],
                }
            )
        rows = {
            name: list(self.db.relation(name).rows())
            for name in sorted(self.db.table_names())
        }
        return {
            "seed": self.seed,
            "schemas": schemas,
            "rows": rows,
            "intents": [intent.to_dict() for intent in self.intents],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical payload's repr."""
        blob = repr(self.canonical_payload()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def summary(self) -> Dict[str, Any]:
        """Small human-facing description (the CLI ``generate`` report)."""
        return {
            "scenario": self.name,
            "tables": len(self.db.table_names()),
            "rows": self.db.total_rows(),
            "intents": len(self.intents),
            "example_sets": [list(i.examples) for i in self.intents],
            "fingerprint": self.fingerprint()[:16],
        }

    # ------------------------------------------------------------------
    # workload-registry wiring
    # ------------------------------------------------------------------
    def registry(self) -> WorkloadRegistry:
        """The scenario's intents as a benchmark workload registry —
        interchangeable with the IMDb/DBLP/Adult registries everywhere
        a registry is consumed (CLI, eval loops, serving drivers)."""
        registry = WorkloadRegistry("synth", [])
        registry.extend(
            self._workload(intent) for intent in self.intents
        )
        return registry

    def _workload(self, intent: SyntheticIntent) -> Workload:
        joins, selections = intent.spec.counts()
        return Workload(
            qid=f"SY{self.seed}-{intent.index}",
            dataset="synth",
            description=intent.spec.describe(),
            entity_table=intent.spec.entity,
            entity_key="id",
            display="name",
            query=intent.query,
            num_joins=joins,
            num_selections=selections,
        )


def _masked_spec(
    spec: IntentSpec,
    intent_index: int,
    drop_conditions: Tuple[Tuple[int, int], ...],
) -> IntentSpec:
    dropped = {j for k, j in drop_conditions if k == intent_index}
    if not dropped:
        return spec
    unknown = dropped - set(range(len(spec.conditions)))
    if unknown:
        raise ScenarioMaskError(
            f"intent {intent_index} has no conditions {sorted(unknown)}"
        )
    conditions = tuple(
        cond
        for j, cond in enumerate(spec.conditions)
        if j not in dropped
    )
    return IntentSpec(entity=spec.entity, conditions=conditions)


def generate_scenario(config: ScenarioConfig) -> Scenario:
    """Materialise the scenario described by ``config``."""
    full_plan = sample_schema(config.schema, config.seed)
    full_rows = sample_rows(full_plan, config.data, config.seed)
    full_db = build_database(full_plan, full_rows, name=f"synth-{config.seed}")
    specs = sample_intent_specs(
        full_plan, full_db, config.intents, config.seed
    )

    if config.drop_tables or config.drop_columns:
        try:
            plan = full_plan.masked(config.drop_tables, config.drop_columns)
        except ValueError as exc:
            raise ScenarioMaskError(str(exc)) from None
        rows = project_rows(full_plan, plan, full_rows)
        db = build_database(plan, rows, name=f"synth-{config.seed}-min")
    else:
        plan, db = full_plan, full_db

    if config.keep_intents is None:
        kept = list(range(len(specs)))
    else:
        unknown = set(config.keep_intents) - set(range(len(specs)))
        if unknown:
            raise ScenarioMaskError(
                f"keep_intents references missing intents {sorted(unknown)}"
            )
        kept = sorted(set(config.keep_intents))

    intents: List[SyntheticIntent] = []
    for k in kept:
        spec = _masked_spec(specs[k], k, config.drop_conditions)
        try:
            spec.validate_against(plan)
        except KeyError as exc:
            raise ScenarioMaskError(
                f"intent {k} references dropped schema: {exc}"
            ) from None
        ground_truth = _ground_truth(db, spec)
        if not ground_truth:
            raise ScenarioMaskError(f"intent {k} has empty ground truth")
        examples = derive_examples(
            k, spec, ground_truth, db, config.intents, config.seed
        )
        if not examples:
            raise ScenarioMaskError(f"intent {k} yields no examples")
        intents.append(
            SyntheticIntent(
                index=k,
                spec=spec,
                query=spec.query(),
                ground_truth=ground_truth,
                examples=examples,
            )
        )

    metadata = plan.metadata()
    metadata.validate(db)
    return Scenario(
        config=config,
        plan=plan,
        db=db,
        metadata=metadata,
        intents=tuple(intents),
    )
