"""Seed-deterministic schema plans: star schemas with FK fact graphs.

:func:`sample_schema` turns a :class:`SchemaSamplerConfig` plus a seed
into a :class:`SchemaPlan` — a pure-data description of entity tables,
dimension tables, fact (association) tables, and typed attribute
columns.  The plan mirrors the shape SQuID's offline module expects
(Section 5 of the paper): entities with a key and a display attribute,
small dimension domains, fact tables realising entity↔dimension
associations, optionally split by a qualifier dimension (the
``castinfo.role_id`` pattern).

The plan is *only* names, types, and value domains; no rows.  Rows are
materialised by :mod:`repro.synth.data_gen`, and masking (the shrinker's
drop-table/drop-column operations) happens on the plan level so a
minimized scenario is a projection of the full one, never a re-roll.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..core.metadata import (
    AdbMetadata,
    DimensionSpec,
    EntitySpec,
    QualifierSpec,
)
from ..datasets.seeds import make_rng, span_draw as _span
from ..relational import ColumnDef, ColumnType, ForeignKey, TableSchema
from .config import SchemaSamplerConfig

#: Deterministic name pools.  Tables draw distinct names from a seeded
#: permutation, so different seeds produce differently-named (but always
#: collision-free) schemas.
ENTITY_POOL = ("person", "product", "author", "patient", "vendor", "student")
DIM_POOL = (
    "genre",
    "region",
    "category",
    "role",
    "brand",
    "channel",
    "grade",
    "tier",
    "topic",
    "league",
)
NUMERIC_ATTR_POOL = ("age", "score", "year", "weight", "rank", "level")
CATEGORICAL_ATTR_POOL = ("status", "kind", "klass", "cohort", "badge", "wing")


@dataclass(frozen=True)
class AttributePlan:
    """One direct property column on an entity table."""

    name: str
    ctype: ColumnType
    nullable: bool = False

    low: int = 0
    high: int = 0
    """Inclusive value range (numeric attributes only)."""

    values: Tuple[str, ...] = ()
    """Value domain (categorical attributes only)."""

    @property
    def is_numeric(self) -> bool:
        return self.ctype is ColumnType.INT


@dataclass(frozen=True)
class DimensionPlan:
    """One dimension table ``(id INT PK, name TEXT)``."""

    name: str
    labels: Tuple[str, ...]
    """The full label domain; ``id`` of label ``labels[i]`` is ``i + 1``."""


@dataclass(frozen=True)
class FactPlan:
    """One fact table: an entity↔dimension association.

    Columns: ``id INT PK``, ``{entity}_id`` FK → entity, ``{dim}_id`` FK
    → dimension, and — when ``qualifier`` is set — ``{qualifier}_id`` FK
    → the qualifier dimension, splitting the association into
    sub-families the way ``castinfo.role_id`` splits cast membership by
    role.
    """

    name: str
    entity: str
    dim: str
    qualifier: Optional[str] = None

    @property
    def entity_column(self) -> str:
        return f"{self.entity}_id"

    @property
    def dim_column(self) -> str:
        return f"{self.dim}_id"

    @property
    def qualifier_column(self) -> Optional[str]:
        return None if self.qualifier is None else f"{self.qualifier}_id"


@dataclass(frozen=True)
class EntityPlan:
    """One entity table: key, display name, direct attributes, facts."""

    name: str
    attributes: Tuple[AttributePlan, ...]
    facts: Tuple[FactPlan, ...]

    def attribute(self, name: str) -> AttributePlan:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(f"{self.name} has no attribute {name!r}")

    def fact(self, name: str) -> FactPlan:
        for fact in self.facts:
            if fact.name == name:
                return fact
        raise KeyError(f"{self.name} has no fact table {name!r}")


@dataclass(frozen=True)
class SchemaPlan:
    """The complete sampled schema: entities, dimensions, fact graph."""

    entities: Tuple[EntityPlan, ...]
    dimensions: Tuple[DimensionPlan, ...]

    def dimension(self, name: str) -> DimensionPlan:
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise KeyError(f"no dimension {name!r}")

    def entity(self, name: str) -> EntityPlan:
        for ent in self.entities:
            if ent.name == name:
                return ent
        raise KeyError(f"no entity {name!r}")

    def table_names(self) -> List[str]:
        """Every table of the plan: dimensions, entities, facts."""
        out = [d.name for d in self.dimensions]
        out += [e.name for e in self.entities]
        out += [f.name for e in self.entities for f in e.facts]
        return out

    # ------------------------------------------------------------------
    # DDL / metadata
    # ------------------------------------------------------------------
    def table_schemas(self) -> List[TableSchema]:
        """Relational schemas for every table, creation-ordered (parents
        before children so integrity checks can run incrementally)."""
        out: List[TableSchema] = []
        for dim in self.dimensions:
            out.append(
                TableSchema(
                    dim.name,
                    [
                        ColumnDef("id", ColumnType.INT, nullable=False),
                        ColumnDef("name", ColumnType.TEXT, nullable=False),
                    ],
                    primary_key="id",
                )
            )
        for ent in self.entities:
            columns = [
                ColumnDef("id", ColumnType.INT, nullable=False),
                ColumnDef("name", ColumnType.TEXT, nullable=False),
            ]
            for attr in ent.attributes:
                columns.append(ColumnDef(attr.name, attr.ctype, attr.nullable))
            out.append(TableSchema(ent.name, columns, primary_key="id"))
        for ent in self.entities:
            for fact in ent.facts:
                columns = [
                    ColumnDef("id", ColumnType.INT, nullable=False),
                    ColumnDef(fact.entity_column, ColumnType.INT, nullable=False),
                    ColumnDef(fact.dim_column, ColumnType.INT, nullable=False),
                ]
                fks = [
                    ForeignKey(fact.entity_column, ent.name, "id"),
                    ForeignKey(fact.dim_column, fact.dim, "id"),
                ]
                if fact.qualifier is not None:
                    columns.append(
                        ColumnDef(
                            fact.qualifier_column, ColumnType.INT, nullable=False
                        )
                    )
                    fks.append(
                        ForeignKey(fact.qualifier_column, fact.qualifier, "id")
                    )
                out.append(
                    TableSchema(
                        fact.name, columns, primary_key="id", foreign_keys=fks
                    )
                )
        return out

    def metadata(self) -> AdbMetadata:
        """The administrator annotations SQuID needs for this plan."""
        return AdbMetadata(
            entities=[EntitySpec(e.name, "id", "name") for e in self.entities],
            dimensions=[
                DimensionSpec(d.name, "id", "name") for d in self.dimensions
            ],
            property_attributes={
                e.name: [a.name for a in e.attributes]
                for e in self.entities
                if e.attributes
            },
            qualifiers=[
                QualifierSpec(f.name, f.qualifier_column, f.qualifier)
                for e in self.entities
                for f in e.facts
                if f.qualifier is not None
            ],
        )

    # ------------------------------------------------------------------
    # shrinker masking
    # ------------------------------------------------------------------
    def masked(
        self,
        drop_tables: Tuple[str, ...] = (),
        drop_columns: Tuple[str, ...] = (),
    ) -> "SchemaPlan":
        """The plan with tables/columns removed.

        Dropping a dimension also drops facts joining through it (and
        clears qualifiers pointing at it); dropping an entity drops its
        facts.  Raises ``ValueError`` for unknown names or if no entity
        survives — callers translate that into a rejected shrink step.
        """
        known = set(self.table_names())
        for table in drop_tables:
            if table not in known:
                raise ValueError(f"cannot drop unknown table {table!r}")
        drop = set(drop_tables)
        attr_drop: Dict[str, set] = {}
        for qualified in drop_columns:
            table, _, column = qualified.partition(".")
            attr_drop.setdefault(table, set()).add(column)

        dims = tuple(d for d in self.dimensions if d.name not in drop)
        dim_names = {d.name for d in dims}
        entities: List[EntityPlan] = []
        for ent in self.entities:
            if ent.name in drop:
                continue
            dropped_attrs = attr_drop.pop(ent.name, set())
            unknown = dropped_attrs - {a.name for a in ent.attributes}
            if unknown:
                raise ValueError(
                    f"cannot drop unknown columns {sorted(unknown)} "
                    f"of {ent.name!r}"
                )
            attrs = tuple(
                a for a in ent.attributes if a.name not in dropped_attrs
            )
            facts: List[FactPlan] = []
            for fact in ent.facts:
                if fact.name in drop or fact.dim not in dim_names:
                    continue
                if fact.qualifier is not None and fact.qualifier not in dim_names:
                    fact = replace(fact, qualifier=None)
                facts.append(fact)
            entities.append(replace(ent, attributes=attrs, facts=tuple(facts)))
        if attr_drop:
            raise ValueError(
                f"cannot drop columns of unknown tables {sorted(attr_drop)}"
            )
        if not entities:
            raise ValueError("mask drops every entity table")
        return SchemaPlan(entities=tuple(entities), dimensions=dims)


def _take(rng, pool: Tuple[str, ...], count: int) -> List[str]:
    """``count`` distinct names from a seeded permutation of ``pool``."""
    order = rng.permutation(len(pool))
    return [pool[int(i)] for i in order[:count]]


def sample_schema(config: SchemaSamplerConfig, seed: int) -> SchemaPlan:
    """Sample a full schema plan; pure function of ``(config, seed)``."""
    rng = make_rng(seed, "synth/schema")
    n_dims = _span(rng, config.dim_tables)
    dims = tuple(
        DimensionPlan(
            name,
            tuple(
                f"{name}_{j}" for j in range(_span(rng, config.dim_values))
            ),
        )
        for name in _take(rng, DIM_POOL, n_dims)
    )
    dim_names = [d.name for d in dims]

    entities: List[EntityPlan] = []
    for ent_name in _take(rng, ENTITY_POOL, _span(rng, config.entity_tables)):
        attrs: List[AttributePlan] = []
        for attr_name in _take(
            rng, NUMERIC_ATTR_POOL, _span(rng, config.numeric_attrs)
        ):
            low = int(rng.integers(0, 40))
            attrs.append(
                AttributePlan(
                    name=attr_name,
                    ctype=ColumnType.INT,
                    nullable=bool(rng.random() < config.p_nullable),
                    low=low,
                    high=low + _span(rng, config.numeric_span),
                )
            )
        for attr_name in _take(
            rng, CATEGORICAL_ATTR_POOL, _span(rng, config.categorical_attrs)
        ):
            count = _span(rng, config.categorical_values)
            attrs.append(
                AttributePlan(
                    name=attr_name,
                    ctype=ColumnType.TEXT,
                    nullable=bool(rng.random() < config.p_nullable),
                    values=tuple(f"{attr_name}_{v}" for v in range(count)),
                )
            )

        n_facts = min(_span(rng, config.fact_tables), n_dims)
        fact_dims = _take(rng, tuple(dim_names), n_facts)
        facts: List[FactPlan] = []
        for dim_name in fact_dims:
            qualifier = None
            if n_dims >= 2 and rng.random() < config.p_qualifier:
                others = [d for d in dim_names if d != dim_name]
                qualifier = others[int(rng.integers(0, len(others)))]
            facts.append(
                FactPlan(
                    name=f"{ent_name}_to_{dim_name}",
                    entity=ent_name,
                    dim=dim_name,
                    qualifier=qualifier,
                )
            )
        entities.append(
            EntityPlan(
                name=ent_name, attributes=tuple(attrs), facts=tuple(facts)
            )
        )
    return SchemaPlan(entities=tuple(entities), dimensions=dims)
