"""Per-figure experiment drivers.

Each function regenerates one table or figure of the paper's evaluation
section and returns plain data structures (lists of row dicts) that the
benchmark harnesses print and `EXPERIMENTS.md` records.  Keeping the
drivers here lets the pytest benchmarks, the examples, and ad-hoc scripts
share one implementation.

The sweep drivers (``accuracy_curve``, ``scalability_curve``,
``squid_qre``) discover through a shared
:class:`~repro.core.session.DiscoverySession` instead of looping over
``SquidSystem.discover``: one warm αDB, one probe memo and one result
cache serve every example set of the sweep, and a caller-provided
session (or ``SquidConfig(jobs=N)``) fans candidate work units across
workers without changing any reported number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..core.config import SquidConfig
from ..core.lookup import ExampleLookupError
from ..core.session import BatchOutcome, DiscoverySession
from ..core.squid import SquidSystem
from ..relational.database import Database
from ..sql.counting import count_predicates
from ..workloads.registry import Workload, WorkloadRegistry
from .metrics import Accuracy, accuracy, is_instance_equivalent, masked_accuracy
from .sampling import sample_example_sets


def _session_for(
    squid: SquidSystem, session: Optional[DiscoverySession]
) -> tuple[DiscoverySession, bool]:
    """(session, owned): the caller's session, or a fresh warmed one.

    ``owned`` tells the driver it must ``close()`` the session on the
    way out — with the persistent worker pool a started session holds
    real resources (forked workers, a collector thread), so drivers must
    not leak the sessions they create themselves."""
    if session is not None:
        return session, False
    fresh = DiscoverySession(squid)
    fresh.warm()
    return fresh, True


def _raise_unless_lookup_error(outcome: BatchOutcome) -> bool:
    """True when the outcome holds a result; lookup misses are skipped
    (matching the historical per-loop ``except ExampleLookupError``),
    anything else propagates."""
    if outcome.ok:
        return True
    if isinstance(outcome.error, ExampleLookupError):
        return False
    assert outcome.error is not None
    raise outcome.error


@dataclass
class AccuracyPoint:
    """One (workload, example-set size) accuracy measurement."""

    qid: str
    num_examples: int
    precision: float
    recall: float
    f_score: float
    seconds: float
    runs: int


def evaluate_once(
    squid: SquidSystem,
    workload: Workload,
    examples: Sequence[str],
    config: Optional[SquidConfig] = None,
    mask: Optional[Set[Any]] = None,
) -> tuple[Accuracy, float, Any]:
    """Run one discovery and score it against the workload ground truth."""
    start = time.perf_counter()
    result = squid.discover(examples, config=config)
    elapsed = time.perf_counter() - start
    predicted = squid.result_keys(result)
    intended = workload.ground_truth_keys(squid.adb.db)
    score = masked_accuracy(predicted, intended, mask)
    return score, elapsed, result


def accuracy_curve(
    squid: SquidSystem,
    workload: Workload,
    example_sizes: Sequence[int],
    runs_per_size: int = 10,
    config: Optional[SquidConfig] = None,
    seed: int = 7,
    mask: Optional[Set[Any]] = None,
    examples_override: Optional[Sequence[str]] = None,
    session: Optional[DiscoverySession] = None,
) -> List[AccuracyPoint]:
    """Figure 10/13 style curve: accuracy vs number of examples.

    All example sets of one size discover in one batch; the ground-truth
    keys are computed once for the whole curve instead of once per run.
    """
    if examples_override is not None:
        values = list(examples_override)
    else:
        values = workload.ground_truth_examples(squid.adb.db)
    session, owned = _session_for(squid, session)
    try:
        intended = workload.ground_truth_keys(squid.adb.db)
        points: List[AccuracyPoint] = []
        for size in example_sizes:
            example_sets = sample_example_sets(
                values, size, runs_per_size, seed
            )
            if not example_sets:
                continue
            outcomes = session.discover_many(example_sets, config=config)
            precisions, recalls, fscores, times = [], [], [], []
            for outcome in outcomes:
                if not _raise_unless_lookup_error(outcome):
                    continue
                assert outcome.result is not None
                predicted = squid.result_keys(outcome.result)
                score = masked_accuracy(predicted, intended, mask)
                precisions.append(score.precision)
                recalls.append(score.recall)
                fscores.append(score.f_score)
                times.append(outcome.seconds)
            if not times:
                continue
            n = len(times)
            points.append(
                AccuracyPoint(
                    qid=workload.qid,
                    num_examples=size,
                    precision=sum(precisions) / n,
                    recall=sum(recalls) / n,
                    f_score=sum(fscores) / n,
                    seconds=sum(times) / n,
                    runs=n,
                )
            )
        return points
    finally:
        if owned:
            session.close()


def scalability_curve(
    squid: SquidSystem,
    registry: WorkloadRegistry,
    example_sizes: Sequence[int],
    runs_per_size: int = 3,
    seed: int = 11,
    session: Optional[DiscoverySession] = None,
) -> List[Dict[str, Any]]:
    """Figure 9 style: mean abduction time vs number of examples.

    For each size, every workload's sampled example sets go through one
    batch discovery, so sorted-view construction and repeated entity
    probes amortise across the whole registry.
    """
    session, owned = _session_for(squid, session)
    try:
        rows: List[Dict[str, Any]] = []
        for size in example_sizes:
            example_sets: List[List[str]] = []
            for workload in registry:
                values = workload.ground_truth_examples(squid.adb.db)
                example_sets.extend(
                    sample_example_sets(values, size, runs_per_size, seed)
                )
            times = [
                outcome.seconds
                for outcome in session.discover_many(example_sets)
                if _raise_unless_lookup_error(outcome)
            ]
            if times:
                rows.append(
                    {
                        "num_examples": size,
                        "mean_seconds": sum(times) / len(times),
                        "runs": len(times),
                    }
                )
        return rows
    finally:
        if owned:
            session.close()


def query_runtime_comparison(
    squid: SquidSystem,
    registry: WorkloadRegistry,
    num_examples: int = 10,
    seed: int = 13,
) -> List[Dict[str, Any]]:
    """Figure 11: runtime of the abduced query vs the intended query."""
    rows: List[Dict[str, Any]] = []
    for workload in registry:
        values = workload.ground_truth_examples(squid.adb.db)
        example_sets = sample_example_sets(values, num_examples, 1, seed)
        if not example_sets:
            continue
        try:
            result = squid.discover(example_sets[0])
        except ExampleLookupError:
            continue
        # Timing comparisons bypass the shared result cache so both sides
        # measure a cold execution on the system's active backend.
        start = time.perf_counter()
        squid.execute(result.query, cached=False)
        abduced_seconds = time.perf_counter() - start
        if workload.query is not None:
            start = time.perf_counter()
            squid.execute(workload.query, cached=False)
            actual_seconds = time.perf_counter() - start
        else:
            start = time.perf_counter()
            workload.ground_truth_keys(squid.adb.db)
            actual_seconds = time.perf_counter() - start
        rows.append(
            {
                "qid": workload.qid,
                "actual_seconds": actual_seconds,
                "abduced_seconds": abduced_seconds,
            }
        )
    return rows


@dataclass
class QreOutcome:
    """Closed-world QRE comparison row (Figures 14/15)."""

    qid: str
    cardinality: int
    actual_predicates: int
    squid_predicates: Optional[int] = None
    squid_seconds: Optional[float] = None
    squid_f_score: Optional[float] = None
    squid_ieq: Optional[bool] = None
    talos_predicates: Optional[int] = None
    talos_seconds: Optional[float] = None
    talos_f_score: Optional[float] = None
    talos_ieq: Optional[bool] = None


def squid_qre(
    squid: SquidSystem,
    workload: Workload,
    config: Optional[SquidConfig] = None,
    session: Optional[DiscoverySession] = None,
) -> QreOutcome:
    """Run SQuID in the closed-world setting: entire output as examples.

    Passing one session across many workloads shares the warm αDB views
    and probe memo between their (large) whole-output example sets.
    """
    config = config or SquidConfig.optimistic()
    session, owned = _session_for(squid, session)
    try:
        db = squid.adb.db
        intended = workload.ground_truth_keys(db)
        examples = workload.ground_truth_examples(db)
        actual_preds = (
            count_predicates(workload.query)
            if workload.query is not None
            else 0
        )
        outcome = QreOutcome(
            qid=workload.qid,
            cardinality=len(intended),
            actual_predicates=actual_preds,
        )
        config = config.with_overrides(
            max_example_warn=max(config.max_example_warn, len(examples) + 1)
        )
        start = time.perf_counter()
        result = session.discover(examples, config=config)
        outcome.squid_seconds = time.perf_counter() - start
        predicted = squid.result_keys(result)
        outcome.squid_predicates = count_predicates(result.query)
        outcome.squid_f_score = accuracy(predicted, intended).f_score
        outcome.squid_ieq = is_instance_equivalent(predicted, intended)
        return outcome
    finally:
        if owned:
            session.close()


def dataset_statistics(databases: Dict[str, Database]) -> List[Dict[str, Any]]:
    """Figure 18 style dataset-description rows."""
    rows = []
    for name, db in databases.items():
        counts = db.row_counts()
        rows.append(
            {
                "dataset": name,
                "relations": len(counts),
                "total_rows": sum(counts.values()),
                "largest_relations": sorted(
                    counts.items(), key=lambda kv: -kv[1]
                )[:3],
            }
        )
    return rows
