"""Example-set sampling for accuracy experiments.

The accuracy curves of Figures 10/12/13 average precision/recall/f-score
over several random example sets per size; this module draws those sets
deterministically from a workload's ground truth.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..datasets.seeds import make_rng


def sample_example_sets(
    values: Sequence[str],
    set_size: int,
    num_sets: int,
    seed: int,
) -> List[List[str]]:
    """Draw ``num_sets`` example sets of ``set_size`` values (no repeats).

    If the ground truth is smaller than ``set_size``, the full set is
    returned once (the closed-world case).
    """
    unique = list(dict.fromkeys(values))
    if not unique:
        return []
    if set_size >= len(unique):
        return [list(unique)]
    rng = make_rng(seed, f"examples-{set_size}")
    out: List[List[str]] = []
    for _ in range(num_sets):
        idx = rng.choice(len(unique), size=set_size, replace=False)
        out.append([unique[int(i)] for i in idx])
    return out
