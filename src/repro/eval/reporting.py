"""Result-table formatting shared by benchmarks and examples.

Benchmarks print their figure tables through :func:`emit`, which writes to
``benchmarks/results/`` *and* echoes to the real stdout (bypassing pytest
capture) so the tables appear in ``bench_output.txt``.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    float_format: str = "{:.4f}",
) -> str:
    """Render row dicts as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns:
        cols = list(columns)
    else:
        cols = []
        for row in rows:  # union of keys, first-seen order
            for key in row:
                if key not in cols:
                    cols.append(key)

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


def results_dir() -> str:
    """``benchmarks/results`` under the repository root (created lazily)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def emit(name: str, text: str) -> str:
    """Write a result table to disk and echo it to the real stdout.

    ``sys.__stdout__`` bypasses pytest's capture so the figure tables show
    up in the tee'd benchmark log; the on-disk copy under
    ``benchmarks/results/`` survives for EXPERIMENTS.md.
    """
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    stream = sys.__stdout__ if sys.__stdout__ is not None else sys.stdout
    stream.write(f"\n===== {name} =====\n{text}")
    stream.flush()
    return path
