"""Evaluation harness: metrics, example sampling, per-figure runners."""

from .metrics import (
    Accuracy,
    accuracy,
    is_instance_equivalent,
    latency_summary,
    masked_accuracy,
    percentile,
)
from .reporting import emit, format_table, results_dir
from .runner import (
    AccuracyPoint,
    QreOutcome,
    accuracy_curve,
    dataset_statistics,
    evaluate_once,
    query_runtime_comparison,
    scalability_curve,
    squid_qre,
)
from .sampling import sample_example_sets

__all__ = [
    "Accuracy",
    "AccuracyPoint",
    "QreOutcome",
    "accuracy",
    "accuracy_curve",
    "dataset_statistics",
    "emit",
    "evaluate_once",
    "format_table",
    "is_instance_equivalent",
    "latency_summary",
    "masked_accuracy",
    "percentile",
    "query_runtime_comparison",
    "results_dir",
    "sample_example_sets",
    "scalability_curve",
    "squid_qre",
]
