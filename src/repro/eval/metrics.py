"""Accuracy metrics: precision, recall, f-score over result sets (§7.1).

The paper computes precision as |Q'(D) ∩ Q(D)| / |Q'(D)| and recall as
|Q'(D) ∩ Q(D)| / |Q(D)| where Q is the intended and Q' the inferred
query; the f-score is their harmonic mean.  We compare *entity key* sets,
which is robust to duplicate display names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Set


@dataclass(frozen=True)
class Accuracy:
    """Precision / recall / f-score triple."""

    precision: float
    recall: float

    @property
    def f_score(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F={self.f_score:.3f}"
        )


def accuracy(predicted: Iterable[Any], intended: Iterable[Any]) -> Accuracy:
    """Accuracy of a predicted result set against the intended one.

    Degenerate cases follow the conventional definitions: an empty
    prediction has precision 1 (it asserts nothing false) iff the intended
    set is also empty, else precision is 0-safe and recall reflects the
    miss.
    """
    predicted_set = set(predicted)
    intended_set = set(intended)
    overlap = len(predicted_set & intended_set)
    if not predicted_set and not intended_set:
        return Accuracy(precision=1.0, recall=1.0)
    precision = overlap / len(predicted_set) if predicted_set else 0.0
    recall = overlap / len(intended_set) if intended_set else 0.0
    return Accuracy(precision=precision, recall=recall)


def masked_accuracy(
    predicted: Iterable[Any],
    intended: Iterable[Any],
    mask: Optional[Set[Any]] = None,
) -> Accuracy:
    """Accuracy after restricting both sides to a popularity mask.

    The case studies (Section 7.4, footnote 14) evaluate against
    popularity-filtered lists; entities outside the mask are ignored on
    both sides.
    """
    if mask is None:
        return accuracy(predicted, intended)
    return accuracy(set(predicted) & mask, set(intended) & mask)


def is_instance_equivalent(predicted: Iterable[Any], intended: Iterable[Any]) -> bool:
    """IEQ test (Section 7.5): exact result-set equality (f-score = 1)."""
    return set(predicted) == set(intended)


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Tiny, dependency-free sibling of ``numpy.percentile`` for the
    serving tier's latency reports (which must not drag numpy into the
    request path).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = (len(ordered) - 1) * (q / 100.0)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def latency_summary(seconds: Iterable[float]) -> dict:
    """count/mean/p50/p95/max of a latency sample, in milliseconds.

    Shared by the serving stats endpoint and the serving benchmark so
    both report identical quantile definitions.
    """
    sample = [s for s in seconds]
    if not sample:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0,
                "max_ms": 0.0}
    return {
        "count": len(sample),
        "mean_ms": round(1000.0 * sum(sample) / len(sample), 3),
        "p50_ms": round(1000.0 * percentile(sample, 50), 3),
        "p95_ms": round(1000.0 * percentile(sample, 95), 3),
        "max_ms": round(1000.0 * max(sample), 3),
    }
