"""Predicate counting for queries, matching the paper's Figs. 14/15 metric.

The paper reports "the total number of predicates (including join and
selection predicates) in the produced queries" and shows TALOS blowing up to
hundreds while SQuID stays close to the intended query.  A range filter
expands to two atoms (>= and <=); an IN disjunction counts one atom per
member; each join condition and each HAVING clause counts as one.
"""

from __future__ import annotations

from .ast import AnyQuery, IntersectQuery, Query


def count_join_predicates(query: AnyQuery) -> int:
    """Number of join conditions in a query (summed over INTERSECT blocks)."""
    if isinstance(query, IntersectQuery):
        return sum(count_join_predicates(block) for block in query.blocks)
    return len(query.joins)


def count_selection_predicates(query: AnyQuery) -> int:
    """Number of selection atoms (BETWEEN = 2, IN = |set|, HAVING = 1)."""
    if isinstance(query, IntersectQuery):
        return sum(count_selection_predicates(block) for block in query.blocks)
    total = sum(pred.atom_count() for pred in query.predicates)
    if query.having is not None:
        total += 1
    return total


def count_predicates(query: AnyQuery) -> int:
    """Total predicate count: joins + selections (+HAVING clauses)."""
    return count_join_predicates(query) + count_selection_predicates(query)
