"""Stamped access to per-column statistics and table cardinalities.

:class:`StatisticsProvider` is the estimator's only window onto the
database: it memoizes :func:`repro.relational.statistics.
column_statistics` results **per (uid, version) stamp** of the owning
relation.  Repeated mutations inside one batch bump the version many
times but trigger at most *one* rebuild per column — at the next read,
lazily — and reads while the stamp is unchanged never rescan (the fix
for the dispatch cardinality-refresh rescan; pinned by the counter
tests in ``tests/sql/test_estimator.py``).

Counters:

* ``stats_rebuilds`` — full per-column statistic computations (the
  expensive O(rows) scans);
* ``cardinality_refreshes`` — per-table row-count refreshes, kept
  name-compatible with dispatch v1's counter.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ...relational.database import Database
from ...relational.statistics import (
    DEFAULT_SAMPLE_BUDGET,
    ColumnStatistics,
    column_statistics,
)


class StatisticsProvider:
    """Per-stamp memoized column statistics over one database."""

    def __init__(
        self,
        database: Database,
        *,
        sample_budget: int = DEFAULT_SAMPLE_BUDGET,
    ) -> None:
        if sample_budget < 1:
            raise ValueError(f"sample_budget must be >= 1, got {sample_budget}")
        self.db = database
        self.sample_budget = sample_budget
        # (table, column) -> (uid, version, stats)
        self._columns: Dict[Tuple[str, str], Tuple[int, int, ColumnStatistics]] = {}
        # table -> (uid, version, rows)
        self._cardinalities: Dict[str, Tuple[int, int, int]] = {}
        self._lock = threading.Lock()
        self.stats_rebuilds = 0
        self.cardinality_refreshes = 0

    # ------------------------------------------------------------------
    # cardinalities
    # ------------------------------------------------------------------
    def cardinality(self, table: str) -> int:
        """Stamped row count; refreshed once per (uid, version) change."""
        relation = self.db.relation(table)
        entry = self._cardinalities.get(table)
        if (
            entry is not None
            and entry[0] == relation.uid
            and entry[1] == relation.version
        ):
            return entry[2]
        rows = len(relation)
        with self._lock:
            self._cardinalities[table] = (relation.uid, relation.version, rows)
            self.cardinality_refreshes += 1
        return rows

    # ------------------------------------------------------------------
    # column statistics
    # ------------------------------------------------------------------
    def column(self, table: str, column: str) -> ColumnStatistics:
        """Statistics for one column, rebuilt at most once per stamp."""
        relation = self.db.relation(table)
        key = (table, column)
        entry = self._columns.get(key)
        if (
            entry is not None
            and entry[0] == relation.uid
            and entry[1] == relation.version
        ):
            return entry[2]
        # Compute outside the lock (O(rows)); last writer wins — both
        # computed the same snapshot if the stamp did not move.
        uid, version = relation.uid, relation.version
        stats = column_statistics(
            relation, column, sample_budget=self.sample_budget
        )
        with self._lock:
            self._columns[key] = (uid, version, stats)
            self.stats_rebuilds += 1
        return stats

    def cached_column(self, table: str, column: str) -> Optional[ColumnStatistics]:
        """The memoized statistics if current, without rebuilding."""
        relation = self.db.relation(table)
        entry = self._columns.get((table, column))
        if (
            entry is not None
            and entry[0] == relation.uid
            and entry[1] == relation.version
        ):
            return entry[2]
        return None

    def counters(self) -> Dict[str, int]:
        """Rebuild/refresh counters for stats reporting."""
        with self._lock:
            return {
                "stats_rebuilds": self.stats_rebuilds,
                "cardinality_refreshes": self.cardinality_refreshes,
            }
