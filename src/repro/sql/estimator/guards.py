"""Misroute guard rails: abort-and-reroute when an estimate was wrong.

Routing a genuinely large block to the interpreted engine is the one
*catastrophic* dispatch mistake — its per-row Python loops degrade by
orders of magnitude, not percents.  The guard watches the engine's
observed row counts mid-flight (candidate sets, intermediate binding
lists) and raises :class:`MisrouteAbort` the moment they exceed the
estimate's safety bound by the configured factor; the dispatcher
catches it, bumps ``guard_trips``, and reroutes the block to the safe
engine (vectorized), whose result is byte-identical by the equivalence
battery.

Aborting is cheap by construction: the interpreted engine's cost is
roughly proportional to the rows it has materialised so far, so a trip
at ``budget`` rows wastes at most the work the *correct* route would
have spent anyway (up to the guard factor).
"""

from __future__ import annotations

from .core import BlockEstimate

#: Observed rows may exceed the estimate's upper bound by this factor
#: before the route is declared a misroute.
DEFAULT_GUARD_FACTOR = 8.0


class MisrouteAbort(RuntimeError):
    """Raised mid-flight when observed rows blow past the guard budget."""

    def __init__(self, observed: int, budget: float) -> None:
        super().__init__(
            f"observed {observed} rows mid-flight, guard budget {budget:.0f}"
        )
        self.observed = observed
        self.budget = budget


class RowBudgetGuard:
    """Observer raising :class:`MisrouteAbort` past a row budget."""

    def __init__(self, budget: float) -> None:
        self.budget = budget
        self.peak = 0

    def observe(self, count: int) -> None:
        """Feed one observed row count (monotone peaks are kept)."""
        if count > self.peak:
            self.peak = count
        if count > self.budget:
            raise MisrouteAbort(count, self.budget)


def guard_budget(
    estimate: BlockEstimate, factor: float, floor: float
) -> float:
    """The row budget guarding one routed block.

    Anchored on the *upper bounds* — a trip therefore means the safety
    interval itself was wrong (stale stats, adversarial skew), not just
    an unlucky point estimate — and floored so tiny estimates don't turn
    ordinary small blocks into spurious reroutes.
    """
    anchor = max(estimate.work.hi, estimate.rows.hi, floor)
    return anchor * factor
