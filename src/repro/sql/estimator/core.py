"""Per-block cardinality estimation: statistics + samples + a fitted model.

:class:`CardinalityEstimator` turns one SPJ(A) block into a
:class:`BlockEstimate` carrying two intervals:

* ``rows`` — the block's *output* cardinality (what the calibration
  battery checks against ground truth);
* ``work`` — an interpreted-cost proxy: the filtered start candidates
  plus every intermediate binding count of a greedy join walk (what
  routing compares against ``small_work_rows`` and the sharded
  activation threshold).

The walk mirrors the interpreted engine's planner: start from the alias
with the fewest estimated filtered rows, repeatedly extend across a
connecting equi-join, multiplying by the joined column's fanout interval
(``mean multiplicity`` as the point, the observed maximum as the bound
when statistics are exact) and the new alias's predicate selectivity.

A :class:`SelectivityModel` closes the telemetry loop: per block class
(``eq`` / ``range`` / ``scan``) a multiplicative correction, re-fitted
from recorded (estimate, actual) decision outcomes by
:func:`repro.sql.estimator.telemetry.refit`, nudges the point estimate —
always inside the safety bounds, so re-fitting can never invalidate the
calibration contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ...relational.database import Database
from ...relational.errors import RelationalError
from ...relational.statistics import DEFAULT_SAMPLE_BUDGET, ColumnStatistics
from ..ast import Op, Predicate, Query
from .bounds import Estimate, conjoin, fraction_estimate
from .sampler import StatisticsProvider

#: Block classes the selectivity model distinguishes.
CLASS_EQ = "eq"
CLASS_RANGE = "range"
CLASS_SCAN = "scan"
BLOCK_CLASSES = (CLASS_EQ, CLASS_RANGE, CLASS_SCAN)

#: Bounds on one fitted coefficient (and on one refit step's correction).
MODEL_COEFFICIENT_FLOOR = 1.0 / 64.0
MODEL_COEFFICIENT_CEIL = 64.0

_SELECTIVITY_CACHE_CAP = 65536


@dataclass(frozen=True)
class SelectivityModel:
    """Per-block-class multiplicative corrections to the point estimate."""

    eq: float = 1.0
    range: float = 1.0
    scan: float = 1.0

    def __post_init__(self) -> None:
        for name in BLOCK_CLASSES:
            value = getattr(self, name)
            if not MODEL_COEFFICIENT_FLOOR <= value <= MODEL_COEFFICIENT_CEIL:
                raise ValueError(
                    f"coefficient {name} must be in "
                    f"[{MODEL_COEFFICIENT_FLOOR}, {MODEL_COEFFICIENT_CEIL}], "
                    f"got {value}"
                )

    def coefficient(self, block_class: str) -> float:
        """The multiplier for one block class (1.0 for unknown classes)."""
        return getattr(self, block_class, 1.0)

    def replaced(self, **kwargs: float) -> "SelectivityModel":
        """A copy with selected coefficients replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in BLOCK_CLASSES}

    @classmethod
    def from_dict(cls, raw: Dict[str, float]) -> "SelectivityModel":
        return cls(**{name: float(raw[name]) for name in BLOCK_CLASSES if name in raw})


@dataclass(frozen=True)
class BlockEstimate:
    """One block's estimated output rows, routing work, and features."""

    rows: Estimate
    """Output cardinality of the block (after DISTINCT / GROUP BY)."""

    work: Estimate
    """Interpreted-cost proxy: candidates plus intermediate bindings."""

    features: Dict[str, Any]
    """Routing/telemetry features; always includes ``class`` and
    ``aliases``."""

    @property
    def block_class(self) -> str:
        return self.features["class"]


def predicate_class(preds: List[Predicate]) -> str:
    """The class of one alias's predicate set."""
    if any(p.op in (Op.EQ, Op.IN) for p in preds):
        return CLASS_EQ
    if preds:
        return CLASS_RANGE
    return CLASS_SCAN


class CardinalityEstimator:
    """Sampling-based per-block cardinality estimation with bounds."""

    def __init__(
        self,
        database: Database,
        *,
        sample_budget: int = DEFAULT_SAMPLE_BUDGET,
        model: Optional[SelectivityModel] = None,
    ) -> None:
        self.db = database
        self.provider = StatisticsProvider(database, sample_budget=sample_budget)
        self.model = model if model is not None else SelectivityModel()
        # (table, column, op, value) -> (uid, version, selectivity)
        self._sel_cache: Dict[Tuple, Tuple[int, int, Estimate]] = {}
        self._sel_lock = threading.Lock()
        # query -> (model, per-table stamps, estimate); repeat executions
        # of one block (pruning probes, evaluation reruns) dominate the
        # workload, so re-deriving the estimate per call would tax every
        # dispatch decision with conjunction/walk arithmetic.
        self._block_cache: Dict[Query, Tuple[Any, Tuple, BlockEstimate]] = {}

    def set_model(self, model: SelectivityModel) -> None:
        """Install a (re-)fitted model; effective for the next estimate."""
        self.model = model

    # ------------------------------------------------------------------
    # predicate selectivity
    # ------------------------------------------------------------------
    def predicate_selectivity(self, table: str, pred: Predicate) -> Estimate:
        """Fraction of ``table`` rows matching ``pred`` (NULLs never do)."""
        relation = self.db.relation(table)
        key = (table, pred.column.column, pred.op, pred.value)
        cached = self._sel_cache.get(key)
        if (
            cached is not None
            and cached[0] == relation.uid
            and cached[1] == relation.version
        ):
            return cached[2]
        stats = self.provider.column(table, pred.column.column)
        sel = self._selectivity_from_stats(stats, pred)
        with self._sel_lock:
            if len(self._sel_cache) >= _SELECTIVITY_CACHE_CAP:
                self._sel_cache.clear()
            self._sel_cache[key] = (relation.uid, relation.version, sel)
        return sel

    def _selectivity_from_stats(
        self, stats: ColumnStatistics, pred: Predicate
    ) -> Estimate:
        if stats.rows == 0 or stats.non_null == 0:
            return Estimate.exact(0.0)
        non_null_fraction = stats.non_null / stats.rows
        if stats.value_counts is not None and pred.op is Op.EQ:
            hits = stats.value_counts.get(pred.value, 0)
        elif stats.value_counts is not None and pred.op is Op.IN:
            hits = sum(stats.value_counts.get(v, 0) for v in pred.value)  # type: ignore[union-attr]
        else:
            hits = sum(1 for v in stats.sample if pred.matches(v))
        frac = fraction_estimate(hits, stats.sample_size, exact=stats.exact)
        sel = frac.scaled(non_null_fraction)
        if pred.op in (Op.EQ, Op.IN) and not stats.exact:
            # Unseen-value floor: a sampled miss still plausibly matches
            # about one mean-multiplicity group.
            per_value = stats.mean_multiplicity() / stats.rows
            members = len(pred.value) if pred.op is Op.IN else 1  # type: ignore[arg-type]
            sel = sel.with_point(max(sel.point, members * per_value))
        return sel.clamped(0.0, 1.0)

    # ------------------------------------------------------------------
    # join fanout
    # ------------------------------------------------------------------
    def _fanout(self, table: str, column: str) -> Estimate:
        """Rows of ``table`` matched per probe key through ``column``."""
        stats = self.provider.column(table, column)
        if stats.non_null == 0:
            return Estimate.exact(0.0)
        mean = stats.mean_multiplicity()
        if stats.exact:
            hi = float(stats.max_multiplicity)
        else:
            # Sampled multiplicity maxima are not sound bounds; fall back
            # to the trivial one.
            hi = float(stats.non_null)
        return Estimate.between(0.0, mean, max(hi, mean))

    # ------------------------------------------------------------------
    # block estimation
    # ------------------------------------------------------------------
    def estimate_block(self, query: Query) -> Optional[BlockEstimate]:
        """Estimate one block; ``None`` when it references unknown tables
        (route it to an engine and let shared validation raise)."""
        alias_map = query.alias_map()
        for table in alias_map.values():
            if table not in self.db:
                return None
        stamps = tuple(
            (r.uid, r.version)
            for r in (self.db.relation(t) for t in alias_map.values())
        )
        try:
            cached = self._block_cache.get(query)
        except TypeError:  # unhashable predicate constant: skip the memo
            cached = None
            stamps = None
        if cached is not None and cached[0] is self.model and cached[1] == stamps:
            return cached[2]
        try:
            estimate = self._estimate_known_block(query, alias_map)
        except RelationalError:
            # Unknown column etc.: let the routed engine's shared
            # validation raise the canonical QueryError.
            return None
        if stamps is not None:
            with self._sel_lock:
                if len(self._block_cache) >= _SELECTIVITY_CACHE_CAP:
                    self._block_cache.clear()
                self._block_cache[query] = (self.model, stamps, estimate)
        return estimate

    def _estimate_known_block(
        self, query: Query, alias_map: Dict[str, str]
    ) -> BlockEstimate:
        preds_by_alias: Dict[str, List[Predicate]] = {}
        for pred in query.predicates:
            preds_by_alias.setdefault(pred.column.table, []).append(pred)

        filtered: Dict[str, Estimate] = {}
        selectivity: Dict[str, Estimate] = {}
        classes: List[str] = []
        input_rows = 0
        for alias, table in alias_map.items():
            n = self.provider.cardinality(table)
            input_rows += n
            preds = preds_by_alias.get(alias, [])
            sel = conjoin(
                [self.predicate_selectivity(table, p) for p in preds]
            )
            selectivity[alias] = sel
            filtered[alias] = sel.scaled(n)
            classes.append(predicate_class(preds))

        block_class = (
            CLASS_EQ
            if CLASS_EQ in classes
            else CLASS_RANGE
            if CLASS_RANGE in classes
            else CLASS_SCAN
        )
        features: Dict[str, Any] = {
            "class": block_class,
            "aliases": len(alias_map),
            "input_rows": input_rows,
            "predicates": len(query.predicates),
            "group_by": bool(query.group_by),
            "having": query.having is not None,
            "distinct": query.distinct,
        }

        if not alias_map:
            zero = Estimate.exact(0.0)
            return BlockEstimate(rows=zero, work=zero, features=features)

        acc, work = self._walk_joins(query, alias_map, filtered, selectivity)
        rows = self._output_rows(query, alias_map, acc)
        rows = rows.with_point(rows.point * self.model.coefficient(block_class))
        return BlockEstimate(rows=rows, work=work, features=features)

    def _walk_joins(
        self,
        query: Query,
        alias_map: Dict[str, str],
        filtered: Dict[str, Estimate],
        selectivity: Dict[str, Estimate],
    ) -> Tuple[Estimate, Estimate]:
        """Greedy join walk returning (joined rows, accumulated work)."""
        order_key = lambda a: (filtered[a].point, a)  # noqa: E731
        start = min(alias_map, key=order_key)
        acc = filtered[start]
        work = acc
        bound = {start}
        remaining = list(query.joins)
        while len(bound) < len(alias_map):
            step = None
            for alias in sorted(
                (a for a in alias_map if a not in bound), key=order_key
            ):
                connecting = [
                    j
                    for j in remaining
                    if j.touches(alias) and j.other_side(alias).table in bound
                ]
                if connecting:
                    step = (alias, connecting)
                    break
            if step is None:
                # Disconnected graph: cross product with the smallest rest.
                alias = min(
                    (a for a in alias_map if a not in bound), key=order_key
                )
                acc = acc.times(filtered[alias])
            else:
                alias, connecting = step
                join_col = connecting[0].side_of(alias).column
                fan = self._fanout(alias_map[alias], join_col)
                acc = acc.times(fan).times(selectivity[alias])
                remaining = [j for j in remaining if j not in connecting]
            bound.add(alias)
            work = work.plus(acc)
        return acc, work

    def _distinct_cap(
        self, query: Query, alias_map: Dict[str, str], refs
    ) -> Tuple[float, Optional[float]]:
        """(point, sound-hi-or-None) product of the columns' distinct
        counts; the hi is only sound when every column's stats are exact."""
        point = 1.0
        hi: Optional[float] = 1.0
        for ref in refs:
            stats = self.provider.column(alias_map[ref.table], ref.column)
            point *= max(1, stats.distinct)
            if hi is not None and stats.exact:
                hi *= max(1, stats.distinct)
            else:
                hi = None
        return point, hi

    def _output_rows(
        self, query: Query, alias_map: Dict[str, str], joined: Estimate
    ) -> Estimate:
        """Joined bindings -> output rows (GROUP BY / DISTINCT caps)."""
        rows = joined
        if query.group_by:
            cap_point, cap_hi = self._distinct_cap(
                query, alias_map, query.group_by
            )
            hi = rows.hi if cap_hi is None else min(rows.hi, cap_hi)
            rows = Estimate.between(0.0, min(rows.point, cap_point), hi)
            if query.having is not None:
                # HAVING prunes groups by an unknown fraction; halving is
                # the telemetry-refittable neutral guess.
                rows = Estimate.between(0.0, rows.point * 0.5, rows.hi)
        elif query.distinct:
            cap_point, cap_hi = self._distinct_cap(
                query, alias_map, query.select
            )
            hi = rows.hi if cap_hi is None else min(rows.hi, cap_hi)
            rows = Estimate.between(rows.lo if rows.lo <= hi else 0.0,
                                    min(rows.point, cap_point), hi)
        return rows

    def counters(self) -> Dict[str, int]:
        """Provider rebuild/refresh counters (stats reporting)."""
        return self.provider.counters()
