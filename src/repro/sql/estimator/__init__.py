"""Sampling-based cardinality estimation with explicit safety bounds.

The substrate of dispatch v2 (see :mod:`repro.sql.engine.dispatch`):

* :mod:`~repro.sql.estimator.bounds` — :class:`Estimate` interval
  arithmetic, sampled-fraction confidence bands, q-error;
* :mod:`~repro.sql.estimator.sampler` — :class:`StatisticsProvider`,
  the per-(uid, version)-stamp memo over
  :func:`repro.relational.statistics.column_statistics`;
* :mod:`~repro.sql.estimator.core` — :class:`CardinalityEstimator`
  (per-block output-rows + routing-work intervals) and the re-fittable
  :class:`SelectivityModel`;
* :mod:`~repro.sql.estimator.guards` — mid-flight misroute detection
  (:class:`RowBudgetGuard` / :class:`MisrouteAbort`);
* :mod:`~repro.sql.estimator.telemetry` — per-decision records, the
  JSON-lines log, and the deterministic :func:`refit` loop.
"""

from .bounds import DEFAULT_DELTA, Estimate, conjoin, fraction_estimate, q_error
from .core import (
    BLOCK_CLASSES,
    CLASS_EQ,
    CLASS_RANGE,
    CLASS_SCAN,
    BlockEstimate,
    CardinalityEstimator,
    SelectivityModel,
    predicate_class,
)
from .guards import (
    DEFAULT_GUARD_FACTOR,
    MisrouteAbort,
    RowBudgetGuard,
    guard_budget,
)
from .sampler import StatisticsProvider
from .telemetry import (
    DEFAULT_TELEMETRY_CAPACITY,
    OUTCOME_GUARD_TRIP,
    OUTCOME_OK,
    DecisionRecord,
    TelemetryLog,
    refit,
)

__all__ = [
    "BLOCK_CLASSES",
    "BlockEstimate",
    "CLASS_EQ",
    "CLASS_RANGE",
    "CLASS_SCAN",
    "CardinalityEstimator",
    "DEFAULT_DELTA",
    "DEFAULT_GUARD_FACTOR",
    "DEFAULT_TELEMETRY_CAPACITY",
    "DecisionRecord",
    "Estimate",
    "MisrouteAbort",
    "OUTCOME_GUARD_TRIP",
    "OUTCOME_OK",
    "RowBudgetGuard",
    "SelectivityModel",
    "StatisticsProvider",
    "TelemetryLog",
    "conjoin",
    "fraction_estimate",
    "guard_budget",
    "predicate_class",
    "q_error",
    "refit",
]
