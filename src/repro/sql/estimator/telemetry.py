"""Per-decision telemetry and the coefficient re-fitting loop.

Every routing decision the dispatcher takes is recorded as a
:class:`DecisionRecord` — the block's features, the estimate with its
bounds, the chosen route, the *observed* cardinality, and the outcome
(``ok`` or ``guard_trip``).  The log round-trips through JSON lines, so
a serving deployment can persist its decision stream and re-fit offline.

:func:`refit` turns a recorded stream back into an updated
:class:`~repro.sql.estimator.core.SelectivityModel`: per block class,
the geometric mean of observed/estimated ratios becomes a multiplicative
correction (clamped, so one pathological workload cannot capsize the
model).  The function is a pure fold over the record list — replaying
the same log yields bit-identical coefficients, which the telemetry
determinism test pins.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, IO, Iterable, List, Optional, Union

from .bounds import Estimate
from .core import (
    BLOCK_CLASSES,
    MODEL_COEFFICIENT_CEIL,
    MODEL_COEFFICIENT_FLOOR,
    SelectivityModel,
)

#: Decisions retained in memory per dispatcher (ring buffer).
DEFAULT_TELEMETRY_CAPACITY = 4096

OUTCOME_OK = "ok"
OUTCOME_GUARD_TRIP = "guard_trip"

#: Clamp on one refit step's per-class correction factor.
_CORRECTION_FLOOR = 1.0 / 16.0
_CORRECTION_CEIL = 16.0


@dataclass(frozen=True)
class DecisionRecord:
    """One routing decision with its estimate and observed outcome."""

    route: str
    outcome: str
    estimate: float
    lo: float
    hi: float
    work: float
    actual: int
    features: Dict[str, Any]

    @property
    def block_class(self) -> str:
        return self.features.get("class", "scan")

    @property
    def within_bounds(self) -> bool:
        """Whether the observed cardinality fell inside [lo, hi] (with
        the same float-noise slack as :meth:`Estimate.contains`)."""
        return Estimate.between(self.lo, self.estimate, self.hi).contains(
            self.actual
        )

    def to_json(self) -> str:
        """One JSON line (stable key order)."""
        return json.dumps(
            {
                "route": self.route,
                "outcome": self.outcome,
                "estimate": self.estimate,
                "lo": self.lo,
                "hi": self.hi,
                "work": self.work,
                "actual": self.actual,
                "features": self.features,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "DecisionRecord":
        raw = json.loads(line)
        return cls(
            route=raw["route"],
            outcome=raw["outcome"],
            estimate=float(raw["estimate"]),
            lo=float(raw["lo"]),
            hi=float(raw["hi"]),
            work=float(raw["work"]),
            actual=int(raw["actual"]),
            features=dict(raw["features"]),
        )


class TelemetryLog:
    """Bounded, thread-safe ring of :class:`DecisionRecord` entries."""

    def __init__(self, capacity: int = DEFAULT_TELEMETRY_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: Deque[DecisionRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, record: DecisionRecord) -> None:
        with self._lock:
            self._records.append(record)
            self.recorded += 1

    def records(self) -> List[DecisionRecord]:
        """A snapshot of the retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # ------------------------------------------------------------------
    # JSON-lines round trip
    # ------------------------------------------------------------------
    def dump(self, fp: Union[str, IO[str]]) -> int:
        """Write the retained records as JSON lines; returns the count."""
        records = self.records()
        if isinstance(fp, str):
            with open(fp, "w", encoding="utf-8") as handle:
                return self.dump(handle)
        for record in records:
            fp.write(record.to_json())
            fp.write("\n")
        return len(records)

    @staticmethod
    def load(fp: Union[str, IO[str]]) -> List[DecisionRecord]:
        """Parse a JSON-lines decision log (blank lines ignored)."""
        if isinstance(fp, str):
            with open(fp, "r", encoding="utf-8") as handle:
                return TelemetryLog.load(handle)
        return [
            DecisionRecord.from_json(line)
            for line in fp
            if line.strip()
        ]


def refit(
    records: Iterable[DecisionRecord],
    base: Optional[SelectivityModel] = None,
) -> SelectivityModel:
    """Fit per-class corrections from a decision log.

    Deterministic: a pure fold over ``records`` in the given order, so
    replaying the same log always produces identical coefficients.
    Classes with no observations keep their base coefficient.
    """
    base = base if base is not None else SelectivityModel()
    log_ratio_sum: Dict[str, float] = {name: 0.0 for name in BLOCK_CLASSES}
    counts: Dict[str, int] = {name: 0 for name in BLOCK_CLASSES}
    for record in records:
        cls = record.block_class
        if cls not in log_ratio_sum:
            continue
        # +1 smoothing keeps empty results finite (mirrors q_error).
        log_ratio_sum[cls] += math.log(
            (record.actual + 1.0) / (record.estimate + 1.0)
        )
        counts[cls] += 1
    updates: Dict[str, float] = {}
    for name in BLOCK_CLASSES:
        if not counts[name]:
            continue
        correction = math.exp(log_ratio_sum[name] / counts[name])
        correction = min(max(correction, _CORRECTION_FLOOR), _CORRECTION_CEIL)
        updated = base.coefficient(name) * correction
        updates[name] = min(
            max(updated, MODEL_COEFFICIENT_FLOOR), MODEL_COEFFICIENT_CEIL
        )
    return base.replaced(**updates)
