"""Interval arithmetic for cardinality estimates with safety bounds.

Every quantity the estimator produces is an :class:`Estimate` — a point
value bracketed by an explicit ``[lo, hi]`` safety interval.  The point
drives routing; the bounds drive the misroute guards (a block whose
observed rows blow past ``hi`` by the guard factor was misrouted) and
the calibration battery (the true cardinality must fall inside the
interval for ≥99% of synthetic blocks).

Intervals compose with the usual conservative rules:

* **product** (independent selectivities, join fanout): multiply all
  three components — sound for non-negative quantities;
* **conjunction** of selectivities: the point assumes independence, the
  upper bound is the *minimum* of the operands' bounds (a conjunction
  never selects more than its most selective conjunct), the lower bound
  is the Fréchet floor ``max(0, Σ lo − (k−1))``;
* **sampled fractions**: exact scans give degenerate intervals, true
  samples get a two-sided Hoeffding band at confidence ``1 − delta``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Failure probability of one sampled-fraction confidence band.  Chosen
#: so that even blocks combining several sampled predicates keep the
#: calibration battery's ≥99% coverage with headroom.
DEFAULT_DELTA = 0.005


@dataclass(frozen=True)
class Estimate:
    """A non-negative point estimate with explicit safety bounds."""

    point: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo < 0 or self.point < 0 or self.hi < 0:
            raise ValueError(f"estimate components must be >= 0: {self}")
        if not self.lo <= self.point <= self.hi:
            raise ValueError(f"estimate must satisfy lo <= point <= hi: {self}")

    @classmethod
    def exact(cls, value: float) -> "Estimate":
        """A degenerate interval (the quantity is known precisely)."""
        return cls(point=float(value), lo=float(value), hi=float(value))

    @classmethod
    def between(cls, lo: float, point: float, hi: float) -> "Estimate":
        """An interval with the point clamped inside ``[lo, hi]``."""
        lo, hi = float(lo), float(hi)
        return cls(point=min(max(float(point), lo), hi), lo=lo, hi=hi)

    def scaled(self, factor: float) -> "Estimate":
        """All three components multiplied by a non-negative constant."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return Estimate(self.point * factor, self.lo * factor, self.hi * factor)

    def times(self, other: "Estimate") -> "Estimate":
        """Interval product (independent non-negative quantities)."""
        return Estimate(
            self.point * other.point, self.lo * other.lo, self.hi * other.hi
        )

    def plus(self, other: "Estimate") -> "Estimate":
        """Interval sum."""
        return Estimate(
            self.point + other.point, self.lo + other.lo, self.hi + other.hi
        )

    def clamped(self, lo: float = 0.0, hi: float = math.inf) -> "Estimate":
        """Components clamped into ``[lo, hi]`` (ordering preserved)."""
        clamp = lambda v: min(max(v, lo), hi)  # noqa: E731
        new_lo, new_hi = clamp(self.lo), clamp(self.hi)
        return Estimate(min(max(clamp(self.point), new_lo), new_hi), new_lo, new_hi)

    def with_point(self, point: float) -> "Estimate":
        """Same bounds, new point (clamped inside them)."""
        return Estimate.between(self.lo, point, self.hi)

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the safety interval.

        Bounds built from chains of float products accumulate rounding
        noise (an exact estimate of 7 rows may carry ``lo = hi =
        7.000000000000001``); the check therefore allows a tiny relative
        slack so genuine integers at the boundary always count as in.
        """
        slack = 1e-9 * max(1.0, abs(value), self.hi)
        return self.lo - slack <= value <= self.hi + slack

    def rounded(self) -> int:
        """The point estimate as a row count."""
        return int(round(self.point))


def conjoin(selectivities: Sequence[Estimate]) -> Estimate:
    """Combine per-predicate selectivities of one conjunction.

    Operands and result live on [0, 1].
    """
    if not selectivities:
        return Estimate.exact(1.0)
    point = 1.0
    hi = 1.0
    lo_sum = 0.0
    for sel in selectivities:
        point *= sel.point
        hi = min(hi, sel.hi)
        lo_sum += sel.lo
    lo = max(0.0, lo_sum - (len(selectivities) - 1))
    return Estimate.between(lo, point, max(hi, lo))


def fraction_estimate(
    hits: int, trials: int, *, exact: bool, delta: float = DEFAULT_DELTA
) -> Estimate:
    """The fraction a sample observed, as an Estimate on [0, 1].

    ``exact=True`` means the "sample" was the full population — the
    fraction is the truth.  Otherwise the band is a two-sided Hoeffding
    interval: P(|p̂ − p| ≥ ε) ≤ 2·exp(−2·trials·ε²) = delta.
    """
    if trials <= 0:
        return Estimate.between(0.0, 0.0, 1.0)
    p_hat = hits / trials
    if exact:
        return Estimate.exact(p_hat)
    eps = math.sqrt(math.log(2.0 / delta) / (2.0 * trials))
    return Estimate.between(max(0.0, p_hat - eps), p_hat, min(1.0, p_hat + eps))


def q_error(estimate: float, actual: float) -> float:
    """Smoothed q-error: max over-/under-estimation factor.

    Both operands are shifted by one so empty results (actual = 0) stay
    finite and comparable across workloads.
    """
    e, a = estimate + 1.0, actual + 1.0
    return max(e / a, a / e)
