"""Query AST for the SPJ(A, intersect) class SQuID targets.

The paper's query family (footnote 6): select-project-join queries whose
joins are key--foreign-key joins and whose selection predicates are
conjunctive ``attribute OP value`` with ``OP ∈ {=, >=, <=}``, plus optional
group-by aggregation (``HAVING count(*) OP k``) and intersection.

Tables carry aliases so a derived relation (e.g. ``persontogenre``) can
appear once per semantic-property filter, as the αDB reduction requires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Sequence, Tuple, Union


class Op(enum.Enum):
    """Comparison operators allowed in selection predicates."""

    EQ = "="
    GE = ">="
    LE = "<="
    BETWEEN = "BETWEEN"
    IN = "IN"


@dataclass(frozen=True)
class TableRef:
    """A table occurrence in the FROM clause: base name plus alias."""

    name: str
    alias: str = ""

    def __post_init__(self) -> None:
        if not self.alias:
            object.__setattr__(self, "alias", self.name)

    @property
    def is_aliased(self) -> bool:
        """Whether the occurrence uses a non-trivial alias."""
        return self.alias != self.name


@dataclass(frozen=True)
class ColumnRef:
    """A column reference ``alias.column``."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join condition ``left = right`` between two column refs."""

    left: ColumnRef
    right: ColumnRef

    def touches(self, alias: str) -> bool:
        """Whether the condition references table alias ``alias``."""
        return self.left.table == alias or self.right.table == alias

    def other_side(self, alias: str) -> ColumnRef:
        """The column ref on the opposite side of ``alias``."""
        if self.left.table == alias:
            return self.right
        if self.right.table == alias:
            return self.left
        raise ValueError(f"join {self} does not touch {alias!r}")

    def side_of(self, alias: str) -> ColumnRef:
        """The column ref belonging to ``alias``."""
        if self.left.table == alias:
            return self.left
        if self.right.table == alias:
            return self.right
        raise ValueError(f"join {self} does not touch {alias!r}")

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


PredicateValue = Union[int, float, str, bool, Tuple[Any, Any], FrozenSet[Any]]


@dataclass(frozen=True)
class Predicate:
    """A selection predicate ``column OP value``.

    ``value`` is a scalar for EQ/GE/LE, a ``(low, high)`` pair for BETWEEN
    (both bounds inclusive), and a frozenset for IN (the paper's optional
    disjunction over categorical values).
    """

    column: ColumnRef
    op: Op
    value: PredicateValue

    def __post_init__(self) -> None:
        if self.op is Op.BETWEEN:
            if not (isinstance(self.value, tuple) and len(self.value) == 2):
                raise ValueError("BETWEEN expects a (low, high) tuple")
        elif self.op is Op.IN:
            if not isinstance(self.value, frozenset):
                object.__setattr__(self, "value", frozenset(self.value))  # type: ignore[arg-type]

    def matches(self, value: Any) -> bool:
        """Evaluate the predicate against one cell value (NULL fails)."""
        if value is None:
            return False
        if self.op is Op.EQ:
            return bool(value == self.value)
        if self.op is Op.GE:
            return bool(value >= self.value)
        if self.op is Op.LE:
            return bool(value <= self.value)
        if self.op is Op.BETWEEN:
            low, high = self.value  # type: ignore[misc]
            return bool(low <= value <= high)
        if self.op is Op.IN:
            return value in self.value  # type: ignore[operator]
        raise ValueError(f"unsupported op {self.op!r}")

    def atom_count(self) -> int:
        """Number of ``attribute OP constant`` atoms this predicate expands to.

        BETWEEN counts as two atoms (>= and <=); IN counts one atom per
        member, matching how the paper counts predicates in Figs. 14/15.
        """
        if self.op is Op.BETWEEN:
            return 2
        if self.op is Op.IN:
            return max(1, len(self.value))  # type: ignore[arg-type]
        return 1


@dataclass(frozen=True)
class HavingCount:
    """A ``HAVING count(*) OP k`` clause attached to a GROUP BY."""

    op: Op
    value: int

    def __post_init__(self) -> None:
        if self.op not in (Op.EQ, Op.GE, Op.LE):
            raise ValueError("HAVING count(*) supports =, >=, <= only")

    def matches(self, count: int) -> bool:
        """Whether a group of ``count`` rows satisfies the clause."""
        if self.op is Op.EQ:
            return count == self.value
        if self.op is Op.GE:
            return count >= self.value
        return count <= self.value


@dataclass(frozen=True)
class Query:
    """One select-project-join block with optional group-by aggregation."""

    select: Tuple[ColumnRef, ...]
    tables: Tuple[TableRef, ...]
    joins: Tuple[JoinCondition, ...] = ()
    predicates: Tuple[Predicate, ...] = ()
    group_by: Tuple[ColumnRef, ...] = ()
    having: Optional[HavingCount] = None
    distinct: bool = True

    def __post_init__(self) -> None:
        aliases = [t.alias for t in self.tables]
        if len(set(aliases)) != len(aliases):
            raise ValueError(f"duplicate table aliases: {aliases}")
        known = set(aliases)
        for ref in self.select:
            if ref.table not in known:
                raise ValueError(f"SELECT references unknown alias {ref.table!r}")
        for join in self.joins:
            for ref in (join.left, join.right):
                if ref.table not in known:
                    raise ValueError(f"JOIN references unknown alias {ref.table!r}")
        for pred in self.predicates:
            if pred.column.table not in known:
                raise ValueError(
                    f"predicate references unknown alias {pred.column.table!r}"
                )
        for ref in self.group_by:
            if ref.table not in known:
                raise ValueError(f"GROUP BY references unknown alias {ref.table!r}")
        if self.having is not None and not self.group_by:
            raise ValueError("HAVING requires GROUP BY")

    def alias_map(self) -> Dict[str, str]:
        """Mapping alias -> base table name."""
        return {t.alias: t.name for t in self.tables}

    def with_predicates(self, predicates: Sequence[Predicate]) -> "Query":
        """A copy of this query with ``predicates`` as the selection set."""
        return Query(
            select=self.select,
            tables=self.tables,
            joins=self.joins,
            predicates=tuple(predicates),
            group_by=self.group_by,
            having=self.having,
            distinct=self.distinct,
        )


@dataclass(frozen=True)
class IntersectQuery:
    """Intersection of two or more SPJ blocks (the paper's I operator)."""

    blocks: Tuple[Query, ...]

    def __post_init__(self) -> None:
        if len(self.blocks) < 2:
            raise ValueError("IntersectQuery needs at least two blocks")
        widths = {len(b.select) for b in self.blocks}
        if len(widths) != 1:
            raise ValueError("INTERSECT blocks must have equal arity")


AnyQuery = Union[Query, IntersectQuery]
