"""Query representation and execution for the SPJ(A, intersect) class.

Exports the AST node types, the executor, the paper-style SQL formatter,
the predicate-counting metric used in Figs. 14/15, and a small parser that
round-trips the formatter output.
"""

from .ast import (
    AnyQuery,
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)
from .counting import (
    count_join_predicates,
    count_predicates,
    count_selection_predicates,
)
from .executor import Executor, ResultSet, execute
from .formatter import format_predicate, format_query, format_value
from .parser import parse_query

__all__ = [
    "AnyQuery",
    "ColumnRef",
    "Executor",
    "HavingCount",
    "IntersectQuery",
    "JoinCondition",
    "Op",
    "Predicate",
    "Query",
    "ResultSet",
    "TableRef",
    "count_join_predicates",
    "count_predicates",
    "count_selection_predicates",
    "execute",
    "format_predicate",
    "format_query",
    "format_value",
    "parse_query",
]
