"""Query representation and execution for the SPJ(A, intersect) class.

Exports the AST node types, the pluggable execution backends (interpreted,
vectorized, sharded, sqlite, dispatch) behind :class:`ExecutionBackend`, the
paper-style SQL
formatter, the predicate-counting metric used in Figs. 14/15, and a small
parser that round-trips the formatter output.
"""

from .ast import (
    AnyQuery,
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)
from .counting import (
    count_join_predicates,
    count_predicates,
    count_selection_predicates,
)
from .engine import (
    BACKENDS,
    CachingBackend,
    DEFAULT_BACKEND,
    DispatchBackend,
    ExecutionBackend,
    InterpretedBackend,
    QueryResultCache,
    ShardedVectorizedBackend,
    SqliteBackend,
    VectorizedBackend,
    available_backends,
    create_backend,
)
from .executor import Executor, ResultSet, execute
from .formatter import format_predicate, format_query, format_value
from .parser import parse_query

__all__ = [
    "AnyQuery",
    "BACKENDS",
    "CachingBackend",
    "ColumnRef",
    "DEFAULT_BACKEND",
    "DispatchBackend",
    "ExecutionBackend",
    "Executor",
    "HavingCount",
    "InterpretedBackend",
    "IntersectQuery",
    "JoinCondition",
    "Op",
    "Predicate",
    "Query",
    "QueryResultCache",
    "ResultSet",
    "ShardedVectorizedBackend",
    "SqliteBackend",
    "TableRef",
    "VectorizedBackend",
    "available_backends",
    "count_join_predicates",
    "count_predicates",
    "count_selection_predicates",
    "create_backend",
    "execute",
    "format_predicate",
    "format_query",
    "format_value",
    "parse_query",
]
