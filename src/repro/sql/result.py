"""Materialised query results, shared by every execution backend."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, List, Sequence, Set, Tuple

from ..relational.errors import QueryError


@dataclass
class ResultSet:
    """Materialised query result: column labels and row tuples."""

    columns: Tuple[str, ...]
    rows: List[Tuple[Any, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def as_set(self) -> FrozenSet[Tuple[Any, ...]]:
        """Rows as a frozenset (for comparison / intersection)."""
        return frozenset(self.rows)

    def single_column(self) -> List[Any]:
        """Values of a one-column result."""
        if len(self.columns) != 1:
            raise QueryError(f"expected 1 column, result has {len(self.columns)}")
        return [row[0] for row in self.rows]


def execute_intersect(blocks: Sequence[Any], run: Callable[[Any], ResultSet]) -> ResultSet:
    """INTERSECT evaluation: set semantics, first block's row order.

    ``run`` executes one block; once the running intersection is empty
    the remaining blocks are skipped entirely.
    """
    first = run(blocks[0])
    surviving: Set[Tuple[Any, ...]] = set(first.rows)
    for block in blocks[1:]:
        if not surviving:
            break
        surviving &= run(block).as_set()
    seen: Set[Tuple[Any, ...]] = set()
    unique_rows: List[Tuple[Any, ...]] = []
    for row in first.rows:
        if row in surviving and row not in seen:
            seen.add(row)
            unique_rows.append(row)
    return ResultSet(first.columns, unique_rows)
