"""The interpreted row-at-a-time engine (reference implementation).

This is the original executor, moved behind the :class:`ExecutionBackend`
interface: a straightforward hash-join pipeline:

1. single-table predicates are pushed down and resolved with hash / sorted
   indexes where possible;
2. tables are joined greedily starting from the smallest filtered input,
   always extending to a table connected by a join condition;
3. group-by aggregation (``count(*)`` with HAVING) runs over the joined
   tuples;
4. projection (+DISTINCT) produces the result.

It favours clarity over planner sophistication; the vectorized and SQLite
backends are checked against it by the cross-backend equivalence suite, so
keep its semantics authoritative.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...relational.database import Database
from ...relational.errors import QueryError
from ..ast import AnyQuery, IntersectQuery, JoinCondition, Op, Predicate, Query
from ..result import ResultSet, execute_intersect
from .base import ExecutionBackend, validate_query


class InterpretedBackend(ExecutionBackend):
    """Row-at-a-time execution over hash / sorted indexes."""

    name = "interpreted"

    def __init__(self, database: Database) -> None:
        super().__init__(database)
        self._stats_lock = threading.Lock()
        self.blocks_executed = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: AnyQuery) -> ResultSet:
        """Run ``query`` and return its materialised result."""
        if isinstance(query, IntersectQuery):
            return execute_intersect(query.blocks, self._execute_block)
        return self._execute_block(query)

    def stats(self) -> Dict[str, int]:
        """Execution counters (blocks run, intersect blocks included)."""
        with self._stats_lock:
            return {"interpreted_blocks": self.blocks_executed}

    # ------------------------------------------------------------------
    # single block
    # ------------------------------------------------------------------
    def _execute_block(
        self,
        query: Query,
        observe: Optional[Callable[[int], None]] = None,
    ) -> ResultSet:
        """Run one block; ``observe`` receives every intermediate row
        count (candidate sets, binding lists) as it materialises — the
        dispatch misroute guard's mid-flight hook.  An exception raised
        by the observer aborts the execution and propagates.
        """
        alias_map = query.alias_map()
        validate_query(self.db, query)
        with self._stats_lock:
            self.blocks_executed += 1
        candidates = self._pushdown(query, alias_map)
        if observe is not None:
            for cand in candidates.values():
                if cand is not None:
                    observe(len(cand))
        joined = self._join_all(query, alias_map, candidates, observe)
        if query.group_by:
            joined = self._aggregate(query, alias_map, joined)
        return self._project(query, alias_map, joined)

    def execute_block(
        self,
        query: Query,
        observe: Optional[Callable[[int], None]] = None,
    ) -> ResultSet:
        """Public single-block entry point with the observer hook."""
        return self._execute_block(query, observe)

    # ------------------------------------------------------------------
    # predicate pushdown
    # ------------------------------------------------------------------
    def _pushdown(
        self, query: Query, alias_map: Dict[str, str]
    ) -> Dict[str, Optional[List[int]]]:
        """Per-alias candidate row ids (``None`` means "all rows")."""
        by_alias: Dict[str, List[Predicate]] = {}
        for pred in query.predicates:
            by_alias.setdefault(pred.column.table, []).append(pred)
        out: Dict[str, Optional[List[int]]] = {}
        for alias in alias_map:
            preds = by_alias.get(alias)
            out[alias] = None if not preds else self._filter_table(
                alias_map[alias], preds
            )
        return out

    def _filter_table(self, table: str, preds: List[Predicate]) -> List[int]:
        """Row ids of ``table`` satisfying all of ``preds``."""
        first, rest = preds[0], preds[1:]
        rids = self._index_scan(table, first)
        if not rest:
            return rids
        relation = self.db.relation(table)
        columns = {
            p.column.column: relation.column(p.column.column) for p in rest
        }
        out = []
        for rid in rids:
            if all(p.matches(columns[p.column.column][rid]) for p in rest):
                out.append(rid)
        return out

    def _index_scan(self, table: str, pred: Predicate) -> List[int]:
        """Resolve one predicate via the best available index."""
        column = pred.column.column
        if pred.op is Op.EQ:
            return list(self.db.hash_index(table, column).lookup(pred.value))
        if pred.op is Op.IN:
            return self.db.hash_index(table, column).lookup_many(
                sorted(pred.value, key=repr)  # type: ignore[arg-type]
            )
        index = self.db.sorted_index(table, column)
        if pred.op is Op.GE:
            return index.range(low=pred.value)
        if pred.op is Op.LE:
            return index.range(high=pred.value)
        if pred.op is Op.BETWEEN:
            low, high = pred.value  # type: ignore[misc]
            return index.range(low=low, high=high)
        raise QueryError(f"unsupported op {pred.op!r}")

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def _join_all(
        self,
        query: Query,
        alias_map: Dict[str, str],
        candidates: Dict[str, Optional[List[int]]],
        observe: Optional[Callable[[int], None]] = None,
    ) -> List[Dict[str, int]]:
        """Join every table; returns bindings alias -> row id."""
        aliases = list(alias_map)
        if not aliases:
            return []

        def estimated_size(alias: str) -> int:
            cand = candidates[alias]
            if cand is not None:
                return len(cand)
            return len(self.db.relation(alias_map[alias]))

        start = min(aliases, key=estimated_size)
        cand = candidates[start]
        rids = cand if cand is not None else list(
            self.db.relation(alias_map[start]).row_ids()
        )
        partials: List[Dict[str, int]] = [{start: rid} for rid in rids]
        if observe is not None:
            observe(len(partials))
        bound = {start}
        remaining_joins = list(query.joins)

        while len(bound) < len(aliases):
            next_alias, connecting = self._pick_next(
                aliases, bound, remaining_joins, estimated_size
            )
            if next_alias is None:
                # Disconnected query graph: fall back to a cross product with
                # the smallest remaining table (rare; kept for completeness).
                next_alias = min(
                    (a for a in aliases if a not in bound), key=estimated_size
                )
                connecting = []
            partials = self._extend(
                partials, next_alias, alias_map, candidates, connecting, observe
            )
            if observe is not None:
                observe(len(partials))
            bound.add(next_alias)
            remaining_joins = [j for j in remaining_joins if j not in connecting]
            if not partials:
                break

        # Any join conditions not consumed (e.g. both sides already bound by
        # other paths / cycles) are applied as residual filters.
        for join in remaining_joins:
            partials = self._apply_residual(partials, join, alias_map)
        return partials

    def _pick_next(
        self,
        aliases: Sequence[str],
        bound: Set[str],
        joins: Sequence[JoinCondition],
        estimated_size,
    ) -> Tuple[Optional[str], List[JoinCondition]]:
        """Choose the next table connected to the bound set via some join."""
        best: Optional[str] = None
        for alias in sorted(
            (a for a in aliases if a not in bound), key=estimated_size
        ):
            connecting = [
                j
                for j in joins
                if j.touches(alias) and j.other_side(alias).table in bound
            ]
            if connecting:
                return alias, connecting
            if best is None:
                best = alias
        return None, []

    #: Binding-growth granularity at which the observer hook fires
    #: inside one extension wave.
    _OBSERVE_EVERY = 4096

    def _extend(
        self,
        partials: List[Dict[str, int]],
        alias: str,
        alias_map: Dict[str, str],
        candidates: Dict[str, Optional[List[int]]],
        connecting: List[JoinCondition],
        observe: Optional[Callable[[int], None]] = None,
    ) -> List[Dict[str, int]]:
        """Extend partial bindings with one more table."""
        table = alias_map[alias]
        relation = self.db.relation(table)
        cand = candidates[alias]
        if not connecting:
            rids = cand if cand is not None else list(relation.row_ids())
            if observe is not None:
                # A cross-product wave can explode on its own; surface the
                # size before materialising it.
                observe(len(partials) * len(rids))
            return [
                dict(partial, **{alias: rid}) for partial in partials for rid in rids
            ]
        probe = connecting[0]
        probe_col = probe.side_of(alias).column
        other = probe.other_side(alias)
        other_store = self.db.relation(alias_map[other.table]).column(other.column)
        index = self.db.hash_index(table, probe_col)
        allowed = set(cand) if cand is not None else None
        checks = []
        for join in connecting[1:]:
            mine = join.side_of(alias).column
            theirs = join.other_side(alias)
            checks.append(
                (
                    relation.column(mine),
                    theirs.table,
                    self.db.relation(alias_map[theirs.table]).column(theirs.column),
                )
            )
        out: List[Dict[str, int]] = []
        for partial in partials:
            key = other_store[partial[other.table]]
            if key is None:
                continue
            for rid in index.lookup(key):
                if allowed is not None and rid not in allowed:
                    continue
                ok = True
                for mine_store, their_alias, their_store in checks:
                    mine_value = mine_store[rid]
                    if mine_value is None or mine_value != their_store[
                        partial[their_alias]
                    ]:
                        ok = False
                        break
                if ok:
                    extended = dict(partial)
                    extended[alias] = rid
                    out.append(extended)
                    if (
                        observe is not None
                        and len(out) % self._OBSERVE_EVERY == 0
                    ):
                        observe(len(out))
        return out

    def _apply_residual(
        self,
        partials: List[Dict[str, int]],
        join: JoinCondition,
        alias_map: Dict[str, str],
    ) -> List[Dict[str, int]]:
        left_store = self.db.relation(alias_map[join.left.table]).column(
            join.left.column
        )
        right_store = self.db.relation(alias_map[join.right.table]).column(
            join.right.column
        )
        # NULL keys never join (matches the reference oracle's semantics).
        return [
            p
            for p in partials
            if left_store[p[join.left.table]] is not None
            and left_store[p[join.left.table]] == right_store[p[join.right.table]]
        ]

    # ------------------------------------------------------------------
    # aggregation & projection
    # ------------------------------------------------------------------
    def _aggregate(
        self,
        query: Query,
        alias_map: Dict[str, str],
        partials: List[Dict[str, int]],
    ) -> List[Dict[str, int]]:
        """GROUP BY + HAVING count(*): keep one binding per surviving group."""
        stores = [
            (ref.table, self.db.relation(alias_map[ref.table]).column(ref.column))
            for ref in query.group_by
        ]
        groups: Dict[Tuple[Any, ...], Tuple[int, Dict[str, int]]] = {}
        for partial in partials:
            key = tuple(store[partial[alias]] for alias, store in stores)
            count, representative = groups.get(key, (0, partial))
            groups[key] = (count + 1, representative)
        having = query.having
        out = []
        for count, representative in groups.values():
            if having is None or having.matches(count):
                out.append(representative)
        return out

    def _project(
        self,
        query: Query,
        alias_map: Dict[str, str],
        partials: List[Dict[str, int]],
    ) -> ResultSet:
        stores = [
            (ref.table, self.db.relation(alias_map[ref.table]).column(ref.column))
            for ref in query.select
        ]
        labels = tuple(str(ref) for ref in query.select)
        rows: List[Tuple[Any, ...]] = []
        seen: Set[Tuple[Any, ...]] = set()
        for partial in partials:
            row = tuple(store[partial[alias]] for alias, store in stores)
            if query.distinct:
                if row in seen:
                    continue
                seen.add(row)
            rows.append(row)
        return ResultSet(labels, rows)
