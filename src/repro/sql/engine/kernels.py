"""Numpy kernels shared by the vectorized backend and the statistics pass.

Three primitives cover everything the SPJ(A) pipeline needs:

* :func:`factorize` — dense integer codes for a value array (grouping,
  distinct, composite keys);
* :func:`join_sorted` / :func:`equi_join` — sort/searchsorted equi-joins
  producing matching (probe, build) index pairs, with a hash fallback for
  unsortable object columns;
* :func:`combine_codes` — composite group codes with overflow detection.

All kernels accept the ``object``-dtype arrays the relation layer produces
for TEXT/BOOL columns and degrade to dict-based Python paths when numpy's
ordering machinery rejects the values (mixed incomparable types).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def factorize(values: np.ndarray, mask: Optional[np.ndarray] = None) -> Tuple[np.ndarray, List]:
    """Encode ``values`` as dense int64 codes.

    Returns ``(codes, uniques)`` where ``codes[i]`` indexes into
    ``uniques`` for rows with ``mask[i]`` True and is ``-1`` for NULL
    rows.  ``uniques`` holds Python scalars in ascending order when the
    values are sortable, first-seen order otherwise.
    """
    n = len(values)
    codes = np.full(n, -1, dtype=np.int64)
    if mask is None:
        nn = np.arange(n)
        sub = values
    else:
        nn = np.nonzero(mask)[0]
        sub = values[nn]
    if nn.size == 0:
        return codes, []
    try:
        uniq, inverse = np.unique(sub, return_inverse=True)
    except TypeError:
        seen: dict = {}
        inv_list = []
        for value in sub.tolist():
            code = seen.get(value)
            if code is None:
                code = len(seen)
                seen[value] = code
            inv_list.append(code)
        codes[nn] = np.asarray(inv_list, dtype=np.int64)
        return codes, list(seen)
    codes[nn] = inverse.astype(np.int64, copy=False)
    return codes, uniq.tolist()


def combine_codes(parts: List[Tuple[np.ndarray, int]]) -> Optional[np.ndarray]:
    """Merge per-column codes (``-1`` = NULL) into one composite code.

    ``parts`` pairs each code array with its cardinality (number of
    distinct non-null codes).  NULL becomes its own group per column.
    Returns ``None`` when the composite key space would overflow int64;
    callers then fall back to tuple-based grouping.
    """
    if not parts:
        return None
    bits = sum(np.log2(k + 1) for _, k in parts)
    if bits > 62:
        return None
    combined: Optional[np.ndarray] = None
    for codes, k in parts:
        shifted = codes + 1  # NULL (-1) -> 0, real codes -> 1..k
        combined = shifted if combined is None else combined * (k + 1) + shifted
    return combined


def join_sorted(probe: np.ndarray, sorted_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Match ``probe`` against an ascending key array.

    Returns ``(probe_idx, sorted_pos)``: for every match, the index into
    ``probe`` and the position within ``sorted_keys``.  Both sides must be
    NULL-free; dtypes are promoted to a common numeric type first.
    """
    if probe.size == 0 or sorted_keys.size == 0:
        return _EMPTY, _EMPTY
    if probe.dtype != sorted_keys.dtype and probe.dtype != object and sorted_keys.dtype != object:
        common = np.result_type(probe.dtype, sorted_keys.dtype)
        probe = probe.astype(common, copy=False)
        sorted_keys = sorted_keys.astype(common, copy=False)
    left = np.searchsorted(sorted_keys, probe, side="left")
    right = np.searchsorted(sorted_keys, probe, side="right")
    counts = right - left
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    probe_idx = np.repeat(np.arange(probe.size, dtype=np.int64), counts)
    starts = np.repeat(left, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return probe_idx, starts + offsets


def equi_join(probe: np.ndarray, build: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """All matching index pairs between two non-NULL key arrays.

    Returns ``(probe_idx, build_idx)``: parallel int64 arrays such that
    ``probe[probe_idx[i]] == build[build_idx[i]]`` for every ``i``.
    Object-dtype (or otherwise unsortable) inputs fall back to a
    dict-based hash join, whose equality semantics match the interpreted
    engine's hash indexes.
    """
    if probe.size == 0 or build.size == 0:
        return _EMPTY, _EMPTY
    if probe.dtype == object or build.dtype == object:
        return hash_join(probe, build)
    order = np.argsort(build, kind="stable")
    probe_idx, sorted_pos = join_sorted(probe, build[order])
    return probe_idx, order[sorted_pos]


class JoinBuild:
    """A reusable build side: sort (or bucket) once, probe many times.

    The sharded engine probes one build side with every shard's keys;
    re-sorting per shard would erase the fan-out win.  ``probe`` returns
    ``(probe_idx, build_row_ids)`` in exactly the order the one-shot
    :func:`equi_join` / :func:`hash_join` path produces over the same
    build input, so shard results concatenate into the single-process
    row sequence byte for byte.

    ``keys``/``row_ids`` must be parallel and NULL-free, with ``row_ids``
    ascending unless ``presorted`` marks ``keys`` as already value-sorted
    (a relation's cached sorted view).
    """

    def __init__(
        self, keys: np.ndarray, row_ids: np.ndarray, presorted: bool = False
    ) -> None:
        self.keys = keys
        self.row_ids = row_ids
        self._sorted: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._buckets: Optional[dict] = None
        if presorted:
            self._sorted = (keys, row_ids)

    def _sorted_build(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._sorted is None:
            order = np.argsort(self.keys, kind="stable")
            self._sorted = (self.keys[order], self.row_ids[order])
        return self._sorted

    def _bucket_map(self) -> dict:
        if self._buckets is None:
            # Bucket in ascending-row-id order so hit order matches
            # hash_join over the rid-ordered build side.
            order = np.argsort(self.row_ids, kind="stable")
            rids = self.row_ids[order]
            buckets: dict = {}
            for key, rid in zip(self.keys[order].tolist(), rids.tolist()):
                buckets.setdefault(key, []).append(rid)
            self._buckets = buckets
        return self._buckets

    def probe(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Match ``probe_keys``; returns ``(probe_idx, build_row_ids)``."""
        if self.keys.size == 0 or probe_keys.size == 0:
            return _EMPTY, _EMPTY
        if probe_keys.dtype != object and self.keys.dtype != object:
            try:
                sorted_keys, sorted_rids = self._sorted_build()
                probe_idx, pos = join_sorted(probe_keys, sorted_keys)
            except TypeError:
                pass
            else:
                return probe_idx, sorted_rids[pos]
        return self._hash_probe(probe_keys)

    def _hash_probe(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        buckets = self._bucket_map()
        probe_idx: List[int] = []
        build_rids: List[int] = []
        for j, key in enumerate(probe_keys.tolist()):
            hits = buckets.get(key)
            if hits:
                probe_idx.extend([j] * len(hits))
                build_rids.extend(hits)
        return (
            np.asarray(probe_idx, dtype=np.int64),
            np.asarray(build_rids, dtype=np.int64),
        )


def hash_join(probe: np.ndarray, build: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dict-based equi-join for keys that only support hashing/equality."""
    buckets: dict = {}
    for i, key in enumerate(build.tolist()):
        buckets.setdefault(key, []).append(i)
    probe_idx: List[int] = []
    build_idx: List[int] = []
    for j, key in enumerate(probe.tolist()):
        hits = buckets.get(key)
        if hits:
            probe_idx.extend([j] * len(hits))
            build_idx.extend(hits)
    return (
        np.asarray(probe_idx, dtype=np.int64),
        np.asarray(build_idx, dtype=np.int64),
    )
