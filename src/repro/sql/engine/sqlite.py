"""SQLite execution backend: an in-memory mirror of the αDB.

The backend lazily loads each relation a query touches into an in-memory
``sqlite3`` database (the standard library's embedded engine — no extra
dependency) and compiles our SPJ(A, intersect) ASTs to SQLite SQL with
bound parameters.  Loaded tables are stamped with the source relation's
``(uid, version)`` and transparently reloaded after mutations, mirroring
the paper's use of an off-the-shelf RDBMS as the execution substrate.

Semantics notes kept aligned with the reference engine:

* NULL never satisfies a predicate and never joins (plain SQL);
* BOOL columns are stored as INTEGER 0/1 and converted back to Python
  bools during result materialisation;
* DISTINCT / INTERSECT set semantics match, though row *order* may differ
  from the interpreted engine (callers compare results as sets).

SQLite refuses joins of more than 64 tables ("at most 64 tables in a
join"), a limit QRE-style abduced queries exceed easily — the optimistic
configuration keeps every coincidental filter, and each derived filter
appends an αDB relation alias.  Blocks wider than
:data:`MAX_JOIN_TABLES` therefore compile to **chained CTEs**: the
FROM list is split into narrow chunks, each CTE joins the previous CTE
with the next chunk (projecting every column later stages still need as
``alias__column``), predicates are applied in the chunk that owns their
alias, and the final stage applies DISTINCT / GROUP BY / HAVING.
Intermediate dedup depends on the block: plain-DISTINCT finals let every
stage ``SELECT DISTINCT`` (rows agreeing on all carried columns are
interchangeable, which bounds the join-multiplicity blow-up), while
GROUP BY / HAVING ``count(*)`` blocks keep every stage bag-valued so row
multiplicity is preserved exactly.
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set, Tuple

from ...relational.relation import Relation
from ...relational.types import ColumnType
from ..ast import AnyQuery, ColumnRef, IntersectQuery, Op, Query
from ..result import ResultSet
from .base import ExecutionBackend, tables_of, validate_query

#: Widest FROM list compiled as a single join; sqlite3's hard limit is
#: 64 tables, kept with headroom.
MAX_JOIN_TABLES = 60

#: Join width per chained-CTE stage.  Deliberately much narrower than
#: the hard limit: each stage deduplicates (when the block allows it)
#: before the next joins on top, so narrow stages bound the worst-case
#: intermediate multiplicity blow-up that one maximal-width join would
#: have to enumerate in full.
CHAIN_STAGE_TABLES = 16

#: ``AS MATERIALIZED`` needs SQLite >= 3.35 (2021); older runtimes fall
#: back to the LIMIT clause added per-CTE, which equally prohibits the
#: flattener from folding stages back into one over-wide join.
_MATERIALIZED = (
    "MATERIALIZED " if sqlite3.sqlite_version_info >= (3, 35, 0) else ""
)

_AFFINITY = {
    ColumnType.INT: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.TEXT: "TEXT",
    ColumnType.BOOL: "INTEGER",
}


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def _to_sqlite(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int) and not _INT64_MIN <= value <= _INT64_MAX:
        # SQLite cannot bind ints beyond 64 bits; REAL keeps the numeric
        # comparison semantics the reference engines apply.
        return float(value)
    return value


def _type_matches(value: Any, ctype: ColumnType) -> bool:
    """Whether an EQ/IN constant can possibly match a column of ``ctype``.

    Guards against SQLite's type affinity: binding the string ``"3"``
    against an INTEGER column would be coerced and match numerically,
    where the reference engine's Python equality never does.
    """
    if value is None:
        return True  # NULL comparison: never matches, but affinity-safe
    if ctype is ColumnType.TEXT:
        return isinstance(value, str)
    # INT/FLOAT/BOOL all compare numerically in Python (True == 1), and
    # the mirror stores them with numeric affinity, so any numeric
    # constant (bool included) is representation-faithful.
    return isinstance(value, (int, float))


def _require_comparable(value: Any, ctype: ColumnType) -> None:
    """Range predicates with a type-mismatched constant must raise.

    The reference engines hit a Python ``TypeError`` when ordering a
    string against a numeric column (or vice versa); SQLite's affinity
    would instead silently coerce, diverging from them.
    """
    if not _type_matches(value, ctype):
        raise TypeError(
            f"cannot order {value!r} against a {ctype.value} column"
        )


@dataclass
class _CompiledBlock:
    """One compiled SPJ(A) block: optional CTE chain plus final SELECT.

    ``params`` binds the final SELECT only; each CTE carries its own (the
    statement assembler concatenates them in textual order)."""

    select_sql: str
    params: List[Any]
    ctes: List[Tuple[str, str, List[Any]]] = field(default_factory=list)


class SqliteBackend(ExecutionBackend):
    """Compiles query ASTs to SQL against an in-memory SQLite mirror."""

    name = "sqlite"

    def __init__(self, database) -> None:
        super().__init__(database)
        # One connection serves all threads of a batch session: SQLite
        # connections are not concurrency-safe, so cross-thread use is
        # allowed but serialised by ``_lock`` around every execution.
        self._conn = sqlite3.connect(":memory:", check_same_thread=False)
        self._lock = threading.Lock()
        self._loaded: Dict[str, Tuple[int, int]] = {}
        self.statements = 0
        self.mirror_loads = 0

    # ------------------------------------------------------------------
    # mirror maintenance
    # ------------------------------------------------------------------
    def _ensure_loaded(self, tables: Sequence[str]) -> int:
        """Refresh stale mirror tables; returns how many were (re)loaded."""
        loaded = 0
        for name in tables:
            relation = self.db.relation(name)
            stamp = (relation.uid, relation.version)
            if self._loaded.get(name) == stamp:
                continue
            self._load(name, relation)
            self._loaded[name] = stamp
            loaded += 1
        return loaded

    def _load(self, name: str, relation: Relation) -> None:
        schema = relation.schema
        self._conn.execute(f"DROP TABLE IF EXISTS {_quote(name)}")
        columns = ", ".join(
            f"{_quote(col.name)} {_AFFINITY[col.ctype]}" for col in schema.columns
        )
        self._conn.execute(f"CREATE TABLE {_quote(name)} ({columns})")
        placeholders = ", ".join("?" for _ in schema.columns)
        stores = [relation.column(col.name) for col in schema.columns]
        bool_positions = [
            i for i, col in enumerate(schema.columns) if col.ctype is ColumnType.BOOL
        ]
        rows: Any = zip(*stores) if stores else []
        if bool_positions:
            rows = (
                tuple(
                    _to_sqlite(v) if i in bool_positions else v
                    for i, v in enumerate(row)
                )
                for row in rows
            )
        self._conn.executemany(
            f"INSERT INTO {_quote(name)} VALUES ({placeholders})", rows
        )
        self._conn.commit()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: AnyQuery) -> ResultSet:
        """Compile to SQLite SQL, run, and convert the rows back."""
        validate_query(self.db, query)
        if isinstance(query, IntersectQuery):
            blocks = query.blocks
            compiled = [
                self._compile_block(b, cte_prefix=f"b{i}_")
                for i, b in enumerate(blocks)
            ]
            first = blocks[0]
        else:
            compiled = [self._compile_block(query)]
            first = query
        ctes = [cte for block in compiled for cte in block.ctes]
        sql = ""
        if ctes:
            # MATERIALIZED stops the query flattener from inlining the
            # chain back into one >64-table join (the whole point of it).
            sql = "WITH " + ",\n".join(
                f"{_quote(name)} AS {_MATERIALIZED}(\n{body}\n)"
                for name, body, _ in ctes
            ) + "\n"
        sql += "\nINTERSECT\n".join(block.select_sql for block in compiled)
        # Bound parameters must follow textual order: every CTE body
        # precedes every block's final SELECT in the emitted statement.
        params = [p for _, _, cte_params in ctes for p in cte_params]
        params += [p for block in compiled for p in block.params]
        with self._lock:
            self.mirror_loads += self._ensure_loaded(tables_of(query))
            self.statements += 1
            rows = self._conn.execute(sql, params).fetchall()
        return ResultSet(
            tuple(str(ref) for ref in first.select),
            self._convert_rows(first, rows),
        )

    def _column_type(self, alias_map: Dict[str, str], ref: ColumnRef) -> ColumnType:
        schema = self.db.relation(alias_map[ref.table]).schema
        return schema.columns[schema.column_position(ref.column)].ctype

    def _predicate_conjunct(
        self, col: str, pred, ctype: ColumnType, params: List[Any]
    ) -> str:
        """One WHERE conjunct for ``pred`` over the rendered column ``col``
        (shared by the flat and chained-CTE compilers so the affinity
        guards stay identical)."""
        if pred.op is Op.BETWEEN:
            low, high = pred.value  # type: ignore[misc]
            _require_comparable(low, ctype)
            _require_comparable(high, ctype)
            params.extend([_to_sqlite(low), _to_sqlite(high)])
            return f"{col} BETWEEN ? AND ?"
        if pred.op is Op.IN:
            members = [
                m
                for m in sorted(pred.value, key=repr)  # type: ignore[arg-type]
                if _type_matches(m, ctype)
            ]
            if not members:
                return "1 = 0"
            marks = ", ".join("?" for _ in members)
            params.extend(_to_sqlite(m) for m in members)
            return f"{col} IN ({marks})"
        if pred.op is Op.EQ and not _type_matches(pred.value, ctype):
            return "1 = 0"
        if pred.op in (Op.GE, Op.LE):
            _require_comparable(pred.value, ctype)
        params.append(_to_sqlite(pred.value))
        return f"{col} {pred.op.value} ?"

    def _compile_block(
        self, query: Query, cte_prefix: str = ""
    ) -> "_CompiledBlock":
        if len(query.tables) > MAX_JOIN_TABLES:
            return self._compile_chained(query, cte_prefix)
        alias_map = query.alias_map()
        params: List[Any] = []
        select_kw = "SELECT DISTINCT" if query.distinct else "SELECT"
        select = ", ".join(
            f"{_quote(ref.table)}.{_quote(ref.column)}" for ref in query.select
        )
        tables = ", ".join(
            f"{_quote(t.name)} AS {_quote(t.alias)}" for t in query.tables
        )
        lines = [f"{select_kw} {select}", f"FROM {tables}"]
        conjuncts: List[str] = []
        for join in query.joins:
            conjuncts.append(
                f"{_quote(join.left.table)}.{_quote(join.left.column)} = "
                f"{_quote(join.right.table)}.{_quote(join.right.column)}"
            )
        for pred in query.predicates:
            col = f"{_quote(pred.column.table)}.{_quote(pred.column.column)}"
            conjuncts.append(
                self._predicate_conjunct(
                    col, pred, self._column_type(alias_map, pred.column), params
                )
            )
        if conjuncts:
            lines.append("WHERE " + "\n  AND ".join(conjuncts))
        if query.group_by:
            group = ", ".join(
                f"{_quote(ref.table)}.{_quote(ref.column)}" for ref in query.group_by
            )
            lines.append(f"GROUP BY {group}")
        if query.having is not None:
            op = "=" if query.having.op is Op.EQ else query.having.op.value
            lines.append(f"HAVING count(*) {op} ?")
            params.append(int(query.having.value))
        return _CompiledBlock(select_sql="\n".join(lines), params=params)

    def _compile_chained(
        self, query: Query, cte_prefix: str = ""
    ) -> "_CompiledBlock":
        """Compile a too-wide block as chained CTEs (see module docs).

        The FROM list is chunked in declaration order; the abduced star
        shape (every filter alias joins back to the entity table, which
        comes first) guarantees each chunk's joins can reach everything
        they reference — earlier aliases travel forward through the
        previous CTE's projection as ``alias__column``.
        """
        alias_map = query.alias_map()
        aliases = [t.alias for t in query.tables]
        table_of = {t.alias: t.name for t in query.tables}
        # First chunk is a plain join; later chunks spend one slot on the
        # previous CTE.
        chunk_width = CHAIN_STAGE_TABLES - 1
        chunks = [aliases[:CHAIN_STAGE_TABLES]]
        rest = aliases[CHAIN_STAGE_TABLES:]
        chunks += [
            rest[i : i + chunk_width] for i in range(0, len(rest), chunk_width)
        ]
        chunk_of = {
            alias: k for k, chunk in enumerate(chunks) for alias in chunk
        }
        # Columns each alias must carry forward: whatever any join, the
        # projection, or the grouping references (predicates are applied
        # inside the owning chunk and never need forwarding).
        carried: Dict[str, Set[str]] = {alias: set() for alias in aliases}
        for join in query.joins:
            carried[join.left.table].add(join.left.column)
            carried[join.right.table].add(join.right.column)
        for ref in query.select + query.group_by:
            carried[ref.table].add(ref.column)
        # A join belongs to the first chunk where both sides exist.
        joins_in: Dict[int, List[Any]] = {}
        for join in query.joins:
            stage = max(chunk_of[join.left.table], chunk_of[join.right.table])
            joins_in.setdefault(stage, []).append(join)
        preds_in: Dict[int, List[Any]] = {}
        for pred in query.predicates:
            preds_in.setdefault(chunk_of[pred.column.table], []).append(pred)

        # When the final SELECT is a plain DISTINCT (the abduced Q5 shape
        # — the only query family wide enough to get here), rows agreeing
        # on every carried column are interchangeable downstream, so each
        # stage may deduplicate.  That keeps the chain linear where the
        # raw join multiplicities would explode combinatorially.  With
        # GROUP BY / HAVING count(*) multiplicity is semantics, so the
        # stages must stay bag-valued.
        dedup = query.distinct and not query.group_by and query.having is None

        def cte_name(k: int) -> str:
            return f"{cte_prefix}stage{k}"

        def forwarded(ref: ColumnRef) -> str:
            return f"{ref.table}__{ref.column}"

        ctes: List[Tuple[str, str, List[Any]]] = []
        for k, chunk in enumerate(chunks):
            in_chunk = set(chunk)

            def render(ref: ColumnRef) -> str:
                if ref.table in in_chunk:
                    return f"{_quote(ref.table)}.{_quote(ref.column)}"
                return f"{_quote(cte_name(k - 1))}.{_quote(forwarded(ref))}"

            params: List[Any] = []
            from_parts = []
            if k > 0:
                from_parts.append(_quote(cte_name(k - 1)))
            from_parts += [
                f"{_quote(table_of[alias])} AS {_quote(alias)}"
                for alias in chunk
            ]
            conjuncts = [
                f"{render(join.left)} = {render(join.right)}"
                for join in joins_in.get(k, [])
            ]
            for pred in preds_in.get(k, []):
                conjuncts.append(
                    self._predicate_conjunct(
                        render(pred.column),
                        pred,
                        self._column_type(alias_map, pred.column),
                        params,
                    )
                )
            # Project every carried column of every alias seen so far.
            projection = []
            for alias in aliases:
                if chunk_of[alias] > k:
                    continue
                for column in sorted(carried[alias]):
                    ref = ColumnRef(alias, column)
                    projection.append(
                        f"{render(ref)} AS {_quote(forwarded(ref))}"
                    )
            select_kw = "SELECT DISTINCT" if dedup else "SELECT"
            lines = [f"{select_kw} " + ", ".join(projection)]
            lines.append("FROM " + ", ".join(from_parts))
            if conjuncts:
                lines.append("WHERE " + "\n  AND ".join(conjuncts))
            if not _MATERIALIZED:  # pragma: no cover - old-SQLite fallback
                lines.append("LIMIT -1")
            ctes.append((cte_name(k), "\n".join(lines), params))

        last = _quote(cte_name(len(chunks) - 1))
        select_kw = "SELECT DISTINCT" if query.distinct else "SELECT"
        select = ", ".join(
            f"{last}.{_quote(forwarded(ref))}" for ref in query.select
        )
        final_params: List[Any] = []
        lines = [f"{select_kw} {select}", f"FROM {last}"]
        if query.group_by:
            group = ", ".join(
                f"{last}.{_quote(forwarded(ref))}" for ref in query.group_by
            )
            lines.append(f"GROUP BY {group}")
        if query.having is not None:
            op = "=" if query.having.op is Op.EQ else query.having.op.value
            lines.append(f"HAVING count(*) {op} ?")
            final_params.append(int(query.having.value))
        return _CompiledBlock(
            ctes=ctes, select_sql="\n".join(lines), params=final_params
        )

    def _convert_rows(
        self, query: Query, rows: List[Tuple[Any, ...]]
    ) -> List[Tuple[Any, ...]]:
        """Map SQLite values back to engine types (INTEGER 0/1 -> bool)."""
        alias_map = query.alias_map()
        bool_positions = []
        for i, ref in enumerate(query.select):
            schema = self.db.relation(alias_map[ref.table]).schema
            position = schema.column_position(ref.column)
            if schema.columns[position].ctype is ColumnType.BOOL:
                bool_positions.append(i)
        if not bool_positions:
            return [tuple(row) for row in rows]
        positions = set(bool_positions)
        return [
            tuple(
                bool(v) if i in positions and v is not None else v
                for i, v in enumerate(row)
            )
            for row in rows
        ]

    def stats(self) -> Dict[str, int]:
        """Execution counters: statements run, mirror (re)load scans."""
        with self._lock:
            return {
                "sqlite_statements": self.statements,
                "sqlite_mirror_loads": self.mirror_loads,
            }

    def close(self) -> None:
        self._conn.close()
        self._loaded.clear()
