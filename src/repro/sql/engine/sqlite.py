"""SQLite execution backend: an in-memory mirror of the αDB.

The backend lazily loads each relation a query touches into an in-memory
``sqlite3`` database (the standard library's embedded engine — no extra
dependency) and compiles our SPJ(A, intersect) ASTs to SQLite SQL with
bound parameters.  Loaded tables are stamped with the source relation's
``(uid, version)`` and transparently reloaded after mutations, mirroring
the paper's use of an off-the-shelf RDBMS as the execution substrate.

Semantics notes kept aligned with the reference engine:

* NULL never satisfies a predicate and never joins (plain SQL);
* BOOL columns are stored as INTEGER 0/1 and converted back to Python
  bools during result materialisation;
* DISTINCT / INTERSECT set semantics match, though row *order* may differ
  from the interpreted engine (callers compare results as sets).
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Any, Dict, List, Sequence, Tuple

from ...relational.relation import Relation
from ...relational.types import ColumnType
from ..ast import AnyQuery, IntersectQuery, Op, Query
from ..result import ResultSet
from .base import ExecutionBackend, tables_of, validate_query

_AFFINITY = {
    ColumnType.INT: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.TEXT: "TEXT",
    ColumnType.BOOL: "INTEGER",
}


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def _to_sqlite(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int) and not _INT64_MIN <= value <= _INT64_MAX:
        # SQLite cannot bind ints beyond 64 bits; REAL keeps the numeric
        # comparison semantics the reference engines apply.
        return float(value)
    return value


def _type_matches(value: Any, ctype: ColumnType) -> bool:
    """Whether an EQ/IN constant can possibly match a column of ``ctype``.

    Guards against SQLite's type affinity: binding the string ``"3"``
    against an INTEGER column would be coerced and match numerically,
    where the reference engine's Python equality never does.
    """
    if value is None:
        return True  # NULL comparison: never matches, but affinity-safe
    if ctype is ColumnType.TEXT:
        return isinstance(value, str)
    # INT/FLOAT/BOOL all compare numerically in Python (True == 1), and
    # the mirror stores them with numeric affinity, so any numeric
    # constant (bool included) is representation-faithful.
    return isinstance(value, (int, float))


def _require_comparable(value: Any, ctype: ColumnType) -> None:
    """Range predicates with a type-mismatched constant must raise.

    The reference engines hit a Python ``TypeError`` when ordering a
    string against a numeric column (or vice versa); SQLite's affinity
    would instead silently coerce, diverging from them.
    """
    if not _type_matches(value, ctype):
        raise TypeError(
            f"cannot order {value!r} against a {ctype.value} column"
        )


class SqliteBackend(ExecutionBackend):
    """Compiles query ASTs to SQL against an in-memory SQLite mirror."""

    name = "sqlite"

    def __init__(self, database) -> None:
        super().__init__(database)
        # One connection serves all threads of a batch session: SQLite
        # connections are not concurrency-safe, so cross-thread use is
        # allowed but serialised by ``_lock`` around every execution.
        self._conn = sqlite3.connect(":memory:", check_same_thread=False)
        self._lock = threading.Lock()
        self._loaded: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # mirror maintenance
    # ------------------------------------------------------------------
    def _ensure_loaded(self, tables: Sequence[str]) -> None:
        for name in tables:
            relation = self.db.relation(name)
            stamp = (relation.uid, relation.version)
            if self._loaded.get(name) == stamp:
                continue
            self._load(name, relation)
            self._loaded[name] = stamp

    def _load(self, name: str, relation: Relation) -> None:
        schema = relation.schema
        self._conn.execute(f"DROP TABLE IF EXISTS {_quote(name)}")
        columns = ", ".join(
            f"{_quote(col.name)} {_AFFINITY[col.ctype]}" for col in schema.columns
        )
        self._conn.execute(f"CREATE TABLE {_quote(name)} ({columns})")
        placeholders = ", ".join("?" for _ in schema.columns)
        stores = [relation.column(col.name) for col in schema.columns]
        bool_positions = [
            i for i, col in enumerate(schema.columns) if col.ctype is ColumnType.BOOL
        ]
        rows: Any = zip(*stores) if stores else []
        if bool_positions:
            rows = (
                tuple(
                    _to_sqlite(v) if i in bool_positions else v
                    for i, v in enumerate(row)
                )
                for row in rows
            )
        self._conn.executemany(
            f"INSERT INTO {_quote(name)} VALUES ({placeholders})", rows
        )
        self._conn.commit()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: AnyQuery) -> ResultSet:
        """Compile to SQLite SQL, run, and convert the rows back."""
        validate_query(self.db, query)
        if isinstance(query, IntersectQuery):
            blocks = query.blocks
            compiled = [self._compile_block(b) for b in blocks]
            sql = "\nINTERSECT\n".join(text for text, _ in compiled)
            params = [p for _, block_params in compiled for p in block_params]
            first = blocks[0]
        else:
            sql, params = self._compile_block(query)
            first = query
        with self._lock:
            self._ensure_loaded(tables_of(query))
            rows = self._conn.execute(sql, params).fetchall()
        return ResultSet(
            tuple(str(ref) for ref in first.select),
            self._convert_rows(first, rows),
        )

    def _compile_block(self, query: Query) -> Tuple[str, List[Any]]:
        alias_map = query.alias_map()
        params: List[Any] = []
        select_kw = "SELECT DISTINCT" if query.distinct else "SELECT"
        select = ", ".join(
            f"{_quote(ref.table)}.{_quote(ref.column)}" for ref in query.select
        )
        tables = ", ".join(
            f"{_quote(t.name)} AS {_quote(t.alias)}" for t in query.tables
        )
        lines = [f"{select_kw} {select}", f"FROM {tables}"]
        conjuncts: List[str] = []
        for join in query.joins:
            conjuncts.append(
                f"{_quote(join.left.table)}.{_quote(join.left.column)} = "
                f"{_quote(join.right.table)}.{_quote(join.right.column)}"
            )
        for pred in query.predicates:
            col = f"{_quote(pred.column.table)}.{_quote(pred.column.column)}"
            schema = self.db.relation(alias_map[pred.column.table]).schema
            ctype = schema.columns[schema.column_position(pred.column.column)].ctype
            if pred.op is Op.BETWEEN:
                low, high = pred.value  # type: ignore[misc]
                _require_comparable(low, ctype)
                _require_comparable(high, ctype)
                conjuncts.append(f"{col} BETWEEN ? AND ?")
                params.extend([_to_sqlite(low), _to_sqlite(high)])
            elif pred.op is Op.IN:
                members = [
                    m
                    for m in sorted(pred.value, key=repr)  # type: ignore[arg-type]
                    if _type_matches(m, ctype)
                ]
                if not members:
                    conjuncts.append("1 = 0")
                    continue
                marks = ", ".join("?" for _ in members)
                conjuncts.append(f"{col} IN ({marks})")
                params.extend(_to_sqlite(m) for m in members)
            elif pred.op is Op.EQ and not _type_matches(pred.value, ctype):
                conjuncts.append("1 = 0")
            else:
                if pred.op in (Op.GE, Op.LE):
                    _require_comparable(pred.value, ctype)
                conjuncts.append(f"{col} {pred.op.value} ?")
                params.append(_to_sqlite(pred.value))
        if conjuncts:
            lines.append("WHERE " + "\n  AND ".join(conjuncts))
        if query.group_by:
            group = ", ".join(
                f"{_quote(ref.table)}.{_quote(ref.column)}" for ref in query.group_by
            )
            lines.append(f"GROUP BY {group}")
        if query.having is not None:
            op = "=" if query.having.op is Op.EQ else query.having.op.value
            lines.append(f"HAVING count(*) {op} ?")
            params.append(int(query.having.value))
        return "\n".join(lines), params

    def _convert_rows(
        self, query: Query, rows: List[Tuple[Any, ...]]
    ) -> List[Tuple[Any, ...]]:
        """Map SQLite values back to engine types (INTEGER 0/1 -> bool)."""
        alias_map = query.alias_map()
        bool_positions = []
        for i, ref in enumerate(query.select):
            schema = self.db.relation(alias_map[ref.table]).schema
            position = schema.column_position(ref.column)
            if schema.columns[position].ctype is ColumnType.BOOL:
                bool_positions.append(i)
        if not bool_positions:
            return [tuple(row) for row in rows]
        positions = set(bool_positions)
        return [
            tuple(
                bool(v) if i in positions and v is not None else v
                for i, v in enumerate(row)
            )
            for row in rows
        ]

    def close(self) -> None:
        self._conn.close()
        self._loaded.clear()
