"""Partition-parallel vectorized execution for wide abduced queries.

SQuID's abduced blocks are star joins of 70–130 αDB aliases; the
vectorized engine evaluates them on one core, carrying every bound
alias's row-id array through every extension — O(aliases² × rows) of
gather work on the widest stars.  This engine partitions the probe-side
start rows into contiguous shards and runs each shard through the same
kernel pipeline with two structural advantages:

* **a fixed plan** — :func:`~.vectorized.plan_joins` is computed once by
  the parent from the *full* candidate sizes, so every shard joins in
  the order the single-process engine would pick and shard outputs
  concatenate into the identical row sequence (the join kernels emit
  matches in probe order);
* **liveness pruning + shared build sides** — shards execute with
  ``prune=True`` (bindings drop as soon as no later join/projection
  reads them, collapsing the quadratic carry to O(aliases × rows ×
  live)) and share per-alias :class:`~.kernels.JoinBuild` objects, so
  each build side is sorted once per worker rather than once per shard;
* **stamped per-query state** — the pushdown candidates, the plan, the
  start row ids and the prepared builds are cached per formatted query
  under the database fingerprint (mutations invalidate), so repeat
  executions of the same abduced block — SQuID's pruning probes and
  evaluation reruns — skip straight to the kernel pipeline.

Shards fan out over a :class:`repro.parallel.ForkTaskPool` — the same
fork-once, copy-on-write machinery the discovery worker pool uses, so
relations are never pickled; children inherit the parent's warm column
and sorted views.  The pool is started lazily on the first activated
block, restarted when the database fingerprint changes (mutations), and
bypassed entirely inside foreign processes (a discovery worker that
fork-inherited this backend runs its shards in-process — nested pools
would deadlock on the inherited queues).

Merging preserves exact semantics: bag results concatenate in shard
order; DISTINCT dedupes first-seen across the concatenation; GROUP
BY/HAVING ships per-shard partial aggregates — (key values, count,
representative select row) in shard-local first-seen order — and the
parent sums counts, applies HAVING on the totals, and keeps the first
shard's representative, which is the global first-seen row.

Blocks below ``shard_min_rows`` (estimated start-rows × aliases) or with
fewer than two aliases take the inherited single-process path untouched.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...parallel import (
    ForkTaskPool,
    database_fingerprint,
    default_task_workers,
    fork_available,
)
from ...relational.database import Database
from ..ast import Query
from ..formatter import format_query
from ..result import ResultSet
from .base import validate_query
from .kernels import JoinBuild
from .vectorized import Bindings, Candidates, JoinPlan, VectorizedBackend, plan_joins

#: Default activation threshold: estimated start-rows × aliases below
#: which a block stays on the single-process vectorized path (the
#: fan-out's fixed costs dominate genuinely small blocks).
DEFAULT_SHARD_MIN_ROWS = 100_000

#: Cap on cached per-query block states (candidates, plan, prepared
#: build sides) — applied to both the parent's stamped cache and each
#: fork worker's snapshot-local cache.
_STATE_LIMIT = 64

AggPartial = List[Tuple[Tuple, int, Tuple]]
RowsPartial = List[Tuple]


def _row_stores(backend: VectorizedBackend, alias_map, refs):
    """(alias, column store) pairs for gathering Python values by row id."""
    return [
        (ref.table, backend.db.relation(alias_map[ref.table]).column(ref.column))
        for ref in refs
    ]


def _run_shard(
    backend: VectorizedBackend,
    query: Query,
    alias_map: Dict[str, str],
    candidates: Candidates,
    plan: JoinPlan,
    start_rids: np.ndarray,
    lo: int,
    hi: int,
    builds: Dict[str, JoinBuild],
) -> Tuple[str, Any]:
    """Execute one contiguous shard of the start rows to a partial."""
    bindings, count = backend._execute_plan(
        query,
        alias_map,
        candidates,
        plan,
        start_rids[lo:hi],
        prune=True,
        builds=builds,
    )
    if query.group_by:
        return "agg", _group_partial(backend, query, alias_map, bindings, count)
    return "rows", _project_partial(backend, query, alias_map, bindings, count)


def _project_partial(
    backend: VectorizedBackend,
    query: Query,
    alias_map: Dict[str, str],
    bindings: Bindings,
    count: int,
) -> RowsPartial:
    """Select-row tuples in shard row order (shard-local DISTINCT dedupe)."""
    if count == 0:
        return []
    stores = _row_stores(backend, alias_map, query.select)
    rows_by_alias = {
        alias: bindings[alias].tolist()
        for alias in {ref.table for ref in query.select}
    }
    rows: RowsPartial = []
    seen: set = set()
    for i in range(count):
        row = tuple(store[rows_by_alias[alias][i]] for alias, store in stores)
        if query.distinct:
            if row in seen:
                continue
            seen.add(row)
        rows.append(row)
    return rows


def _group_partial(
    backend: VectorizedBackend,
    query: Query,
    alias_map: Dict[str, str],
    bindings: Bindings,
    count: int,
) -> AggPartial:
    """(group key values, count, representative select row) per group.

    Groups appear in shard-local first-seen order; keys are the actual
    column values (codes are not comparable across shards), so the
    parent can merge by value equality — the same equality the
    single-process tuple-fallback aggregation uses.
    """
    if count == 0:
        return []
    group_stores = _row_stores(backend, alias_map, query.group_by)
    select_stores = _row_stores(backend, alias_map, query.select)
    touched = {ref.table for ref in query.group_by}
    touched |= {ref.table for ref in query.select}
    rows_by_alias = {alias: bindings[alias].tolist() for alias in touched}

    def key_at(i: int) -> Tuple:
        return tuple(store[rows_by_alias[a][i]] for a, store in group_stores)

    def row_at(i: int) -> Tuple:
        return tuple(store[rows_by_alias[a][i]] for a, store in select_stores)

    codes = backend._group_codes(query.group_by, bindings, alias_map, count)
    if codes is not None:
        _, first_idx, counts = np.unique(
            codes, return_index=True, return_counts=True
        )
        out: AggPartial = []
        for g in np.argsort(first_idx):  # shard-local first-seen order
            i = int(first_idx[g])
            out.append((key_at(i), int(counts[g]), row_at(i)))
        return out
    groups: "OrderedDict[Tuple, List]" = OrderedDict()
    for i in range(count):
        key = key_at(i)
        entry = groups.get(key)
        if entry is None:
            groups[key] = [1, i]
        else:
            entry[0] += 1
    return [(key, total, row_at(first)) for key, (total, first) in groups.items()]


class _ShardWorker:
    """Per-worker handler: caches per-query shard state across shards.

    One worker serves many shards of the same query (and many queries
    over the pool's lifetime); the pushdown candidates, the plan and the
    prepared build sides are computed once per (worker, query) and keyed
    by formatted SQL.  The worker's database is a copy-on-write snapshot
    frozen at fork time — the parent restarts the pool on any mutation —
    so the cache needs no stamps, only a size bound.
    """

    def __init__(self, db: Database, worker_id: int) -> None:
        self.backend = VectorizedBackend(db)
        self._states: "OrderedDict[str, Tuple]" = OrderedDict()

    def __call__(self, payload: Tuple) -> Tuple[str, Any]:
        qkey, query, plan, lo, hi = payload
        state = self._states.get(qkey)
        if state is None:
            alias_map = query.alias_map()
            candidates = self.backend._pushdown(query, alias_map)
            start_rids = self.backend._start_rids(
                alias_map, candidates, plan.start
            )
            state = (query, alias_map, candidates, plan, start_rids, {})
            while len(self._states) >= _STATE_LIMIT:
                self._states.popitem(last=False)
            self._states[qkey] = state
        else:
            self._states.move_to_end(qkey)
        _, alias_map, candidates, _, start_rids, builds = state
        return _run_shard(
            self.backend, query, alias_map, candidates, plan,
            start_rids, lo, hi, builds,
        )


def _shard_worker_factory(db: Database, worker_id: int) -> _ShardWorker:
    return _ShardWorker(db, worker_id)


class ShardedVectorizedBackend(VectorizedBackend):
    """Vectorized execution with partition-parallel wide blocks."""

    name = "sharded"

    def __init__(
        self,
        database: Database,
        *,
        shards: int = 0,
        shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
    ) -> None:
        super().__init__(database)
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        if shard_min_rows < 0:
            raise ValueError(
                f"shard_min_rows must be >= 0, got {shard_min_rows}"
            )
        self.shards = shards
        self.shard_min_rows = shard_min_rows
        self._owner_pid = os.getpid()
        self._pool: Optional[ForkTaskPool] = None
        self._pool_fingerprint = None
        self._lock = threading.Lock()
        self._states: "OrderedDict[str, Tuple]" = OrderedDict()
        self._state_hits = 0
        self._single_blocks = 0
        self._sharded_blocks = 0
        self._shards_launched = 0
        self._merge_seconds = 0.0
        self._pool_starts = 0
        self._pool_restarts = 0
        self._pool_fallbacks = 0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def resolved_shards(self) -> int:
        """Effective fan-out width (0 means auto: cores, capped at 8)."""
        return self.shards if self.shards > 0 else default_task_workers()

    # ------------------------------------------------------------------
    # single block
    # ------------------------------------------------------------------
    def _execute_block(self, query: Query) -> ResultSet:
        alias_map = query.alias_map()
        if not alias_map:
            return super()._execute_block(query)
        candidates, plan, start_rids, builds = self._block_state(
            query, alias_map
        )
        work = int(start_rids.size) * len(alias_map)
        if len(alias_map) < 2 or work < self.shard_min_rows:
            with self._lock:
                self._single_blocks += 1
            bindings, count = self._execute_plan(
                query, alias_map, candidates, plan, start_rids, builds=builds
            )
            return self._finish_block(query, alias_map, bindings, count)

        shard_count = max(1, min(self.resolved_shards(), int(start_rids.size)))
        bounds = self._shard_bounds(int(start_rids.size), shard_count)
        with self._lock:
            self._sharded_blocks += 1
            self._shards_launched += len(bounds)
        partials = self._run_shards(
            query, alias_map, candidates, plan, start_rids, bounds, builds
        )
        t0 = time.perf_counter()
        result = self._merge_partials(query, partials)
        with self._lock:
            self._merge_seconds += time.perf_counter() - t0
        return result

    def _block_state(
        self, query: Query, alias_map: Dict[str, str]
    ) -> Tuple[Candidates, JoinPlan, np.ndarray, Dict[str, JoinBuild]]:
        """Per-query execution state, cached under relation stamps.

        The pushdown candidates, the join plan, the start row ids and the
        prepared build sides only depend on the query text and the
        relations' contents, so they are cached keyed by formatted SQL
        and stamped with the database fingerprint — any mutation bumps a
        relation version and invalidates the entry.  This is the
        parent-side mirror of the fork workers' per-query cache: repeat
        executions of the same abduced block (pruning probes, evaluation
        reruns) skip straight to the kernel pipeline.  Nothing downstream
        mutates the cached arrays: plans are frozen, candidates and start
        rids are only read, and the shared builds dict only accretes
        lazily sorted build sides.
        """
        qkey = format_query(query)
        fingerprint = database_fingerprint(self.db)
        with self._lock:
            state = self._states.get(qkey)
            if state is not None and state[0] == fingerprint:
                self._states.move_to_end(qkey)
                self._state_hits += 1
                return state[1:]
        validate_query(self.db, query)
        candidates = self._pushdown(query, alias_map)
        plan = plan_joins(
            query, alias_map, self._size_estimator(alias_map, candidates)
        )
        start_rids = self._start_rids(alias_map, candidates, plan.start)
        state = (fingerprint, candidates, plan, start_rids, {})
        with self._lock:
            while len(self._states) >= _STATE_LIMIT:
                self._states.popitem(last=False)
            self._states[qkey] = state
        return state[1:]

    def _finish_block(
        self, query: Query, alias_map, bindings: Bindings, count: int
    ) -> ResultSet:
        if query.group_by:
            bindings, count = self._aggregate(query, alias_map, bindings, count)
        return self._project(query, alias_map, bindings, count)

    @staticmethod
    def _shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
        """Contiguous, near-even [lo, hi) slices covering range(n)."""
        base, extra = divmod(n, shards)
        bounds: List[Tuple[int, int]] = []
        lo = 0
        for s in range(shards):
            hi = lo + base + (1 if s < extra else 0)
            if hi > lo:
                bounds.append((lo, hi))
            lo = hi
        return bounds or [(0, n)]

    # ------------------------------------------------------------------
    # shard fan-out
    # ------------------------------------------------------------------
    def _run_shards(
        self,
        query: Query,
        alias_map: Dict[str, str],
        candidates: Candidates,
        plan: JoinPlan,
        start_rids: np.ndarray,
        bounds: List[Tuple[int, int]],
        builds: Dict[str, JoinBuild],
    ) -> List[Tuple[str, Any]]:
        if len(bounds) > 1 and os.getpid() == self._owner_pid:
            pool = self._ensure_pool(query, alias_map)
            if pool is not None:
                qkey = format_query(query)
                try:
                    futures = [
                        pool.submit((qkey, query, plan, lo, hi))
                        for lo, hi in bounds
                    ]
                    return [future.result() for future in futures]
                except Exception:
                    # A dead or wedged pool must not fail the query: run
                    # the shards in-process and rebuild the pool lazily.
                    with self._lock:
                        self._pool_fallbacks += 1
                    self._close_pool()
        return [
            _run_shard(
                self, query, alias_map, candidates, plan,
                start_rids, lo, hi, builds,
            )
            for lo, hi in bounds
        ]

    def _ensure_pool(self, query: Query, alias_map) -> Optional[ForkTaskPool]:
        if not fork_available():
            return None
        with self._lock:
            fingerprint = database_fingerprint(self.db)
            pool = self._pool
            if pool is not None and (
                pool.closed or self._pool_fingerprint != fingerprint
            ):
                pool.close()  # stale snapshot (mutation) or dead worker
                self._pool = pool = None
                self._pool_restarts += 1
            if pool is None:
                # Warm this query's views first so the fork snapshot
                # ships them copy-on-write to every worker.
                self._warm_query_state(query, alias_map)
                pool = ForkTaskPool(
                    self.db, _shard_worker_factory, self.resolved_shards()
                )
                try:
                    pool.start()
                except Exception:
                    return None
                self._pool = pool
                self._pool_fingerprint = fingerprint
                self._pool_starts += 1
        return pool

    def _warm_query_state(self, query: Query, alias_map) -> None:
        for join in query.joins:
            for ref in (join.left, join.right):
                relation = self._relation(alias_map, ref.table)
                relation.column_array(ref.column)
                relation.sorted_view(ref.column)
        for ref in query.select + query.group_by:
            self._relation(alias_map, ref.table).column_array(ref.column)

    def _close_pool(self) -> None:
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.close()

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def _merge_partials(
        self, query: Query, partials: List[Tuple[str, Any]]
    ) -> ResultSet:
        labels = tuple(str(ref) for ref in query.select)
        if query.group_by:
            # Sum per-shard counts; the first shard holding a group also
            # holds its global first-seen representative and position.
            merged: "OrderedDict[Tuple, List]" = OrderedDict()
            for _, items in partials:
                for key, shard_count, row in items:
                    entry = merged.get(key)
                    if entry is None:
                        merged[key] = [shard_count, row]
                    else:
                        entry[0] += shard_count
            having = query.having
            rows = [
                row
                for total, row in merged.values()
                if having is None or having.matches(total)
            ]
            if query.distinct:
                rows = self._dedupe(rows)
            return ResultSet(labels, rows)
        if query.distinct:
            rows = []
            seen: set = set()
            for _, items in partials:
                for row in items:
                    if row in seen:
                        continue
                    seen.add(row)
                    rows.append(row)
            return ResultSet(labels, rows)
        rows = []
        for _, items in partials:
            rows.extend(items)
        return ResultSet(labels, rows)

    @staticmethod
    def _dedupe(rows: List[Tuple]) -> List[Tuple]:
        seen: set = set()
        out: List[Tuple] = []
        for row in rows:
            if row in seen:
                continue
            seen.add(row)
            out.append(row)
        return out

    # ------------------------------------------------------------------
    # observability & lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Shard routing/fan-out counters (``--stats`` / GET /stats)."""
        with self._lock:
            return {
                "single_blocks": self._single_blocks,
                "sharded_blocks": self._sharded_blocks,
                "shards_launched": self._shards_launched,
                "merge_ms": round(self._merge_seconds * 1000.0, 3),
                "state_hits": self._state_hits,
                "shard_workers": self.resolved_shards(),
                "shard_min_rows": self.shard_min_rows,
                "pool_starts": self._pool_starts,
                "pool_restarts": self._pool_restarts,
                "pool_fallbacks": self._pool_fallbacks,
            }

    def close(self) -> None:
        # Never close a pool inherited across fork: the queues are
        # shared with the owning process, which tears them down itself.
        if os.getpid() == self._owner_pid:
            self._close_pool()
        super().close()
