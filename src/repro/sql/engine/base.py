"""The execution-backend interface plus the shared query-result cache.

Every query in the system — discovery probes, the Occam's-razor pruning
pass, evaluation reruns, benchmark workloads — funnels through an
:class:`ExecutionBackend`.  The interface is deliberately small (execute
one AST, return a :class:`~repro.sql.result.ResultSet`) so that engines
with very different substrates (interpreted hash joins, numpy kernels, an
in-memory SQLite mirror) stay interchangeable.

:class:`CachingBackend` decorates any backend with an LRU result cache
keyed on the *formatted SQL* of the query, stamped with the versions of
the relations it reads; a mutation to any referenced table invalidates the
entry automatically.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ...relational.database import Database
from ...relational.errors import QueryError, UnknownTableError
from ..ast import AnyQuery, IntersectQuery, Query
from ..formatter import format_query
from ..result import ResultSet

# (table name, relation uid, relation version) for every table a query reads.
CacheStamp = Tuple[Tuple[str, int, int], ...]

#: Default LRU capacity of the shared query-result cache.
DEFAULT_CACHE_SIZE = 256


class ExecutionBackend(ABC):
    """Executes query ASTs against a :class:`Database`."""

    name: str = "abstract"

    def __init__(self, database: Database) -> None:
        self.db = database

    @abstractmethod
    def execute(self, query: AnyQuery) -> ResultSet:
        """Run ``query`` and return its materialised result."""

    def close(self) -> None:
        """Release backend-held resources (connections, mirrors)."""


def validate_query(database: Database, query: AnyQuery) -> None:
    """Check that every table/column a query references exists.

    Shared by all backends so that error behaviour is identical regardless
    of the engine executing the query.
    """
    if isinstance(query, IntersectQuery):
        for block in query.blocks:
            validate_query(database, block)
        return
    alias_map = query.alias_map()
    for alias, table in alias_map.items():
        if table not in database:
            raise QueryError(f"unknown table {table!r} (alias {alias!r})")
    for pred in query.predicates:
        schema = database.relation(alias_map[pred.column.table]).schema
        if not schema.has_column(pred.column.column):
            raise QueryError(f"unknown column {pred.column}")
    for join in query.joins:
        for ref in (join.left, join.right):
            schema = database.relation(alias_map[ref.table]).schema
            if not schema.has_column(ref.column):
                raise QueryError(f"unknown column {ref.column}")
    for ref in query.select + query.group_by:
        schema = database.relation(alias_map[ref.table]).schema
        if not schema.has_column(ref.column):
            raise QueryError(f"unknown column {ref.column}")


def tables_of(query: AnyQuery) -> List[str]:
    """Sorted distinct base-table names a query reads."""
    if isinstance(query, IntersectQuery):
        names = {t.name for block in query.blocks for t in block.tables}
    else:
        names = {t.name for t in query.tables}
    return sorted(names)


class QueryResultCache:
    """A bounded LRU map from (formatted SQL, table versions) to results.

    Safe for concurrent use: the batch session's worker threads all
    execute through one shared cache-wrapped backend, so every mutation
    of the LRU order and the hit/miss/eviction counters runs under one
    lock (the critical sections are dict operations; the lock is never
    held across an engine execution).
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be > 0, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[CacheStamp, ResultSet]]" = OrderedDict()

    def get(self, key: str, stamp: CacheStamp) -> Optional[ResultSet]:
        """Cached result for ``key`` if its stamp is still current."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != stamp:
                self.misses += 1
                if entry is not None:
                    del self._entries[key]
                    self.invalidations += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry[1]

    def put(self, key: str, stamp: CacheStamp, result: ResultSet) -> None:
        """Store one result, evicting the least recently used on overflow."""
        with self._lock:
            self._entries[key] = (stamp, result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/invalidation counters for reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
        }


class CachingBackend(ExecutionBackend):
    """Decorator adding a shared query-result cache to any backend.

    Cached :class:`ResultSet` objects are shared between callers; treat
    them as immutable.
    """

    def __init__(
        self, inner: ExecutionBackend, max_entries: int = DEFAULT_CACHE_SIZE
    ) -> None:
        super().__init__(inner.db)
        self.inner = inner
        self.name = inner.name
        self.cache = QueryResultCache(max_entries)

    def _stamp(self, query: AnyQuery) -> CacheStamp:
        stamp = []
        for name in tables_of(query):
            relation = self.db.relation(name)
            stamp.append((name, relation.uid, relation.version))
        return tuple(stamp)

    def execute(self, query: AnyQuery) -> ResultSet:
        key = format_query(query)
        try:
            stamp = self._stamp(query)
        except UnknownTableError:
            # Let the engine's own validation raise the proper QueryError.
            return self.inner.execute(query)
        cached = self.cache.get(key, stamp)
        if cached is not None:
            return cached
        result = self.inner.execute(query)
        self.cache.put(key, stamp, result)
        return result

    def execute_uncached(self, query: AnyQuery) -> ResultSet:
        """Bypass the cache (timing measurements need cold executions)."""
        return self.inner.execute(query)

    def stats(self) -> Dict[str, int]:
        """Inner-engine counters merged with ``cache_``-prefixed LRU
        counters (``SquidSystem.cache_stats`` still reports the raw
        cache view; this is the single-call rollup for ``--stats``)."""
        inner_stats = getattr(self.inner, "stats", None)
        merged: Dict[str, int] = dict(inner_stats()) if callable(inner_stats) else {}
        for key, value in self.cache.stats().items():
            merged[f"cache_{key}"] = value
        return merged

    def close(self) -> None:
        self.cache.clear()
        self.inner.close()
