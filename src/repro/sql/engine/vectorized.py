"""Vectorized execution over numpy column arrays.

Evaluates SPJ(A, intersect) queries with array kernels instead of
per-tuple Python loops:

* selections become boolean masks over the relation's cached
  :class:`~repro.relational.relation.ColumnArray` views;
* joins run through sort/searchsorted kernels, reusing the relation's
  cached :class:`~repro.relational.relation.SortedView` as the build-side
  "index" whenever the build input is the whole column;
* grouping factorizes the GROUP BY columns into dense codes and reduces
  with ``np.unique`` / ``np.bincount``.

Partial join results are parallel int64 row-id arrays (one per table
alias), so extending a join multiplies array gathers instead of copying
Python dicts.  Only the final projection touches Python values, and only
for rows that survive every phase.  Semantics (NULL never matches, set
INTERSECT, first-seen group representatives) mirror the interpreted
reference engine; the equivalence suite keeps them locked together.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ...relational.database import Database
from ...relational.errors import QueryError
from ...relational.relation import ColumnArray, Relation
from ..ast import AnyQuery, IntersectQuery, JoinCondition, Op, Predicate, Query
from ..result import ResultSet, execute_intersect
from .base import ExecutionBackend, validate_query
from .kernels import (
    JoinBuild,
    combine_codes,
    equi_join,
    factorize,
    hash_join,
    join_sorted,
)

Bindings = Dict[str, np.ndarray]
Candidates = Dict[str, Optional[np.ndarray]]


@dataclass(frozen=True)
class PlanStep:
    """One extension of the partial join.

    ``connecting`` indexes ``query.joins``; empty means a cross product.
    ``drops`` lists aliases whose bindings are dead after this step —
    not referenced by any later join, residual, select or group-by ref —
    and may be released by executors that opt into liveness pruning.
    """

    alias: str
    connecting: Tuple[int, ...]
    drops: Tuple[str, ...]


@dataclass(frozen=True)
class JoinPlan:
    """A fixed join order for one SPJ(A) block.

    Computed once from the full candidate sizes, so every shard of a
    partitioned execution follows the exact order the single-process
    engine would pick — shard results then concatenate into the same
    row sequence.
    """

    start: str
    steps: Tuple[PlanStep, ...]
    residuals: Tuple[int, ...]


def plan_joins(
    query: Query,
    alias_map: Dict[str, str],
    estimated_size: Callable[[str], int],
) -> JoinPlan:
    """Replicates ``_join_all``'s greedy connected-smallest-first order."""
    aliases = list(alias_map)
    start = min(aliases, key=estimated_size)
    bound = {start}
    remaining = list(range(len(query.joins)))
    raw_steps: List[Tuple[str, Tuple[int, ...]]] = []
    while len(bound) < len(aliases):
        chosen: Optional[str] = None
        connecting: List[int] = []
        for alias in sorted(
            (a for a in aliases if a not in bound), key=estimated_size
        ):
            connecting = [
                i
                for i in remaining
                if query.joins[i].touches(alias)
                and query.joins[i].other_side(alias).table in bound
            ]
            if connecting:
                chosen = alias
                break
        if chosen is None:
            chosen = min((a for a in aliases if a not in bound), key=estimated_size)
            connecting = []
        raw_steps.append((chosen, tuple(connecting)))
        bound.add(chosen)
        # Value-based removal (not index-based): duplicate join
        # conditions must all leave the pool together, exactly as the
        # original ``j not in connecting`` filter removed them.
        consumed = [query.joins[i] for i in connecting]
        remaining = [i for i in remaining if query.joins[i] not in consumed]
    residuals = tuple(remaining)

    # Liveness: the last stage each alias is referenced at.  Stage k is
    # step k; stage len(steps) covers residual joins and the final
    # select/group-by projection (those aliases are never droppable).
    final_stage = len(raw_steps)
    keep = {ref.table for ref in query.select}
    keep |= {ref.table for ref in query.group_by}
    last = {alias: (final_stage if alias in keep else -1) for alias in aliases}
    for k, (alias, connecting) in enumerate(raw_steps):
        referenced = {alias}
        for i in connecting:
            join = query.joins[i]
            referenced.add(join.left.table)
            referenced.add(join.right.table)
        for a in referenced:
            last[a] = max(last[a], k)
    for i in residuals:
        join = query.joins[i]
        last[join.left.table] = final_stage
        last[join.right.table] = final_stage
    for alias in aliases:
        if last[alias] < 0:  # never referenced: keep it alive defensively
            last[alias] = final_stage
    steps = tuple(
        PlanStep(
            alias,
            connecting,
            tuple(sorted(a for a in aliases if last[a] == k)),
        )
        for k, (alias, connecting) in enumerate(raw_steps)
    )
    return JoinPlan(start=start, steps=steps, residuals=residuals)


def make_join_build(
    relation: Relation, column: str, cand: Optional[np.ndarray]
) -> JoinBuild:
    """A reusable :class:`JoinBuild` mirroring ``_join_against``'s inputs."""
    if cand is None:
        view = relation.sorted_view(column)
        if view is not None:
            return JoinBuild(view.values, view.row_ids, presorted=True)
        arr = relation.column_array(column)
        rids = np.nonzero(arr.mask)[0]
        return JoinBuild(arr.values[rids], rids)
    arr = relation.column_array(column)
    rids = cand[arr.mask[cand]]
    return JoinBuild(arr.values[rids], rids)


class VectorizedBackend(ExecutionBackend):
    """Array-at-a-time execution over cached numpy column views."""

    name = "vectorized"

    def __init__(self, database: Database) -> None:
        super().__init__(database)
        self._stats_lock = threading.Lock()
        self.blocks_executed = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: AnyQuery) -> ResultSet:
        """Run ``query`` and return its materialised result."""
        if isinstance(query, IntersectQuery):
            return execute_intersect(query.blocks, self._execute_block)
        return self._execute_block(query)

    def stats(self) -> Dict[str, int]:
        """Execution counters (blocks run, intersect blocks included)."""
        with self._stats_lock:
            return {"vectorized_blocks": self.blocks_executed}

    # ------------------------------------------------------------------
    # single block
    # ------------------------------------------------------------------
    def _execute_block(self, query: Query) -> ResultSet:
        alias_map = query.alias_map()
        validate_query(self.db, query)
        with self._stats_lock:
            self.blocks_executed += 1
        candidates = self._pushdown(query, alias_map)
        bindings, count = self._join_all(query, alias_map, candidates)
        if query.group_by:
            bindings, count = self._aggregate(query, alias_map, bindings, count)
        return self._project(query, alias_map, bindings, count)

    def _relation(self, alias_map: Dict[str, str], alias: str) -> Relation:
        return self.db.relation(alias_map[alias])

    # ------------------------------------------------------------------
    # selection masks
    # ------------------------------------------------------------------
    def _pushdown(
        self, query: Query, alias_map: Dict[str, str]
    ) -> Dict[str, Optional[np.ndarray]]:
        """Per-alias candidate row ids (``None`` means "all rows")."""
        by_alias: Dict[str, List[Predicate]] = {}
        for pred in query.predicates:
            by_alias.setdefault(pred.column.table, []).append(pred)
        out: Dict[str, Optional[np.ndarray]] = {}
        for alias in alias_map:
            preds = by_alias.get(alias)
            if not preds:
                out[alias] = None
                continue
            relation = self._relation(alias_map, alias)
            mask: Optional[np.ndarray] = None
            for pred in preds:
                arr = relation.column_array(pred.column.column)
                pm = self._predicate_mask(arr, pred)
                mask = pm if mask is None else (mask & pm)
            out[alias] = np.nonzero(mask)[0]
        return out

    def _predicate_mask(self, arr: ColumnArray, pred: Predicate) -> np.ndarray:
        """Boolean mask of rows satisfying ``pred`` (NULL rows are False)."""
        values, mask = arr.values, arr.mask
        out = np.zeros(len(values), dtype=bool)
        nn = np.nonzero(mask)[0]
        if nn.size == 0:
            return out
        sub = values[nn]
        op = pred.op
        if op is Op.EQ:
            hits = sub == pred.value
        elif op is Op.IN:
            members = set(pred.value)  # type: ignore[arg-type]
            if sub.dtype == object:
                hits = np.fromiter(
                    (v in members for v in sub.tolist()), dtype=bool, count=sub.size
                )
            else:
                # Only numeric members can match a numeric column; mixing
                # in strings would turn np.array(members) into a string
                # array and silently match nothing.
                numeric = [m for m in members if isinstance(m, (int, float))]
                hits = (
                    np.isin(sub, np.asarray(numeric))
                    if numeric
                    else np.zeros(sub.size, dtype=bool)
                )
        elif op is Op.GE:
            hits = sub >= pred.value
        elif op is Op.LE:
            hits = sub <= pred.value
        elif op is Op.BETWEEN:
            low, high = pred.value  # type: ignore[misc]
            hits = (sub >= low) & (sub <= high)
        else:
            raise QueryError(f"unsupported op {op!r}")
        if not isinstance(hits, np.ndarray):  # object == scalar may yield bool
            hits = np.full(sub.size, bool(hits), dtype=bool)
        out[nn] = hits
        return out

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def _size_estimator(
        self, alias_map: Dict[str, str], candidates: Candidates
    ) -> Callable[[str], int]:
        def estimated_size(alias: str) -> int:
            cand = candidates[alias]
            if cand is not None:
                return int(cand.size)
            return len(self._relation(alias_map, alias))

        return estimated_size

    def _start_rids(
        self, alias_map: Dict[str, str], candidates: Candidates, start: str
    ) -> np.ndarray:
        cand = candidates[start]
        rids = (
            cand
            if cand is not None
            else np.arange(len(self._relation(alias_map, start)), dtype=np.int64)
        )
        return rids.astype(np.int64, copy=False)

    def _join_all(
        self,
        query: Query,
        alias_map: Dict[str, str],
        candidates: Candidates,
    ) -> Tuple[Bindings, int]:
        if not alias_map:
            return {}, 0
        plan = plan_joins(
            query, alias_map, self._size_estimator(alias_map, candidates)
        )
        start_rids = self._start_rids(alias_map, candidates, plan.start)
        return self._execute_plan(query, alias_map, candidates, plan, start_rids)

    def _execute_plan(
        self,
        query: Query,
        alias_map: Dict[str, str],
        candidates: Candidates,
        plan: JoinPlan,
        start_rids: np.ndarray,
        *,
        prune: bool = False,
        builds: Optional[Dict[str, JoinBuild]] = None,
    ) -> Tuple[Bindings, int]:
        """Run a fixed :class:`JoinPlan` over ``start_rids``.

        ``prune=True`` releases bindings the plan marks dead (shard
        executors: only select/group-by/join-live aliases survive);
        ``builds`` caches prepared build sides across calls so sharded
        probes sort each build side once.
        """
        aliases = list(alias_map)
        bindings: Bindings = {plan.start: start_rids}
        count = int(start_rids.size)
        for step in plan.steps:
            connecting = [query.joins[i] for i in step.connecting]
            bindings, count = self._extend(
                bindings, count, step.alias, alias_map, candidates, connecting,
                builds,
            )
            if count == 0:
                # Short-circuit: bind every remaining alias to empty arrays.
                for alias in aliases:
                    if alias not in bindings:
                        bindings[alias] = np.empty(0, dtype=np.int64)
                return bindings, 0
            if prune:
                for alias in step.drops:
                    del bindings[alias]
        for i in plan.residuals:
            bindings, count = self._apply_residual(
                bindings, count, query.joins[i], alias_map
            )
        return bindings, count

    def _gather(
        self,
        bindings: Bindings,
        alias_map: Dict[str, str],
        alias: str,
        column: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(values, non-null mask) of ``alias.column`` at the current rows."""
        arr = self._relation(alias_map, alias).column_array(column)
        rows = bindings[alias]
        return arr.values[rows], arr.mask[rows]

    def _extend(
        self,
        bindings: Bindings,
        count: int,
        alias: str,
        alias_map: Dict[str, str],
        candidates: Candidates,
        connecting: List[JoinCondition],
        builds: Optional[Dict[str, JoinBuild]] = None,
    ) -> Tuple[Bindings, int]:
        """Extend the partial join with one more table."""
        relation = self._relation(alias_map, alias)
        cand = candidates[alias]
        if not connecting:
            rids = (
                cand
                if cand is not None
                else np.arange(len(relation), dtype=np.int64)
            )
            k = int(rids.size)
            out = {a: np.repeat(arr, k) for a, arr in bindings.items()}
            out[alias] = np.tile(rids, count)
            return out, count * k

        probe_join = connecting[0]
        probe_ref = probe_join.other_side(alias)
        build_col = probe_join.side_of(alias).column
        probe_keys, probe_mask = self._gather(
            bindings, alias_map, probe_ref.table, probe_ref.column
        )
        valid = np.nonzero(probe_mask)[0]
        if builds is None:
            probe_idx, build_rids = self._join_against(
                relation, build_col, cand, probe_keys[valid]
            )
        else:
            build = builds.get(alias)
            if build is None:
                build = make_join_build(relation, build_col, cand)
                builds[alias] = build
            probe_idx, build_rids = build.probe(probe_keys[valid])
        keep = valid[probe_idx]
        out = {a: arr[keep] for a, arr in bindings.items()}
        out[alias] = build_rids
        new_count = int(build_rids.size)

        for join in connecting[1:]:
            mine = join.side_of(alias)
            theirs = join.other_side(alias)
            mask = self._equal_mask(out, alias_map, mine, theirs)
            out = {a: arr[mask] for a, arr in out.items()}
            new_count = int(out[alias].size)
        return out, new_count

    def _join_against(
        self,
        relation: Relation,
        column: str,
        cand: Optional[np.ndarray],
        probe_keys: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Join probe keys against one table column.

        Returns ``(probe_idx, build_rids)`` — indexes into ``probe_keys``
        and matching row ids of ``relation``.
        """
        if cand is None:
            view = relation.sorted_view(column)
            if view is not None:
                try:
                    probe_idx, pos = join_sorted(probe_keys, view.values)
                except TypeError:
                    pass
                else:
                    return probe_idx, view.row_ids[pos]
            arr = relation.column_array(column)
            rids = np.nonzero(arr.mask)[0]
            build_keys = arr.values[rids]
        else:
            arr = relation.column_array(column)
            rids = cand[arr.mask[cand]]
            build_keys = arr.values[rids]
        try:
            probe_idx, build_idx = equi_join(probe_keys, build_keys)
        except TypeError:
            probe_idx, build_idx = hash_join(probe_keys, build_keys)
        return probe_idx, rids[build_idx]

    def _equal_mask(
        self,
        bindings: Bindings,
        alias_map: Dict[str, str],
        left,
        right,
    ) -> np.ndarray:
        """NULL-safe equality mask between two bound column refs."""
        lv, lm = self._gather(bindings, alias_map, left.table, left.column)
        rv, rm = self._gather(bindings, alias_map, right.table, right.column)
        if lv.dtype == object or rv.dtype == object:
            eq = np.fromiter(
                (a == b for a, b in zip(lv.tolist(), rv.tolist())),
                dtype=bool,
                count=lv.size,
            )
        else:
            eq = lv == rv
        return eq & lm & rm

    def _apply_residual(
        self,
        bindings: Bindings,
        count: int,
        join: JoinCondition,
        alias_map: Dict[str, str],
    ) -> Tuple[Bindings, int]:
        mask = self._equal_mask(bindings, alias_map, join.left, join.right)
        out = {a: arr[mask] for a, arr in bindings.items()}
        return out, int(mask.sum())

    # ------------------------------------------------------------------
    # aggregation & projection
    # ------------------------------------------------------------------
    def _group_codes(
        self,
        query_refs,
        bindings: Bindings,
        alias_map: Dict[str, str],
        count: int,
    ) -> Optional[np.ndarray]:
        """Composite int64 group codes, or None if the key space overflows."""
        parts: List[Tuple[np.ndarray, int]] = []
        for ref in query_refs:
            values, mask = self._gather(bindings, alias_map, ref.table, ref.column)
            codes, uniques = factorize(values, mask)
            parts.append((codes, len(uniques)))
        return combine_codes(parts)

    def _aggregate(
        self,
        query: Query,
        alias_map: Dict[str, str],
        bindings: Bindings,
        count: int,
    ) -> Tuple[Bindings, int]:
        """GROUP BY + HAVING count(*): keep one row per surviving group."""
        if count == 0:
            return bindings, 0
        codes = self._group_codes(query.group_by, bindings, alias_map, count)
        if codes is None:
            return self._aggregate_fallback(query, alias_map, bindings, count)
        _, first_idx, counts = np.unique(
            codes, return_index=True, return_counts=True
        )
        having = query.having
        if having is not None:
            survivors = np.fromiter(
                (having.matches(int(c)) for c in counts),
                dtype=bool,
                count=counts.size,
            )
            first_idx = first_idx[survivors]
        first_idx = np.sort(first_idx)  # keep first-seen row order
        out = {a: arr[first_idx] for a, arr in bindings.items()}
        return out, int(first_idx.size)

    def _aggregate_fallback(
        self,
        query: Query,
        alias_map: Dict[str, str],
        bindings: Bindings,
        count: int,
    ) -> Tuple[Bindings, int]:
        """Tuple-keyed grouping for composite keys that overflow int64."""
        stores = [
            (
                ref.table,
                self._relation(alias_map, ref.table).column(ref.column),
            )
            for ref in query.group_by
        ]
        rows = {alias: arr.tolist() for alias, arr in bindings.items()}
        groups: Dict[Tuple, Tuple[int, int]] = {}
        for i in range(count):
            key = tuple(store[rows[alias][i]] for alias, store in stores)
            total, first = groups.get(key, (0, i))
            groups[key] = (total + 1, first)
        having = query.having
        keep = sorted(
            first
            for total, first in groups.values()
            if having is None or having.matches(total)
        )
        idx = np.asarray(keep, dtype=np.int64)
        return {a: arr[idx] for a, arr in bindings.items()}, int(idx.size)

    def _project(
        self,
        query: Query,
        alias_map: Dict[str, str],
        bindings: Bindings,
        count: int,
    ) -> ResultSet:
        labels = tuple(str(ref) for ref in query.select)
        if count == 0:
            return ResultSet(labels, [])
        stores = [
            (ref.table, self._relation(alias_map, ref.table).column(ref.column))
            for ref in query.select
        ]
        keep: Optional[np.ndarray] = None
        if query.distinct:
            codes = self._group_codes(query.select, bindings, alias_map, count)
            if codes is not None:
                _, first_idx = np.unique(codes, return_index=True)
                keep = np.sort(first_idx)
        if keep is not None:
            bindings = {a: arr[keep] for a, arr in bindings.items()}
            count = int(keep.size)
        rows_by_alias = {
            alias: bindings[alias].tolist()
            for alias in {ref.table for ref in query.select}
        }
        rows: List[Tuple] = []
        seen: Set[Tuple] = set()
        dedupe = query.distinct and keep is None
        for i in range(count):
            row = tuple(
                store[rows_by_alias[alias][i]] for alias, store in stores
            )
            if dedupe:
                if row in seen:
                    continue
                seen.add(row)
            rows.append(row)
        return ResultSet(labels, rows)
