"""Async adapter over any synchronous execution backend.

The discovery pipeline's stages execute queries synchronously (they run
on worker threads or forked workers), but the serving tier
(:mod:`repro.serve`) lives on an asyncio event loop and must never block
it on an engine execution.  :class:`AsyncExecutionBackend` bridges the
two worlds:

* every ``execute`` call runs the wrapped engine on a **bounded**
  ``ThreadPoolExecutor`` (``max_workers`` is the concurrency ceiling —
  requests beyond it queue inside the executor instead of piling
  threads);
* concurrent awaiters of the *same* query (same formatted SQL) coalesce
  into a **single flight**: one engine execution serves them all.  The
  shared :class:`~repro.sql.engine.base.QueryResultCache` cannot do this
  on its own — at the moment both requests arrive the result is not
  cached yet, so both would miss and execute.  Single-flight closes that
  window, which matters under serving load where many concurrent
  discoveries probe identical αDB queries.

Await-safety notes: the underlying result cache guards its LRU state
with a plain ``threading.Lock`` that is never held across an engine
execution (let alone an ``await``), so calling it from executor threads
while the event loop runs is safe.  The single-flight table itself is
only ever touched from the event loop thread, so it needs no lock at
all — but it *is* keyed per running loop, so two loops (e.g. tests
running ``asyncio.run`` back to back) never share futures.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..ast import AnyQuery
from ..formatter import format_query
from ..result import ResultSet
from .base import ExecutionBackend

#: Default width of the adapter's executor: enough to keep a handful of
#: concurrent requests executing without letting one burst spawn an
#: unbounded thread herd.
DEFAULT_ASYNC_WORKERS = 4


class _LeaderCancelled(RuntimeError):
    """The flight leader's task was cancelled mid-execution; followers
    catch this and re-execute instead of inheriting the cancellation."""


class AsyncExecutionBackend:
    """Awaitable facade over a synchronous :class:`ExecutionBackend`.

    Not an :class:`ExecutionBackend` subclass on purpose: its ``execute``
    is a coroutine, and letting it masquerade as the sync interface would
    hand un-awaited coroutines to code expecting a :class:`ResultSet`.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        max_workers: int = DEFAULT_ASYNC_WORKERS,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.inner = inner
        self.name = inner.name
        self.max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-async-exec"
        )
        # (loop id, formatted SQL) -> in-flight future.  Keyed per loop so
        # consecutive asyncio.run() calls never see a stale loop's future.
        self._inflight: Dict[Tuple[int, str], "asyncio.Future[ResultSet]"] = {}
        self.single_flight_hits = 0
        self.executions = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def execute(self, query: AnyQuery) -> ResultSet:
        """Run ``query`` off-loop; coalesce concurrent identical queries."""
        loop = asyncio.get_running_loop()
        key = (id(loop), format_query(query))
        while True:
            pending = self._inflight.get(key)
            if pending is None:
                break
            self.single_flight_hits += 1
            try:
                # shield: cancelling *this* awaiter must not cancel the
                # shared flight other awaiters ride on (our own
                # CancelledError still propagates, as it should).
                return await asyncio.shield(pending)
            except _LeaderCancelled:
                # The flight's leader was cancelled, not us — loop and
                # either join the next leader or become it.
                continue
        future: "asyncio.Future[ResultSet]" = loop.create_future()
        self._inflight[key] = future
        try:
            result = await loop.run_in_executor(
                self._executor, self.inner.execute, query
            )
            self.executions += 1
        except BaseException as exc:
            if not future.cancelled():
                # A cancelled leader must not poison its followers with
                # CancelledError (they were not cancelled) — hand them a
                # retryable marker instead.
                if isinstance(exc, asyncio.CancelledError):
                    future.set_exception(
                        _LeaderCancelled("single-flight leader cancelled")
                    )
                else:
                    future.set_exception(exc)
                # Followers re-raise through the future; stop the "never
                # retrieved" warning for the flight leader's copy.
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)

    async def execute_many(
        self, queries: Sequence[AnyQuery]
    ) -> List[ResultSet]:
        """Run several queries concurrently (bounded by the executor)."""
        return list(await asyncio.gather(*(self.execute(q) for q in queries)))

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Adapter counters: engine executions vs coalesced awaiters."""
        return {
            "async_executions": self.executions,
            "async_single_flight_hits": self.single_flight_hits,
            "async_inflight": len(self._inflight),
            "async_workers": self.max_workers,
        }

    def close(self, *, close_inner: bool = False) -> None:
        """Shut the executor down (optionally closing the wrapped engine).

        The wrapped engine is usually owned by a :class:`~repro.core.
        squid.SquidSystem` that outlives this adapter, hence the opt-in.
        """
        self._executor.shutdown(wait=True)
        if close_inner:
            self.inner.close()


def create_async_backend(
    inner: ExecutionBackend, max_workers: Optional[int] = None
) -> AsyncExecutionBackend:
    """Factory mirroring :func:`repro.sql.engine.create_backend`."""
    return AsyncExecutionBackend(
        inner,
        DEFAULT_ASYNC_WORKERS if max_workers is None else max_workers,
    )
