"""Cost-based backend dispatch: route each query to its best engine.

The interpreted and vectorized engines have opposite sweet spots:

* **interpreted** resolves EQ/IN predicates through hash indexes and
  never materialises a column — unbeatable for *point lookups* and for
  tiny relations where numpy's fixed per-kernel overhead (array view
  construction, mask allocation) dominates the actual work;
* **vectorized** amortises per-row Python overhead away — the clear
  winner for *scans, joins and aggregations* over anything sizeable.

:class:`DispatchBackend` picks per query (and, for INTERSECT, per block)
using the one statistic the αDB already maintains for every relation —
its cardinality — plus the shape of the predicate set.  The estimated
rows touched per alias:

* ``1`` when the alias carries an EQ/IN predicate (hash-index probe);
* ``n / 4`` when it carries only range predicates (sorted-index scan);
* ``n`` otherwise (full scan or unfiltered join side).

Queries whose summed estimate stays at or below ``small_work_rows``
route to the interpreted engine; blocks whose estimated carried work
(estimate × alias count) clears the sharded engine's activation
threshold route to the partition-parallel sharded tier; everything else
runs single-process vectorized.  All engines share the caller's
:class:`~repro.relational.database.Database`, so results are identical
by the cross-backend equivalence suite; dispatch only ever changes
*where* a query runs.

Cardinalities are cached per table but stamped with the relation's
``(uid, version)`` — every routing decision re-checks the stamp, so a
mutation (bulk load, insert) is reflected in the very next ``choose``
instead of replaying a decision frozen at warm() time.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from ...relational.database import Database
from ..ast import AnyQuery, IntersectQuery, Op, Query
from ..result import ResultSet, execute_intersect
from .base import ExecutionBackend
from .interpreted import InterpretedBackend
from .sharded import DEFAULT_SHARD_MIN_ROWS, ShardedVectorizedBackend
from .vectorized import VectorizedBackend

#: Estimated-rows threshold at or below which the interpreted engine wins.
DEFAULT_SMALL_WORK_ROWS = 1024

#: Assumed fraction of a relation touched by a sorted-index range scan.
_RANGE_SCAN_FRACTION = 4


class DispatchBackend(ExecutionBackend):
    """Routes queries between the interpreted, vectorized and sharded
    engines."""

    name = "dispatch"

    def __init__(
        self,
        database: Database,
        *,
        small_work_rows: int = DEFAULT_SMALL_WORK_ROWS,
        shards: int = 0,
        shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
    ) -> None:
        super().__init__(database)
        self.small_work_rows = small_work_rows
        self.interpreted = InterpretedBackend(database)
        self.vectorized = VectorizedBackend(database)
        self.sharded = ShardedVectorizedBackend(
            database, shards=shards, shard_min_rows=shard_min_rows
        )
        self.decisions: Dict[str, int] = {
            self.interpreted.name: 0,
            self.vectorized.name: 0,
            self.sharded.name: 0,
        }
        # Counter increments are read-modify-write; batch sessions share
        # one dispatch backend across worker threads.
        self._decision_lock = threading.Lock()
        # table -> (uid, version, rows); stamp-checked on every lookup.
        self._cardinalities: Dict[str, Tuple[int, int, int]] = {}
        self._cardinality_refreshes = 0

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Prime the cardinality cache for every current relation."""
        for name in self.db.table_names():
            self._cardinality(name)

    def _cardinality(self, table: str) -> int:
        """Stamped row count: refreshed whenever the relation mutates."""
        relation = self.db.relation(table)
        entry = self._cardinalities.get(table)
        if (
            entry is not None
            and entry[0] == relation.uid
            and entry[1] == relation.version
        ):
            return entry[2]
        rows = len(relation)
        with self._decision_lock:
            self._cardinalities[table] = (relation.uid, relation.version, rows)
            self._cardinality_refreshes += 1
        return rows

    def estimated_rows(self, query: Query) -> int:
        """Rows the engine will plausibly touch, from table cardinalities."""
        alias_map = query.alias_map()
        ops_by_alias: Dict[str, set] = {}
        for pred in query.predicates:
            ops_by_alias.setdefault(pred.column.table, set()).add(pred.op)
        total = 0
        for alias, table in alias_map.items():
            if table not in self.db:
                # Unknown table: route to an engine and let its shared
                # validation raise the proper QueryError.
                return 0
            n = self._cardinality(table)
            ops = ops_by_alias.get(alias)
            if ops and ops & {Op.EQ, Op.IN}:
                total += 1
            elif ops:
                total += max(1, n // _RANGE_SCAN_FRACTION)
            else:
                total += n
        return total

    def choose(self, query: Query) -> ExecutionBackend:
        """The engine one SPJ(A) block routes to."""
        estimate = self.estimated_rows(query)
        if estimate <= self.small_work_rows:
            return self.interpreted
        aliases = len(query.alias_map())
        if aliases >= 2 and estimate * aliases >= self.sharded.shard_min_rows:
            return self.sharded
        return self.vectorized

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: AnyQuery) -> ResultSet:
        """Run ``query``, routing each SPJ(A) block cost-based."""
        if isinstance(query, IntersectQuery):
            return execute_intersect(query.blocks, self._execute_block)
        return self._execute_block(query)

    def _execute_block(self, block: Query) -> ResultSet:
        engine = self.choose(block)
        with self._decision_lock:
            self.decisions[engine.name] += 1
        return engine.execute(block)

    def stats(self) -> Dict[str, int]:
        """Per-engine routing decisions plus the sharded tier's counters."""
        with self._decision_lock:
            out: Dict[str, int] = dict(self.decisions)
            out["cardinality_refreshes"] = self._cardinality_refreshes
        for key, value in self.sharded.stats().items():
            out[f"sharded_{key}"] = value
        return out

    def close(self) -> None:
        self.interpreted.close()
        self.vectorized.close()
        self.sharded.close()
