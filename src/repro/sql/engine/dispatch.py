"""Cost-based backend dispatch: route each query to its best engine.

The interpreted and vectorized engines have opposite sweet spots:

* **interpreted** resolves EQ/IN predicates through hash indexes and
  never materialises a column — unbeatable for *point lookups* and for
  tiny relations where numpy's fixed per-kernel overhead (array view
  construction, mask allocation) dominates the actual work;
* **vectorized** amortises per-row Python overhead away — the clear
  winner for *scans, joins and aggregations* over anything sizeable;
* **sharded** partitions genuinely wide/large blocks over a fork-once
  process pool.

:class:`DispatchBackend` picks per query (and, for INTERSECT, per
block).  Two cost models ship behind the one router:

**v2 (default)** — a :class:`~repro.sql.estimator.CardinalityEstimator`
combines per-column statistics (distinct counts, NULL fractions,
min/max, value histograms) with deterministic reservoir samples over the
relation column views, producing point estimates with explicit
``[lo, hi]`` safety bounds for both the block's output rows and its
interpreted-cost work proxy.  Routing compares the work point against
``small_work_rows`` and the sharded activation threshold.  Blocks routed
to the interpreted engine run under a **misroute guard**: the engine
reports intermediate row counts mid-flight, and the moment they exceed
the estimate's upper bound by ``guard_factor`` the execution aborts and
reroutes to the safe engine (vectorized) — results stay byte-identical,
only the route changes, and ``guard_trips`` counts the event.  Every
decision lands in a telemetry ring — (features, estimate, bounds,
actual, route, outcome) — and :meth:`DispatchBackend.refit` folds the
log back into updated selectivity coefficients.

**v1** (``use_estimator=False``) — the original fixed heuristics: per
alias ``1`` row for EQ/IN (hash-index probe), ``n/4`` for ranges,
``n`` otherwise.  Kept as the baseline the dispatch-v2 benchmark
(`benchmarks/test_estimator_calibration.py`) compares against.

Cardinalities and column statistics are memoized per relation
``(uid, version)`` stamp — repeated mutations in one batch trigger at
most one rescan per column at the next routing decision, and reads
under an unchanged stamp never rescan.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ...relational.database import Database
from ..ast import AnyQuery, IntersectQuery, Op, Query
from ..estimator import (
    DEFAULT_GUARD_FACTOR,
    DEFAULT_TELEMETRY_CAPACITY,
    OUTCOME_GUARD_TRIP,
    OUTCOME_OK,
    BlockEstimate,
    CardinalityEstimator,
    DecisionRecord,
    MisrouteAbort,
    RowBudgetGuard,
    SelectivityModel,
    TelemetryLog,
    guard_budget,
    refit as _refit_model,
)
from ..estimator.sampler import StatisticsProvider
from ..result import ResultSet, execute_intersect
from .base import ExecutionBackend
from .interpreted import InterpretedBackend
from .sharded import DEFAULT_SHARD_MIN_ROWS, ShardedVectorizedBackend
from .vectorized import VectorizedBackend

#: Estimated-rows threshold at or below which the interpreted engine wins.
DEFAULT_SMALL_WORK_ROWS = 1024

#: v1's assumed fraction of a relation touched by a sorted-index range scan.
_RANGE_SCAN_FRACTION = 4

#: Default per-column sample budget of the v2 estimator.
DEFAULT_SAMPLE_BUDGET = 1024


class DispatchBackend(ExecutionBackend):
    """Routes queries between the interpreted, vectorized and sharded
    engines — estimator-driven (v2, default) or fixed-heuristic (v1)."""

    name = "dispatch"

    def __init__(
        self,
        database: Database,
        *,
        small_work_rows: int = DEFAULT_SMALL_WORK_ROWS,
        shards: int = 0,
        shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
        use_estimator: bool = True,
        sample_budget: int = DEFAULT_SAMPLE_BUDGET,
        guard_factor: float = DEFAULT_GUARD_FACTOR,
        telemetry_capacity: int = DEFAULT_TELEMETRY_CAPACITY,
        model: Optional[SelectivityModel] = None,
    ) -> None:
        super().__init__(database)
        if guard_factor < 1.0:
            raise ValueError(f"guard_factor must be >= 1, got {guard_factor}")
        self.small_work_rows = small_work_rows
        self.guard_factor = guard_factor
        self.interpreted = InterpretedBackend(database)
        self.vectorized = VectorizedBackend(database)
        self.sharded = ShardedVectorizedBackend(
            database, shards=shards, shard_min_rows=shard_min_rows
        )
        self.estimator: Optional[CardinalityEstimator] = (
            CardinalityEstimator(
                database, sample_budget=sample_budget, model=model
            )
            if use_estimator
            else None
        )
        # The v1 path shares the same stamped cardinality memo.
        self._provider = (
            self.estimator.provider
            if self.estimator is not None
            else StatisticsProvider(database, sample_budget=sample_budget)
        )
        self.telemetry = TelemetryLog(telemetry_capacity)
        self.decisions: Dict[str, int] = {
            self.interpreted.name: 0,
            self.vectorized.name: 0,
            self.sharded.name: 0,
        }
        # Counter increments are read-modify-write; batch sessions share
        # one dispatch backend across worker threads.
        self._decision_lock = threading.Lock()
        self._guard_trips = 0
        self._estimated_blocks = 0

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Prime the cardinality cache for every current relation."""
        for name in self.db.table_names():
            self._provider.cardinality(name)

    def _cardinality(self, table: str) -> int:
        """Stamped row count: refreshed once per (uid, version) change."""
        return self._provider.cardinality(table)

    def estimated_rows(self, query: Query) -> int:
        """The v1 heuristic: rows plausibly touched, from fixed per-op
        assumptions over table cardinalities."""
        alias_map = query.alias_map()
        ops_by_alias: Dict[str, set] = {}
        for pred in query.predicates:
            ops_by_alias.setdefault(pred.column.table, set()).add(pred.op)
        total = 0
        for alias, table in alias_map.items():
            if table not in self.db:
                # Unknown table: route to an engine and let its shared
                # validation raise the proper QueryError.
                return 0
            n = self._cardinality(table)
            ops = ops_by_alias.get(alias)
            if ops and ops & {Op.EQ, Op.IN}:
                total += 1
            elif ops:
                total += max(1, n // _RANGE_SCAN_FRACTION)
            else:
                total += n
        return total

    def _route(
        self, query: Query
    ) -> Tuple[ExecutionBackend, Optional[BlockEstimate]]:
        """The engine one SPJ(A) block routes to, plus its estimate."""
        if self.estimator is None:
            estimate = self.estimated_rows(query)
            if estimate <= self.small_work_rows:
                return self.interpreted, None
            aliases = len(query.alias_map())
            if (
                aliases >= 2
                and estimate * aliases >= self.sharded.shard_min_rows
            ):
                return self.sharded, None
            return self.vectorized, None
        block = self.estimator.estimate_block(query)
        if block is None:
            # Unknown table/column: let shared validation raise.
            return self.interpreted, None
        with self._decision_lock:
            self._estimated_blocks += 1
        work = block.work.point
        if work <= self.small_work_rows:
            return self.interpreted, block
        if (
            block.features["aliases"] >= 2
            and work >= self.sharded.shard_min_rows
        ):
            return self.sharded, block
        return self.vectorized, block

    def choose(self, query: Query) -> ExecutionBackend:
        """The engine one SPJ(A) block routes to."""
        return self._route(query)[0]

    def estimate_block(self, query: Query) -> Optional[BlockEstimate]:
        """The v2 estimate for one block (``None`` in v1 mode)."""
        if self.estimator is None:
            return None
        return self.estimator.estimate_block(query)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: AnyQuery) -> ResultSet:
        """Run ``query``, routing each SPJ(A) block cost-based."""
        if isinstance(query, IntersectQuery):
            return execute_intersect(query.blocks, self._execute_block)
        return self._execute_block(query)

    def _execute_block(self, block: Query) -> ResultSet:
        engine, estimate = self._route(block)
        outcome = OUTCOME_OK
        if engine is self.interpreted and estimate is not None:
            guard = RowBudgetGuard(
                guard_budget(estimate, self.guard_factor, self.small_work_rows)
            )
            try:
                result = self.interpreted.execute_block(
                    block, observe=guard.observe
                )
            except MisrouteAbort:
                # Catastrophic misestimate: abort the row-at-a-time run
                # and reroute to the safe engine (byte-identical result).
                outcome = OUTCOME_GUARD_TRIP
                engine = self.vectorized
                result = self.vectorized.execute(block)
                with self._decision_lock:
                    self._guard_trips += 1
        else:
            result = engine.execute(block)
        with self._decision_lock:
            self.decisions[engine.name] += 1
        if estimate is not None:
            self.telemetry.record(
                DecisionRecord(
                    route=engine.name,
                    outcome=outcome,
                    estimate=estimate.rows.point,
                    lo=estimate.rows.lo,
                    hi=estimate.rows.hi,
                    work=estimate.work.point,
                    actual=len(result.rows),
                    features=estimate.features,
                )
            )
        return result

    # ------------------------------------------------------------------
    # telemetry-driven re-fitting
    # ------------------------------------------------------------------
    def refit(self, records=None) -> SelectivityModel:
        """Fold the decision log into updated selectivity coefficients.

        Uses the in-memory telemetry ring unless an explicit record list
        (e.g. one loaded from a persisted JSON-lines log) is given.  The
        fitted model is installed on the estimator and returned.
        """
        if self.estimator is None:
            raise RuntimeError("refit requires the estimator (v2) dispatch")
        model = _refit_model(
            self.telemetry.records() if records is None else records,
            self.estimator.model,
        )
        self.estimator.set_model(model)
        return model

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Per-engine routing decisions, estimator/guard counters, and
        the sharded tier's counters."""
        with self._decision_lock:
            out: Dict[str, int] = dict(self.decisions)
            out["guard_trips"] = self._guard_trips
            out["estimated_blocks"] = self._estimated_blocks
        out.update(self._provider.counters())
        out["estimator"] = 1 if self.estimator is not None else 0
        out["telemetry_records"] = len(self.telemetry)
        out["telemetry_recorded"] = self.telemetry.recorded
        for key, value in self.sharded.stats().items():
            out[f"sharded_{key}"] = value
        return out

    def close(self) -> None:
        self.interpreted.close()
        self.vectorized.close()
        self.sharded.close()
