"""Pluggable execution backends for the SPJ(A, intersect) query class.

Every query in the system runs through an
:class:`~repro.sql.engine.base.ExecutionBackend`.  Three engines ship
behind the one interface:

* ``interpreted`` — the original row-at-a-time hash-join pipeline, kept
  as the reference implementation;
* ``vectorized`` — numpy kernels over the relation layer's cached column
  arrays (the default);
* ``sqlite``     — compiles the AST to SQL against an in-memory SQLite
  mirror of the database;
* ``sharded``    — the vectorized engine with wide/large blocks
  partitioned over a fork-once process pool (probe-side shards, partial
  aggregates merged in the parent);
* ``dispatch``   — cost-based router sending point lookups and tiny
  queries to the interpreted engine, genuinely wide/large blocks to the
  sharded engine, and everything else to the vectorized one, using
  per-table cardinalities re-checked against relation version stamps.

``create_backend`` is the factory; :class:`CachingBackend` layers the
shared formatted-SQL-keyed result cache over any engine, and
:class:`AsyncExecutionBackend` adapts any engine to asyncio callers
(bounded executor + single-flight coalescing of concurrent identical
queries — the serving tier's execution path).
"""

from __future__ import annotations

from typing import Dict, List, Type

from ...relational.database import Database
from .base import (
    DEFAULT_CACHE_SIZE,
    CachingBackend,
    ExecutionBackend,
    QueryResultCache,
    tables_of,
    validate_query,
)
from .async_backend import (
    DEFAULT_ASYNC_WORKERS,
    AsyncExecutionBackend,
    create_async_backend,
)
from .dispatch import (
    DEFAULT_SAMPLE_BUDGET,
    DEFAULT_SMALL_WORK_ROWS,
    DispatchBackend,
)
from ..estimator import DEFAULT_GUARD_FACTOR
from .interpreted import InterpretedBackend
from .sharded import DEFAULT_SHARD_MIN_ROWS, ShardedVectorizedBackend
from .sqlite import SqliteBackend
from .vectorized import VectorizedBackend

BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    InterpretedBackend.name: InterpretedBackend,
    VectorizedBackend.name: VectorizedBackend,
    SqliteBackend.name: SqliteBackend,
    DispatchBackend.name: DispatchBackend,
    ShardedVectorizedBackend.name: ShardedVectorizedBackend,
}

DEFAULT_BACKEND = VectorizedBackend.name

#: Backends that understand the shard-fanout keyword arguments.
_SHARD_AWARE = {ShardedVectorizedBackend.name, DispatchBackend.name}


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(BACKENDS)


def create_backend(
    name: str,
    database: Database,
    *,
    cache_size: int = 0,
    shards: int = 0,
    shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
    use_estimator: bool = True,
    sample_budget: int = DEFAULT_SAMPLE_BUDGET,
    guard_factor: float = DEFAULT_GUARD_FACTOR,
    analyze: bool = False,
) -> ExecutionBackend:
    """Instantiate a backend by name, optionally wrapped in a result cache.

    ``cache_size`` > 0 wraps the engine in a :class:`CachingBackend` with
    that many LRU entries.  ``shards`` (0 = auto) and ``shard_min_rows``
    configure the partition-parallel fan-out of the ``sharded`` engine
    and of the ``dispatch`` router's sharded tier.  ``use_estimator``,
    ``sample_budget`` and ``guard_factor`` configure the ``dispatch``
    router's v2 cost model (sampling-based cardinality estimation with
    misroute guards); other engines ignore all five.  ``analyze`` layers
    the :mod:`repro.analysis` plan-verifier gate under the cache (wrap
    order ``CachingBackend(AnalyzingBackend(engine))`` — cache hits skip
    re-verification, and stats unwrapping still reaches the gate).
    """
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r} (available: {', '.join(available_backends())})"
        ) from None
    if name == DispatchBackend.name:
        backend = backend_cls(
            database,
            shards=shards,
            shard_min_rows=shard_min_rows,
            use_estimator=use_estimator,
            sample_budget=sample_budget,
            guard_factor=guard_factor,
        )
    elif name in _SHARD_AWARE:
        backend = backend_cls(
            database, shards=shards, shard_min_rows=shard_min_rows
        )
    else:
        backend = backend_cls(database)
    if analyze:
        # Function-local import: repro.analysis imports this package.
        from ...analysis.gate import AnalyzingBackend

        backend = AnalyzingBackend(
            backend, statistics=getattr(backend, "_provider", None)
        )
    if cache_size > 0:
        return CachingBackend(backend, max_entries=cache_size)
    return backend


__all__ = [
    "AsyncExecutionBackend",
    "BACKENDS",
    "CachingBackend",
    "DEFAULT_ASYNC_WORKERS",
    "DEFAULT_BACKEND",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_GUARD_FACTOR",
    "DEFAULT_SAMPLE_BUDGET",
    "DEFAULT_SHARD_MIN_ROWS",
    "DEFAULT_SMALL_WORK_ROWS",
    "DispatchBackend",
    "ExecutionBackend",
    "InterpretedBackend",
    "QueryResultCache",
    "ShardedVectorizedBackend",
    "SqliteBackend",
    "VectorizedBackend",
    "available_backends",
    "create_async_backend",
    "create_backend",
    "tables_of",
    "validate_query",
]
