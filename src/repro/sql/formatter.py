"""Render query ASTs as SQL text in the paper's style.

The formatter produces queries that look like the paper's Q1--Q6 (upper-case
keywords, explicit join conditions in the WHERE clause, quoted string
constants), so examples and logs read like the publication.
"""

from __future__ import annotations

from typing import Any, List

from .ast import (
    AnyQuery,
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
)


def format_value(value: Any) -> str:
    """SQL literal for one constant."""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def format_predicate(pred: Predicate) -> str:
    """SQL text for one selection predicate."""
    col = str(pred.column)
    if pred.op is Op.BETWEEN:
        low, high = pred.value  # type: ignore[misc]
        return f"{col} >= {format_value(low)} AND {col} <= {format_value(high)}"
    if pred.op is Op.IN:
        members = ", ".join(
            format_value(v) for v in sorted(pred.value, key=repr)  # type: ignore[arg-type]
        )
        return f"{col} IN ({members})"
    return f"{col} {pred.op.value} {format_value(pred.value)}"


def format_having(having: HavingCount) -> str:
    """SQL text for a HAVING count(*) clause."""
    op = "=" if having.op is Op.EQ else having.op.value
    return f"count(*) {op} {having.value}"


def format_query(query: AnyQuery, indent: str = "") -> str:
    """Full SQL text for a query AST (including INTERSECT forms)."""
    if isinstance(query, IntersectQuery):
        parts = [format_query(block, indent) for block in query.blocks]
        sep = f"\n{indent}INTERSECT\n"
        return sep.join(parts)
    return _format_block(query, indent)


def _format_block(query: Query, indent: str) -> str:
    select_kw = "SELECT DISTINCT" if query.distinct else "SELECT"
    select = ", ".join(str(ref) for ref in query.select)
    tables = ", ".join(
        f"{t.name} {t.alias}" if t.is_aliased else t.name for t in query.tables
    )
    lines: List[str] = [f"{indent}{select_kw} {select}", f"{indent}FROM {tables}"]
    conjuncts = [str(join) for join in query.joins]
    conjuncts += [format_predicate(pred) for pred in query.predicates]
    if conjuncts:
        joined = f"\n{indent}  AND ".join(conjuncts)
        lines.append(f"{indent}WHERE {joined}")
    if query.group_by:
        group = ", ".join(str(ref) for ref in query.group_by)
        lines.append(f"{indent}GROUP BY {group}")
    if query.having is not None:
        lines.append(f"{indent}HAVING {format_having(query.having)}")
    return "\n".join(lines)
