"""A brute-force reference executor (nested loops) for differential testing.

This evaluator implements SPJ(A, intersect) semantics in the most obvious
way possible — enumerate the cross product of all FROM tables, filter by
join conditions and predicates, group, project.  It is exponential and
only suitable for tiny databases, but its simplicity makes it a trusted
oracle: the property tests run random queries through both executors and
require identical results.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Set, Tuple

from ..relational.database import Database
from .ast import AnyQuery, IntersectQuery, Query
from .executor import ResultSet


def execute_reference(database: Database, query: AnyQuery) -> ResultSet:
    """Evaluate ``query`` by brute force (tiny inputs only)."""
    if isinstance(query, IntersectQuery):
        first = execute_reference(database, query.blocks[0])
        surviving: Set[Tuple[Any, ...]] = set(first.rows)
        for block in query.blocks[1:]:
            surviving &= set(execute_reference(database, block).rows)
        seen: Set[Tuple[Any, ...]] = set()
        rows = []
        for row in first.rows:
            if row in surviving and row not in seen:
                seen.add(row)
                rows.append(row)
        return ResultSet(first.columns, rows)
    return _execute_block(database, query)


def _execute_block(database: Database, query: Query) -> ResultSet:
    alias_map = query.alias_map()
    aliases = list(alias_map)
    relations = {alias: database.relation(alias_map[alias]) for alias in aliases}

    def value(binding: Dict[str, int], ref) -> Any:
        return relations[ref.table].value(binding[ref.table], ref.column)

    bindings: List[Dict[str, int]] = []
    id_ranges = [range(len(relations[alias])) for alias in aliases]
    for combo in itertools.product(*id_ranges):
        binding = dict(zip(aliases, combo))
        if any(
            value(binding, join.left) is None
            or value(binding, join.left) != value(binding, join.right)
            for join in query.joins
        ):
            continue
        if any(
            not pred.matches(value(binding, pred.column))
            for pred in query.predicates
        ):
            continue
        bindings.append(binding)

    if query.group_by:
        groups: Dict[Tuple[Any, ...], Tuple[int, Dict[str, int]]] = {}
        for binding in bindings:
            key = tuple(value(binding, ref) for ref in query.group_by)
            count, representative = groups.get(key, (0, binding))
            groups[key] = (count + 1, representative)
        bindings = [
            representative
            for count, representative in groups.values()
            if query.having is None or query.having.matches(count)
        ]

    labels = tuple(str(ref) for ref in query.select)
    rows: List[Tuple[Any, ...]] = []
    seen: Set[Tuple[Any, ...]] = set()
    for binding in bindings:
        row = tuple(value(binding, ref) for ref in query.select)
        if query.distinct:
            if row in seen:
                continue
            seen.add(row)
        rows.append(row)
    return ResultSet(labels, rows)
