"""Evaluation of SPJ(A, intersect) queries over the in-memory engine.

The executor is a straightforward hash-join pipeline:

1. single-table predicates are pushed down and resolved with hash / sorted
   indexes where possible;
2. tables are joined greedily starting from the smallest filtered input,
   always extending to a table connected by a join condition;
3. group-by aggregation (``count(*)`` with HAVING) runs over the joined
   tuples;
4. projection (+DISTINCT) produces the result.

It favours clarity over planner sophistication, but the index-backed joins
keep the benchmark datasets (hundreds of thousands of tuples) comfortably
fast, which is all the reproduction needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..relational.database import Database
from ..relational.errors import QueryError
from .ast import AnyQuery, ColumnRef, IntersectQuery, JoinCondition, Op, Predicate, Query


@dataclass
class ResultSet:
    """Materialised query result: column labels and row tuples."""

    columns: Tuple[str, ...]
    rows: List[Tuple[Any, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def as_set(self) -> FrozenSet[Tuple[Any, ...]]:
        """Rows as a frozenset (for comparison / intersection)."""
        return frozenset(self.rows)

    def single_column(self) -> List[Any]:
        """Values of a one-column result."""
        if len(self.columns) != 1:
            raise QueryError(f"expected 1 column, result has {len(self.columns)}")
        return [row[0] for row in self.rows]


class Executor:
    """Executes query ASTs against a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.db = database

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: AnyQuery) -> ResultSet:
        """Run ``query`` and return its materialised result."""
        if isinstance(query, IntersectQuery):
            return self._execute_intersect(query)
        return self._execute_block(query)

    # ------------------------------------------------------------------
    # intersection
    # ------------------------------------------------------------------
    def _execute_intersect(self, query: IntersectQuery) -> ResultSet:
        first = self._execute_block(query.blocks[0])
        surviving: Set[Tuple[Any, ...]] = set(first.rows)
        for block in query.blocks[1:]:
            if not surviving:
                break
            surviving &= self._execute_block(block).as_set()
        rows = [row for row in first.rows if row in surviving]
        # INTERSECT has set semantics: drop duplicates while keeping order.
        seen: Set[Tuple[Any, ...]] = set()
        unique_rows = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique_rows.append(row)
        return ResultSet(first.columns, unique_rows)

    # ------------------------------------------------------------------
    # single block
    # ------------------------------------------------------------------
    def _execute_block(self, query: Query) -> ResultSet:
        alias_map = query.alias_map()
        order = self._validate(query, alias_map)
        candidates = self._pushdown(query, alias_map)
        joined = self._join_all(query, alias_map, candidates)
        if query.group_by:
            joined = self._aggregate(query, alias_map, joined)
        return self._project(query, alias_map, joined)

    def _validate(self, query: Query, alias_map: Dict[str, str]) -> List[str]:
        for alias, table in alias_map.items():
            if table not in self.db:
                raise QueryError(f"unknown table {table!r} (alias {alias!r})")
        for pred in query.predicates:
            schema = self.db.relation(alias_map[pred.column.table]).schema
            if not schema.has_column(pred.column.column):
                raise QueryError(f"unknown column {pred.column}")
        for join in query.joins:
            for ref in (join.left, join.right):
                schema = self.db.relation(alias_map[ref.table]).schema
                if not schema.has_column(ref.column):
                    raise QueryError(f"unknown column {ref.column}")
        for ref in query.select + query.group_by:
            schema = self.db.relation(alias_map[ref.table]).schema
            if not schema.has_column(ref.column):
                raise QueryError(f"unknown column {ref.column}")
        return [t.alias for t in query.tables]

    # ------------------------------------------------------------------
    # predicate pushdown
    # ------------------------------------------------------------------
    def _pushdown(
        self, query: Query, alias_map: Dict[str, str]
    ) -> Dict[str, Optional[List[int]]]:
        """Per-alias candidate row ids (``None`` means "all rows")."""
        by_alias: Dict[str, List[Predicate]] = {}
        for pred in query.predicates:
            by_alias.setdefault(pred.column.table, []).append(pred)
        out: Dict[str, Optional[List[int]]] = {}
        for alias in alias_map:
            preds = by_alias.get(alias)
            out[alias] = None if not preds else self._filter_table(
                alias_map[alias], preds
            )
        return out

    def _filter_table(self, table: str, preds: List[Predicate]) -> List[int]:
        """Row ids of ``table`` satisfying all of ``preds``."""
        first, rest = preds[0], preds[1:]
        rids = self._index_scan(table, first)
        if not rest:
            return rids
        relation = self.db.relation(table)
        columns = {
            p.column.column: relation.column(p.column.column) for p in rest
        }
        out = []
        for rid in rids:
            if all(p.matches(columns[p.column.column][rid]) for p in rest):
                out.append(rid)
        return out

    def _index_scan(self, table: str, pred: Predicate) -> List[int]:
        """Resolve one predicate via the best available index."""
        column = pred.column.column
        if pred.op is Op.EQ:
            return list(self.db.hash_index(table, column).lookup(pred.value))
        if pred.op is Op.IN:
            return self.db.hash_index(table, column).lookup_many(
                sorted(pred.value, key=repr)  # type: ignore[arg-type]
            )
        index = self.db.sorted_index(table, column)
        if pred.op is Op.GE:
            return index.range(low=pred.value)
        if pred.op is Op.LE:
            return index.range(high=pred.value)
        if pred.op is Op.BETWEEN:
            low, high = pred.value  # type: ignore[misc]
            return index.range(low=low, high=high)
        raise QueryError(f"unsupported op {pred.op!r}")

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def _join_all(
        self,
        query: Query,
        alias_map: Dict[str, str],
        candidates: Dict[str, Optional[List[int]]],
    ) -> List[Dict[str, int]]:
        """Join every table; returns bindings alias -> row id."""
        aliases = list(alias_map)
        if not aliases:
            return []

        def estimated_size(alias: str) -> int:
            cand = candidates[alias]
            if cand is not None:
                return len(cand)
            return len(self.db.relation(alias_map[alias]))

        start = min(aliases, key=estimated_size)
        cand = candidates[start]
        rids = cand if cand is not None else list(
            self.db.relation(alias_map[start]).row_ids()
        )
        partials: List[Dict[str, int]] = [{start: rid} for rid in rids]
        bound = {start}
        remaining_joins = list(query.joins)

        while len(bound) < len(aliases):
            next_alias, connecting = self._pick_next(
                aliases, bound, remaining_joins, estimated_size
            )
            if next_alias is None:
                # Disconnected query graph: fall back to a cross product with
                # the smallest remaining table (rare; kept for completeness).
                next_alias = min(
                    (a for a in aliases if a not in bound), key=estimated_size
                )
                connecting = []
            partials = self._extend(
                partials, next_alias, alias_map, candidates, connecting
            )
            bound.add(next_alias)
            remaining_joins = [j for j in remaining_joins if j not in connecting]
            if not partials:
                break

        # Any join conditions not consumed (e.g. both sides already bound by
        # other paths / cycles) are applied as residual filters.
        for join in remaining_joins:
            partials = self._apply_residual(partials, join, alias_map)
        return partials

    def _pick_next(
        self,
        aliases: Sequence[str],
        bound: Set[str],
        joins: Sequence[JoinCondition],
        estimated_size,
    ) -> Tuple[Optional[str], List[JoinCondition]]:
        """Choose the next table connected to the bound set via some join."""
        best: Optional[str] = None
        for alias in sorted(
            (a for a in aliases if a not in bound), key=estimated_size
        ):
            connecting = [
                j
                for j in joins
                if j.touches(alias) and j.other_side(alias).table in bound
            ]
            if connecting:
                return alias, connecting
            if best is None:
                best = alias
        return None, []

    def _extend(
        self,
        partials: List[Dict[str, int]],
        alias: str,
        alias_map: Dict[str, str],
        candidates: Dict[str, Optional[List[int]]],
        connecting: List[JoinCondition],
    ) -> List[Dict[str, int]]:
        """Extend partial bindings with one more table."""
        table = alias_map[alias]
        relation = self.db.relation(table)
        cand = candidates[alias]
        if not connecting:
            rids = cand if cand is not None else list(relation.row_ids())
            return [
                dict(partial, **{alias: rid}) for partial in partials for rid in rids
            ]
        probe = connecting[0]
        probe_col = probe.side_of(alias).column
        other = probe.other_side(alias)
        other_store = self.db.relation(alias_map[other.table]).column(other.column)
        index = self.db.hash_index(table, probe_col)
        allowed = set(cand) if cand is not None else None
        checks = []
        for join in connecting[1:]:
            mine = join.side_of(alias).column
            theirs = join.other_side(alias)
            checks.append(
                (
                    relation.column(mine),
                    theirs.table,
                    self.db.relation(alias_map[theirs.table]).column(theirs.column),
                )
            )
        out: List[Dict[str, int]] = []
        for partial in partials:
            key = other_store[partial[other.table]]
            if key is None:
                continue
            for rid in index.lookup(key):
                if allowed is not None and rid not in allowed:
                    continue
                ok = True
                for mine_store, their_alias, their_store in checks:
                    if mine_store[rid] != their_store[partial[their_alias]]:
                        ok = False
                        break
                if ok:
                    extended = dict(partial)
                    extended[alias] = rid
                    out.append(extended)
        return out

    def _apply_residual(
        self,
        partials: List[Dict[str, int]],
        join: JoinCondition,
        alias_map: Dict[str, str],
    ) -> List[Dict[str, int]]:
        left_store = self.db.relation(alias_map[join.left.table]).column(
            join.left.column
        )
        right_store = self.db.relation(alias_map[join.right.table]).column(
            join.right.column
        )
        return [
            p
            for p in partials
            if left_store[p[join.left.table]] == right_store[p[join.right.table]]
        ]

    # ------------------------------------------------------------------
    # aggregation & projection
    # ------------------------------------------------------------------
    def _aggregate(
        self,
        query: Query,
        alias_map: Dict[str, str],
        partials: List[Dict[str, int]],
    ) -> List[Dict[str, int]]:
        """GROUP BY + HAVING count(*): keep one binding per surviving group."""
        stores = [
            (ref.table, self.db.relation(alias_map[ref.table]).column(ref.column))
            for ref in query.group_by
        ]
        groups: Dict[Tuple[Any, ...], Tuple[int, Dict[str, int]]] = {}
        for partial in partials:
            key = tuple(store[partial[alias]] for alias, store in stores)
            count, representative = groups.get(key, (0, partial))
            groups[key] = (count + 1, representative)
        having = query.having
        out = []
        for count, representative in groups.values():
            if having is None or having.matches(count):
                out.append(representative)
        return out

    def _project(
        self,
        query: Query,
        alias_map: Dict[str, str],
        partials: List[Dict[str, int]],
    ) -> ResultSet:
        stores = [
            (ref.table, self.db.relation(alias_map[ref.table]).column(ref.column))
            for ref in query.select
        ]
        labels = tuple(str(ref) for ref in query.select)
        rows: List[Tuple[Any, ...]] = []
        seen: Set[Tuple[Any, ...]] = set()
        for partial in partials:
            row = tuple(store[partial[alias]] for alias, store in stores)
            if query.distinct:
                if row in seen:
                    continue
                seen.add(row)
            rows.append(row)
        return ResultSet(labels, rows)


def execute(database: Database, query: AnyQuery) -> ResultSet:
    """Convenience wrapper: run one query against ``database``."""
    return Executor(database).execute(query)
