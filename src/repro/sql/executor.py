"""Backward-compatible facade over the execution-backend layer.

The monolithic ``Executor`` of early revisions now lives in
:mod:`repro.sql.engine.interpreted`; this module keeps the historical
import surface (``Executor``, ``ResultSet``, ``execute``) working while
all new code selects an engine through :func:`repro.sql.engine.create_backend`.
"""

from __future__ import annotations

from ..relational.database import Database
from .ast import AnyQuery
from .engine.interpreted import InterpretedBackend
from .result import ResultSet

__all__ = ["Executor", "ResultSet", "execute"]

#: Historical name of the interpreted reference engine.
Executor = InterpretedBackend


def execute(database: Database, query: AnyQuery) -> ResultSet:
    """Convenience wrapper: run one query on the interpreted engine."""
    return InterpretedBackend(database).execute(query)
