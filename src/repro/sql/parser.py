"""A small SQL parser for the SPJ(A, intersect) subset the formatter emits.

This is a convenience for tests, examples, and users who want to define
benchmark queries as text.  It accepts exactly the query family of the
paper's footnote 6 (plus BETWEEN/IN sugar) and round-trips the output of
:mod:`repro.sql.formatter`.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from ..relational.errors import QueryError
from .ast import (
    AnyQuery,
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # string literal
      | >=|<=|=|,|\(|\)|\*
      | -?\d+\.\d+                # float literal
      | -?\d+                     # int literal
      | [A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?  # ident / qualified
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "and",
    "group",
    "by",
    "having",
    "count",
    "between",
    "in",
    "intersect",
    "true",
    "false",
}


class _Tokens:
    """Token stream with one-token lookahead."""

    def __init__(self, text: str) -> None:
        self.tokens: List[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                if text[pos:].strip():
                    raise QueryError(f"cannot tokenize SQL at: {text[pos:pos+30]!r}")
                break
            self.tokens.append(match.group(1))
            pos = match.end()
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def peek_kw(self) -> Optional[str]:
        token = self.peek()
        return token.lower() if token is not None else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of SQL")
        self.pos += 1
        return token

    def expect_kw(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword:
            raise QueryError(f"expected {keyword.upper()}, got {token!r}")

    def accept_kw(self, keyword: str) -> bool:
        if self.peek_kw() == keyword:
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


def parse_query(text: str) -> AnyQuery:
    """Parse SQL text into a query AST (single block or INTERSECT chain)."""
    tokens = _Tokens(text)
    blocks = [_parse_block(tokens)]
    while tokens.accept_kw("intersect"):
        blocks.append(_parse_block(tokens))
    if not tokens.at_end():
        raise QueryError(f"trailing tokens: {tokens.tokens[tokens.pos:]}")
    if len(blocks) == 1:
        return blocks[0]
    return IntersectQuery(tuple(blocks))


def _parse_block(tokens: _Tokens) -> Query:
    tokens.expect_kw("select")
    distinct = tokens.accept_kw("distinct")
    select = [_parse_column_ref(tokens)]
    while tokens.accept_kw(","):
        select.append(_parse_column_ref(tokens))

    tokens.expect_kw("from")
    tables = [_parse_table_ref(tokens)]
    while tokens.accept_kw(","):
        tables.append(_parse_table_ref(tokens))
    default_alias = tables[0].alias

    joins: List[JoinCondition] = []
    predicates: List[Predicate] = []
    if tokens.accept_kw("where"):
        _parse_conjunct(tokens, joins, predicates, default_alias)
        while tokens.accept_kw("and"):
            _parse_conjunct(tokens, joins, predicates, default_alias)

    group_by: List[ColumnRef] = []
    having: Optional[HavingCount] = None
    if tokens.accept_kw("group"):
        tokens.expect_kw("by")
        group_by.append(_parse_column_ref(tokens, default_alias))
        while tokens.accept_kw(","):
            group_by.append(_parse_column_ref(tokens, default_alias))
    if tokens.accept_kw("having"):
        having = _parse_having(tokens)

    select = [_qualify(ref, default_alias) for ref in select]
    try:
        return Query(
            select=tuple(select),
            tables=tuple(tables),
            joins=tuple(joins),
            predicates=tuple(_merge_ranges(predicates)),
            group_by=tuple(group_by),
            having=having,
            distinct=distinct,
        )
    except ValueError as exc:
        raise QueryError(f"invalid query: {exc}") from exc


def _parse_table_ref(tokens: _Tokens) -> TableRef:
    name = tokens.next()
    if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", name):
        raise QueryError(f"bad table name {name!r}")
    nxt = tokens.peek()
    if (
        nxt is not None
        and re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", nxt)
        and nxt.lower() not in _KEYWORDS
    ):
        return TableRef(name, tokens.next())
    return TableRef(name)


def _parse_column_ref(tokens: _Tokens, default_alias: str = "") -> ColumnRef:
    token = tokens.next()
    if "." in token:
        table, column = token.split(".", 1)
        return ColumnRef(table, column)
    if not default_alias:
        # qualification deferred: caller fills in the single-table alias
        return ColumnRef("", token)
    return ColumnRef(default_alias, token)


def _qualify(ref: ColumnRef, default_alias: str) -> ColumnRef:
    return ColumnRef(default_alias, ref.column) if not ref.table else ref


def _parse_value(tokens: _Tokens) -> Any:
    token = tokens.next()
    if token.startswith("'"):
        return token[1:-1].replace("''", "'")
    if token.lower() == "true":
        return True
    if token.lower() == "false":
        return False
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if re.fullmatch(r"-?\d+\.\d+", token):
        return float(token)
    raise QueryError(f"expected literal, got {token!r}")


def _parse_conjunct(
    tokens: _Tokens,
    joins: List[JoinCondition],
    predicates: List[Predicate],
    default_alias: str,
) -> None:
    left = _qualify(_parse_column_ref(tokens), default_alias)
    kw = tokens.peek_kw()
    if kw == "between":
        tokens.next()
        low = _parse_value(tokens)
        tokens.expect_kw("and")
        high = _parse_value(tokens)
        predicates.append(Predicate(left, Op.BETWEEN, (low, high)))
        return
    if kw == "in":
        tokens.next()
        tokens.expect_kw("(")
        members = [_parse_value(tokens)]
        while tokens.accept_kw(","):
            members.append(_parse_value(tokens))
        tokens.expect_kw(")")
        predicates.append(Predicate(left, Op.IN, frozenset(members)))
        return
    op_token = tokens.next()
    op = {">=": Op.GE, "<=": Op.LE, "=": Op.EQ}.get(op_token)
    if op is None:
        raise QueryError(f"expected comparison operator, got {op_token!r}")
    nxt = tokens.peek()
    if nxt is not None and "." in nxt and not nxt.startswith("'"):
        right = _parse_column_ref(tokens)
        if op is not Op.EQ:
            raise QueryError("join conditions must use =")
        joins.append(JoinCondition(left, right))
        return
    predicates.append(Predicate(left, op, _parse_value(tokens)))


def _parse_having(tokens: _Tokens) -> HavingCount:
    tokens.expect_kw("count")
    tokens.expect_kw("(")
    tokens.expect_kw("*")
    tokens.expect_kw(")")
    op_token = tokens.next()
    op = {">=": Op.GE, "<=": Op.LE, "=": Op.EQ}.get(op_token)
    if op is None:
        raise QueryError(f"bad HAVING operator {op_token!r}")
    value = _parse_value(tokens)
    if not isinstance(value, int):
        raise QueryError("HAVING count(*) expects an integer")
    return HavingCount(op, value)


def _merge_ranges(predicates: List[Predicate]) -> List[Predicate]:
    """Fuse ``col >= low AND col <= high`` pairs back into BETWEEN.

    The formatter expands BETWEEN into two atoms; merging on parse makes
    ``parse(format(q))`` a faithful round trip.
    """
    out: List[Predicate] = []
    pending_ge: dict = {}
    for pred in predicates:
        if pred.op is Op.GE and pred.column not in pending_ge:
            pending_ge[pred.column] = len(out)
            out.append(pred)
            continue
        if pred.op is Op.LE and pred.column in pending_ge:
            slot = pending_ge.pop(pred.column)
            low = out[slot].value
            out[slot] = Predicate(pred.column, Op.BETWEEN, (low, pred.value))
            continue
        out.append(pred)
    return out
