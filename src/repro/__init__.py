"""repro: a reproduction of SQuID — Example-Driven Query Intent Discovery.

SQuID (Fariha & Meliou, VLDB 2019) abduces the most probable SPJ query
(with optional group-by aggregation and intersection) explaining a handful
of user-provided example tuples, by combining precomputed semantic-property
statistics (the abduction-ready database, αDB) with a probabilistic
abduction model.

Top-level convenience exports cover the common workflow::

    from repro import SquidSystem, SquidConfig
    from repro.datasets import imdb

    db = imdb.generate(imdb.ImdbSize.small())
    squid = SquidSystem.build(db, imdb.metadata(), SquidConfig())
    result = squid.discover(["Eddie Murphy", "Jim Carrey", "Robin Williams"])
    print(result.sql)

Symbols are resolved lazily (PEP 562) so that light-weight subpackages can
be imported without paying for the whole system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "AbductionReadyDatabase": ("repro.core.adb", "AbductionReadyDatabase"),
    "AbductionResult": ("repro.core.abduction", "AbductionResult"),
    "AdbMetadata": ("repro.core.metadata", "AdbMetadata"),
    "Database": ("repro.relational", "Database"),
    "DiscoveryResult": ("repro.core.squid", "DiscoveryResult"),
    "EntitySpec": ("repro.core.metadata", "EntitySpec"),
    "Query": ("repro.sql", "Query"),
    "SquidConfig": ("repro.core.config", "SquidConfig"),
    "SquidSystem": ("repro.core.squid", "SquidSystem"),
    "format_query": ("repro.sql", "format_query"),
    "parse_query": ("repro.sql", "parse_query"),
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    """Resolve top-level exports on first access."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from .core.abduction import AbductionResult
    from .core.adb import AbductionReadyDatabase
    from .core.config import SquidConfig
    from .core.metadata import AdbMetadata, EntitySpec
    from .core.squid import DiscoveryResult, SquidSystem
    from .relational import Database
    from .sql import Query, format_query, parse_query
