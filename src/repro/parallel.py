"""Generic fork-once task pools with copy-on-write state shipping.

Two layers of the system fan work out across persistent workers:

* :mod:`repro.core.workers` — (example set × candidate) discovery units
  over a warm αDB;
* :mod:`repro.sql.engine.sharded` — probe-side shards of one wide
  vectorized join over the relation layer's cached column views.

Both need the same transport: fork the workers *once* while the parent's
heavyweight state is reachable from a module global (so the children
inherit it through copy-on-write instead of pickling), feed them through
per-worker request queues, and resolve submitters' futures from a single
collector thread, failing fast when a child dies.  This module owns that
machinery; the two call sites layer their own scheduling policies on top.

It intentionally imports nothing from the rest of :mod:`repro`, so both
the core and the sql.engine layers can depend on it without cycles.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Queue sentinel telling a worker loop to exit.
SHUTDOWN = None


def default_task_workers() -> int:
    """A sensible pool width: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def fork_available() -> bool:
    """Whether ``fork``-based pools can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def database_fingerprint(db) -> Tuple[Tuple[str, int, int], ...]:
    """(name, uid, version) of every relation — a pool's staleness key.

    A forked pool holds a copy-on-write snapshot of its database; any
    base-data mutation in the parent leaves the children stale.
    Comparing this fingerprint at submission boundaries tells the owner
    when a restart is required (the same stamp discipline the query
    cache and the probe maps use).
    """
    return tuple(
        (name, db.relation(name).uid, db.relation(name).version)
        for name in db.table_names()
    )


# Fork-inherited heavyweight state, set in the parent immediately before
# the children fork; the lock serialises concurrent pool starts so one
# pool's state cannot leak into another pool's children.
_FORK_STATE: Optional[Any] = None
_FORK_LOCK = threading.Lock()


class fork_state_handoff:
    """Context manager exposing ``state`` to children forked inside it.

    The child entry points read :func:`inherited_fork_state` before their
    first queue read; the value they see is the copy-on-write snapshot
    taken at fork time, so the parent clearing the global afterwards does
    not affect them.
    """

    def __init__(self, state: Any) -> None:
        self._state = state

    def __enter__(self) -> "fork_state_handoff":
        _FORK_LOCK.acquire()
        global _FORK_STATE
        _FORK_STATE = (self._state,)
        return self

    def __exit__(self, *exc_info) -> None:
        global _FORK_STATE
        _FORK_STATE = None
        _FORK_LOCK.release()


def inherited_fork_state() -> Any:
    """The state shipped to this forked child (asserts it was set)."""
    assert _FORK_STATE is not None, "worker forked without pool state"
    return _FORK_STATE[0]


def _fork_task_main(worker_id: int, request_q, result_q) -> None:
    """Entry point of a forked task-pool worker (runs until sentinel)."""
    state, factory = inherited_fork_state()
    handler = factory(state, worker_id)
    while True:
        message = request_q.get()
        if message is SHUTDOWN:
            break
        req_id, payload = message
        try:
            result_q.put((req_id, True, handler(payload)))
        except Exception as exc:  # surfaced through the submitter's future
            result_q.put((req_id, False, exc))


class TaskPool:
    """Base: least-loaded submission, futures plumbing, liveness.

    ``worker_factory(state, worker_id)`` runs *inside* each worker and
    returns the payload handler; for fork pools the state arrives via
    copy-on-write, never pickled.  Subclasses provide the transport.
    """

    kind: str = "abstract"

    def __init__(
        self,
        state: Any,
        worker_factory: Callable[[Any, int], Callable[[Any], Any]],
        workers: int,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.state = state
        self.worker_factory = worker_factory
        self.workers = workers
        self.started = False
        self.closed = False
        self._lock = threading.Lock()
        self._req_ids = itertools.count()
        self._pending: Dict[int, Tuple[Future, int]] = {}
        self._inflight_per_worker: List[int] = [0] * workers

    # -- transport hooks (subclass responsibility) ---------------------
    def _start_workers(self) -> None:
        raise NotImplementedError

    def _send(self, worker_id: int, message: Any) -> None:
        raise NotImplementedError

    def _stop_workers(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TaskPool":
        """Spawn the workers (idempotent)."""
        if self.started:
            return self
        self._start_workers()
        self.started = True
        return self

    def close(self) -> None:
        """Stop the workers; pending futures are failed, not abandoned."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
        if self.started:
            self._stop_workers()
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future, _ in pending:
            if not future.done():
                future.set_exception(RuntimeError("task pool closed"))

    def __enter__(self) -> "TaskPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, payload: Any, worker_id: Optional[int] = None) -> Future:
        """Schedule one payload; least-loaded worker unless pinned."""
        if not self.started or self.closed:
            raise RuntimeError("task pool is not running")
        future: Future = Future()
        with self._lock:
            # Re-check under the lock: a monitor-triggered close() may
            # have failed-and-cleared _pending since the check above.
            if self.closed:
                raise RuntimeError("task pool is not running")
            req_id = next(self._req_ids)
            if worker_id is None:
                worker_id = min(
                    range(self.workers),
                    key=lambda w: self._inflight_per_worker[w],
                )
            self._pending[req_id] = (future, worker_id)
            self._inflight_per_worker[worker_id] += 1
        self._send(worker_id, (req_id, payload))
        return future

    def inflight(self) -> int:
        with self._lock:
            return sum(self._inflight_per_worker)

    def _resolve(self, req_id: int, ok: bool, payload: Any) -> None:
        with self._lock:
            entry = self._pending.pop(req_id, None)
            if entry is not None:
                worker_id = entry[1]
                self._inflight_per_worker[worker_id] = max(
                    0, self._inflight_per_worker[worker_id] - 1
                )
        future = entry[0] if entry is not None else None
        if future is None or future.done():
            return
        if ok:
            future.set_result(payload)
        else:
            future.set_exception(payload)


class ForkTaskPool(TaskPool):
    """Fork-based pool: state ships via copy-on-write, once."""

    kind = "process"

    #: Seconds between worker-liveness checks of the monitor thread.
    MONITOR_INTERVAL = 0.2

    def __init__(self, state, worker_factory, workers: int) -> None:
        super().__init__(state, worker_factory, workers)
        self._mp = multiprocessing.get_context("fork")
        self._request_queues: List[Any] = []
        self._result_queue: Any = None
        self._processes: List[Any] = []
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

    def _start_workers(self) -> None:
        self._result_queue = self._mp.SimpleQueue()
        with fork_state_handoff((self.state, self.worker_factory)):
            for worker_id in range(self.workers):
                request_q = self._mp.SimpleQueue()
                process = self._mp.Process(
                    target=_fork_task_main,
                    args=(worker_id, request_q, self._result_queue),
                    daemon=True,
                )
                process.start()
                self._request_queues.append(request_q)
                self._processes.append(process)
        self._collector = threading.Thread(
            target=self._collect, name="repro-taskpool-collector", daemon=True
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._watch_workers, name="repro-taskpool-monitor", daemon=True
        )
        self._monitor.start()

    def _collect(self) -> None:
        while True:
            message = self._result_queue.get()
            if message is SHUTDOWN:
                break
            self._resolve(*message)

    def _watch_workers(self) -> None:
        """Fail fast instead of hanging when a forked worker dies.

        A killed child (OOM, segfault) never reports back; without this
        its submitters would block forever on their futures.  On death
        the dead worker's pending futures get the error and the pool
        closes (failing the rest) — the owner starts a fresh pool on its
        next use.
        """
        while not self.closed:
            for worker_id, process in enumerate(self._processes):
                if self.closed:
                    return
                if not process.is_alive():
                    self._on_worker_death(worker_id, process.exitcode)
                    return
            time.sleep(self.MONITOR_INTERVAL)

    def _on_worker_death(self, worker_id: int, exitcode: Any) -> None:
        with self._lock:
            dead = [
                (req_id, future)
                for req_id, (future, owner) in self._pending.items()
                if owner == worker_id
            ]
            for req_id, _ in dead:
                del self._pending[req_id]
        error = RuntimeError(
            f"task pool worker {worker_id} died (exit code {exitcode})"
        )
        for _, future in dead:
            if not future.done():
                future.set_exception(error)
        self.close()

    def _send(self, worker_id: int, message: Any) -> None:
        self._request_queues[worker_id].put(message)

    def _stop_workers(self) -> None:
        for request_q in self._request_queues:
            request_q.put(SHUTDOWN)
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1)
        self._result_queue.put(SHUTDOWN)
        if self._collector is not None:
            self._collector.join(timeout=5)
        # the monitor exits on its own once ``closed`` is set; never join
        # it here — worker-death handling calls close() *from* it


class ThreadTaskPool(TaskPool):
    """Thread-based pool: same interface, shared-memory transport."""

    kind = "thread"

    def __init__(self, state, worker_factory, workers: int) -> None:
        super().__init__(state, worker_factory, workers)
        self._queues: List[Any] = []
        self._threads: List[threading.Thread] = []

    def _start_workers(self) -> None:
        import queue

        for worker_id in range(self.workers):
            request_q: "queue.Queue" = queue.Queue()
            thread = threading.Thread(
                target=self._thread_main,
                args=(worker_id, request_q),
                name=f"repro-taskpool-worker-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._queues.append(request_q)
            self._threads.append(thread)

    def _thread_main(self, worker_id: int, request_q) -> None:
        handler = self.worker_factory(self.state, worker_id)
        while True:
            message = request_q.get()
            if message is SHUTDOWN:
                break
            req_id, payload = message
            try:
                self._resolve(req_id, True, handler(payload))
            except Exception as exc:
                self._resolve(req_id, False, exc)

    def _send(self, worker_id: int, message: Any) -> None:
        self._queues[worker_id].put(message)

    def _stop_workers(self) -> None:
        for request_q in self._queues:
            request_q.put(SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=5)


def create_task_pool(
    state: Any,
    worker_factory,
    workers: int,
    executor: str = "process",
) -> TaskPool:
    """Pool factory: ``process`` (falling back where fork is missing) or
    ``thread``.  The returned pool is *not* started; call ``start()``
    after the shared state is warm so fork snapshots ship it built."""
    if executor == "process" and fork_available():
        return ForkTaskPool(state, worker_factory, workers)
    return ThreadTaskPool(state, worker_factory, workers)
