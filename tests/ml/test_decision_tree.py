"""Tests for the from-scratch decision tree on mixed features."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    FeatureMatrix,
    encode_categorical,
    encode_numeric,
    encode_table,
)


def xor_like_dataset():
    """y = 1 iff color == 'red' and size <= 5."""
    colors, sizes, labels = [], [], []
    rng = np.random.default_rng(3)
    for _ in range(300):
        color = "red" if rng.random() < 0.5 else "blue"
        size = float(rng.integers(0, 11))
        colors.append(color)
        sizes.append(size)
        labels.append(1 if (color == "red" and size <= 5) else 0)
    X = FeatureMatrix(
        [encode_categorical("color", colors), encode_numeric("size", sizes)]
    )
    return X, np.array(labels)


class TestFitPredict:
    def test_learns_conjunction_exactly(self):
        X, y = xor_like_dataset()
        tree = DecisionTreeClassifier(max_depth=4, min_samples_leaf=1,
                                      min_samples_split=2)
        tree.fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_pure_node_stops(self):
        X = FeatureMatrix([encode_numeric("a", [1, 2, 3, 4])])
        tree = DecisionTreeClassifier().fit(X, [1, 1, 1, 1])
        assert tree.root is not None and tree.root.is_leaf

    def test_max_depth_zero_gives_stump(self):
        X, y = xor_like_dataset()
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert tree.root.is_leaf

    def test_predict_proba_sums_to_one(self):
        X, y = xor_like_dataset()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (X.num_rows, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_empty_dataset_rejected(self):
        X = FeatureMatrix([encode_numeric("a", [])])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, [])

    def test_shape_mismatch_rejected(self):
        X = FeatureMatrix([encode_numeric("a", [1, 2])])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, [0])

    def test_nan_routes_right(self):
        values = [1.0, 2.0, None, 10.0, 11.0, None]
        labels = [0, 0, 1, 1, 1, 1]
        X = FeatureMatrix([encode_numeric("a", values)])
        tree = DecisionTreeClassifier(max_depth=2, min_samples_leaf=1,
                                      min_samples_split=2).fit(X, labels)
        predictions = tree.predict(X)
        # NaN rows take the right branch together with large values
        assert predictions[2] == predictions[3]

    def test_multiclass(self):
        values = [1, 2, 3, 11, 12, 13, 21, 22, 23]
        labels = [0, 0, 0, 1, 1, 1, 2, 2, 2]
        X = FeatureMatrix([encode_numeric("a", values)])
        tree = DecisionTreeClassifier(max_depth=4, min_samples_leaf=1,
                                      min_samples_split=2).fit(X, labels)
        assert (tree.predict(X) == np.array(labels)).all()

    @given(
        n=st.integers(20, 80),
        threshold=st.integers(2, 8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_recovers_single_threshold(self, n, threshold, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 11, size=n).astype(float)
        labels = (values <= threshold).astype(int)
        if labels.min() == labels.max():
            return
        X = FeatureMatrix([encode_numeric("a", list(values))])
        tree = DecisionTreeClassifier(max_depth=3, min_samples_leaf=1,
                                      min_samples_split=2).fit(X, labels)
        assert (tree.predict(X) == labels).all()


class TestStructure:
    def test_positive_paths_describe_conjunction(self):
        X, y = xor_like_dataset()
        tree = DecisionTreeClassifier(max_depth=4, min_samples_leaf=1,
                                      min_samples_split=2).fit(X, y)
        paths = tree.positive_paths()
        assert paths
        flat = " | ".join(" AND ".join(p) for p in paths)
        assert "color" in flat and "size" in flat

    def test_node_count_positive(self):
        X, y = xor_like_dataset()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert tree.node_count() >= 3

    def test_max_features_restricts_candidates(self):
        X, y = xor_like_dataset()
        tree = DecisionTreeClassifier(max_depth=4, max_features=1, random_state=0)
        tree.fit(X, y)
        assert tree.node_count() >= 1  # fitting succeeds with subsampling


class TestEncoding:
    def test_categorical_codes_stable(self):
        col = encode_categorical("c", ["a", "b", "a", None])
        assert col.values.tolist() == [1, 2, 1, 0]
        assert col.decode(1) == "a"
        assert col.decode(0) is None

    def test_explicit_categories(self):
        col = encode_categorical("c", ["x", "zzz"], categories=["x", "y"])
        assert col.values.tolist() == [1, 0]  # unknown value -> missing

    def test_encode_table_round_trip(self):
        X = encode_table(
            [("a", 1.5), ("b", None)],
            names=["cat", "num"],
            kinds=["categorical", "numeric"],
        )
        assert X.num_rows == 2
        assert X.column("cat").kind == "categorical"
        assert np.isnan(X.column("num").values[1])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            FeatureMatrix(
                [encode_numeric("a", [1, 2]), encode_numeric("b", [1])]
            )

    def test_take_subsets_rows(self):
        X = encode_table(
            [("a", 1.0), ("b", 2.0), ("a", 3.0)],
            names=["cat", "num"],
            kinds=["categorical", "numeric"],
        )
        sub = X.take(np.array([0, 2]))
        assert sub.num_rows == 2
        assert sub.column("num").values.tolist() == [1.0, 3.0]
