"""Tests for the random forest ensemble."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import FeatureMatrix, RandomForestClassifier, encode_numeric

from .test_decision_tree import xor_like_dataset


class TestRandomForest:
    def test_fits_and_predicts(self):
        X, y = xor_like_dataset()
        forest = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        predictions = forest.predict(X)
        assert (predictions == y).mean() > 0.95

    def test_proba_shape_and_normalization(self):
        X, y = xor_like_dataset()
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (X.num_rows, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_given_seed(self):
        X, y = xor_like_dataset()
        a = RandomForestClassifier(n_estimators=5, random_state=42).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=42).fit(X, y)
        assert (a.predict(X) == b.predict(X)).all()

    def test_unfitted_raises(self):
        X, _ = xor_like_dataset()
        forest = RandomForestClassifier()
        with pytest.raises(ValueError):
            forest.predict_proba(X)

    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_empty_dataset_rejected(self):
        X = FeatureMatrix([encode_numeric("a", [])])
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=2).fit(X, [])

    def test_single_class_predicts_it(self):
        X = FeatureMatrix([encode_numeric("a", [1, 2, 3, 4, 5, 6])])
        forest = RandomForestClassifier(n_estimators=3, random_state=1)
        forest.fit(X, [0, 0, 0, 0, 0, 0])
        assert (forest.predict(X) == 0).all()
