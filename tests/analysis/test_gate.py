"""AnalyzingBackend gate tests: rejection, memoization, stamp
invalidation, stats plumbing, and the create_backend / SquidConfig
wiring (wrap order ``CachingBackend(AnalyzingBackend(engine))``).
"""

from __future__ import annotations

import pytest

from repro.analysis import PlanVerificationError
from repro.analysis.gate import AnalyzingBackend
from repro.core import AdbMetadata, EntitySpec, SquidConfig, SquidSystem
from repro.relational.errors import QueryError
from repro.sql.ast import ColumnRef, JoinCondition, Op, Predicate, Query, TableRef
from repro.sql.engine import CachingBackend, create_backend
from repro.sql.engine.interpreted import InterpretedBackend


def col(table: str, column: str) -> ColumnRef:
    return ColumnRef(table, column)


def clean_query() -> Query:
    return Query(
        select=(col("a", "name"),),
        tables=(TableRef("academics", "a"), TableRef("research", "r")),
        joins=(JoinCondition(col("r", "aid"), col("a", "id")),),
        predicates=(
            Predicate(col("r", "interest"), Op.EQ, "data management"),
        ),
    )


def bad_query() -> Query:
    """Statically unsatisfiable: an empty id range (PLAN006)."""
    return Query(
        select=(col("a", "name"),),
        tables=(TableRef("academics", "a"),),
        predicates=(
            Predicate(col("a", "id"), Op.GE, 10),
            Predicate(col("a", "id"), Op.LE, 5),
        ),
    )


def warned_query() -> Query:
    """Cartesian product (PLAN005): a warning, never a rejection."""
    return Query(
        select=(col("a", "name"),),
        tables=(TableRef("academics", "a"), TableRef("research", "r")),
    )


def gate_over(db) -> AnalyzingBackend:
    return AnalyzingBackend(InterpretedBackend(db))


class TestGateBehaviour:
    def test_clean_query_passes_through(self, academics_db):
        gate = gate_over(academics_db)
        rows = gate.execute(clean_query()).rows
        assert ("Dan Suciu",) in rows

    def test_error_findings_reject_before_execution(self, academics_db):
        gate = gate_over(academics_db)
        with pytest.raises(PlanVerificationError) as exc:
            gate.execute(bad_query())
        assert any(d.code == "PLAN006" for d in exc.value.diagnostics)
        assert gate.stats()["analyze_rejected"] == 1

    def test_rejection_is_a_query_error(self, academics_db):
        # The serving tier's 400 path and the harness's error-parity
        # comparison both catch QueryError; gate rejections must flow
        # through the same channel as engine-raised validation failures.
        gate = gate_over(academics_db)
        with pytest.raises(QueryError):
            gate.execute(bad_query())

    def test_warnings_count_but_do_not_block(self, academics_db):
        gate = gate_over(academics_db)
        result = gate.execute(warned_query())
        assert len(result.rows) > 0
        stats = gate.stats()
        assert stats["analyze_warned"] == 1
        assert stats["analyze_rejected"] == 0

    def test_verdicts_memoize_per_stamp(self, academics_db):
        gate = gate_over(academics_db)
        gate.execute(clean_query())
        gate.execute(clean_query())
        stats = gate.stats()
        assert stats["analyze_checked"] == 1
        assert stats["analyze_memo_hits"] == 1

    def test_mutation_invalidates_the_verdict(self, academics_db):
        gate = gate_over(academics_db)
        gate.execute(clean_query())
        academics_db.insert("academics", (900, "New Hire"))
        gate.execute(clean_query())
        assert gate.stats()["analyze_checked"] == 2

    def test_unknown_table_rejects_on_every_call(self, academics_db):
        gate = gate_over(academics_db)
        query = Query(
            select=(col("x", "name"),), tables=(TableRef("nosuch", "x"),)
        )
        for _ in range(2):
            with pytest.raises(PlanVerificationError):
                gate.execute(query)
        # No stamp to memoize on: both calls re-verified.
        assert gate.stats()["analyze_checked"] == 2

    def test_close_clears_the_memo(self, academics_db):
        gate = gate_over(academics_db)
        gate.execute(clean_query())
        gate.close()
        assert len(gate._verdicts) == 0


class TestWiring:
    def test_create_backend_wraps_under_the_cache(self, academics_db):
        backend = create_backend(
            "vectorized", academics_db, cache_size=8, analyze=True
        )
        assert isinstance(backend, CachingBackend)
        assert isinstance(backend.inner, AnalyzingBackend)
        # The rollup exposes engine, gate, and cache counters together.
        backend.execute(clean_query())
        stats = backend.stats()
        assert stats["analyze_checked"] == 1
        assert "cache_hits" in stats
        assert "vectorized_blocks" in stats

    def test_create_backend_analyze_off_by_default(self, academics_db):
        backend = create_backend("vectorized", academics_db)
        assert not isinstance(backend, AnalyzingBackend)

    def test_cache_hits_skip_reverification(self, academics_db):
        backend = create_backend(
            "vectorized", academics_db, cache_size=8, analyze=True
        )
        backend.execute(clean_query())
        backend.execute(clean_query())
        stats = backend.stats()
        assert stats["cache_hits"] == 1
        # The second call never reached the gate at all.
        assert stats["analyze_checked"] == 1
        assert stats["analyze_memo_hits"] == 0

    def test_dispatch_shares_its_statistics_provider(self, academics_db):
        backend = create_backend("dispatch", academics_db, analyze=True)
        assert isinstance(backend, AnalyzingBackend)
        assert backend.statistics is backend.inner._provider

    def test_squid_system_runs_behind_the_gate(self, academics_db):
        metadata = AdbMetadata(
            entities=[EntitySpec("academics", "id", "name")],
            property_attributes={"research": ["interest"]},
        )
        squid = SquidSystem.build(
            academics_db, metadata, SquidConfig(analyze=True)
        )
        result = squid.discover(["Dan Suciu", "Sam Madden"])
        keys = squid.result_keys(result)
        assert {101, 103} <= keys
        stats = squid.backend_stats()
        assert stats["analyze_checked"] > 0
        assert stats["analyze_rejected"] == 0

    def test_config_default_is_off(self):
        assert SquidConfig().analyze is False
