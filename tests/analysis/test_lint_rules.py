"""Invariant-linter unit tests: one positive and one negative snippet
per LINT code, fed through :func:`repro.analysis.lint.lint_sources` —
the exact pipeline ``tools/lint_repro.py`` and CI run over real files.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint import LINT_CODES, lint_sources


def lint(source: str, path: str = "src/mod.py"):
    return lint_sources({path: textwrap.dedent(source)})


def codes(diagnostics) -> set:
    return {d.code for d in diagnostics}


def test_catalog_covers_all_six_rules():
    assert set(LINT_CODES) == {f"LINT{i:03d}" for i in range(1, 7)}


def test_clean_file_lints_clean():
    assert lint("x = 1\n") == []


def test_lint000_syntax_error():
    diags = lint("def broken(:\n")
    assert codes(diags) == {"LINT000"}


# -- LINT001: lock discipline around shared counters ---------------------
LOCKED_COUNTER = """
    import threading

    class Pool:
        def __init__(self):
            self._lock = threading.Lock()
            self.batches_served = 0

        def note_batch_served(self):
            with self._lock:
                self.batches_served += 1
"""


def test_lint001_unlocked_counter_mutation_fires():
    source = LOCKED_COUNTER + (
        "\n"
        "        def sneaky(self):\n"
        "            self.batches_served += 1\n"
    )
    diags = lint(source)
    assert codes(diags) == {"LINT001"}
    assert "outside" in diags[0].message


def test_lint001_locked_mutation_is_clean():
    assert lint(LOCKED_COUNTER) == []


def test_lint001_cross_object_reacharound_fires():
    source = LOCKED_COUNTER + (
        "\n"
        "    def caller(pool):\n"
        "        pool.batches_served += 1\n"
    )
    diags = lint(source)
    assert codes(diags) == {"LINT001"}
    assert "reaches" in diags[0].message


def test_lint001_container_counter_needs_the_lock_too():
    source = """
        import threading

        class Telemetry:
            def __init__(self):
                self._lock = threading.Lock()
                self.per_engine = {}

            def bump(self, engine):
                self.per_engine[engine] += 1
    """
    assert codes(lint(source)) == {"LINT001"}


# -- LINT002: version-stamp bumps on mutation ----------------------------
def test_lint002_mutation_without_bump_fires():
    source = """
        class Relation:
            def __init__(self):
                self._rows = []
                self._version = 0

            def insert(self, row):
                self._rows.append(row)
    """
    diags = lint(source)
    assert codes(diags) == {"LINT002"}
    assert "_version" in diags[0].message


def test_lint002_bumped_mutation_is_clean():
    source = """
        class Relation:
            def __init__(self):
                self._rows = []
                self._version = 0

            def insert(self, row):
                self._rows.append(row)
                self._version += 1
    """
    assert lint(source) == []


def test_lint002_cache_fills_need_no_bump():
    source = """
        class Relation:
            def __init__(self):
                self._array_cache = {}
                self._version = 0

            def column_array(self, name):
                self._array_cache[name] = name
                return self._array_cache[name]
    """
    assert lint(source) == []


# -- LINT003: (uid, version) stamp pairing -------------------------------
def test_lint003_bare_version_read_fires():
    source = """
        def stamp(relation):
            return relation.version
    """
    diags = lint(source)
    assert codes(diags) == {"LINT003"}
    assert "uid" in diags[0].message


def test_lint003_paired_read_is_clean():
    source = """
        def stamp(relation):
            return (relation.uid, relation.version)
    """
    assert lint(source) == []


# -- LINT004: ExecutionBackend contract ----------------------------------
def test_lint004_missing_stats_fires():
    source = """
        class ExecutionBackend:
            name = "abstract"

        class HalfBackend(ExecutionBackend):
            name = "half"

            def execute(self, query):
                return None
    """
    diags = lint(source)
    assert codes(diags) == {"LINT004"}
    assert "stats" in diags[0].message


def test_lint004_missing_name_fires():
    source = """
        class ExecutionBackend:
            name = "abstract"

        class Anonymous(ExecutionBackend):
            def execute(self, query):
                return None

            def stats(self):
                return {}
    """
    diags = lint(source)
    assert codes(diags) == {"LINT004"}
    assert "name" in diags[0].message


def test_lint004_full_surface_is_clean():
    source = """
        class ExecutionBackend:
            name = "abstract"

        class Complete(ExecutionBackend):
            name = "complete"

            def execute(self, query):
                return None

            def stats(self):
                return {}
    """
    assert lint(source) == []


def test_lint004_inherited_surface_counts():
    source = """
        class ExecutionBackend:
            name = "abstract"

        class Base(ExecutionBackend):
            name = "base"

            def execute(self, query):
                return None

            def stats(self):
                return {}

        class Derived(Base):
            pass
    """
    assert lint(source) == []


def test_lint004_abstract_intermediates_are_exempt():
    source = """
        from abc import ABC, abstractmethod

        class ExecutionBackend(ABC):
            name = "abstract"

            @abstractmethod
            def execute(self, query):
                ...
    """
    assert lint(source) == []


# -- LINT005: seeded randomness in synth paths ---------------------------
def test_lint005_global_rng_in_synth_fires():
    source = """
        import random

        def sample():
            return random.randint(0, 10)
    """
    diags = lint(source, path="src/repro/synth/bad.py")
    assert codes(diags) == {"LINT005"}


def test_lint005_clock_call_in_synth_fires():
    source = """
        import time

        def jitter():
            return time.time()
    """
    assert codes(lint(source, path="src/repro/synth/bad.py")) == {"LINT005"}


def test_lint005_seeded_rng_is_clean():
    source = """
        import random

        def sample(seed):
            return random.Random(seed).randint(0, 10)
    """
    assert lint(source, path="src/repro/synth/good.py") == []


def test_lint005_only_applies_to_synth_paths():
    source = """
        import random

        def sample():
            return random.randint(0, 10)
    """
    assert lint(source, path="src/repro/eval/free.py") == []


# -- LINT006: copy-on-write warm state -----------------------------------
def test_lint006_worker_mutating_warm_state_fires():
    source = """
        def _fork_unit(adb, unit):
            adb.db.bulk_load("movies", unit.rows)
    """
    diags = lint(source)
    assert codes(diags) == {"LINT006"}
    assert "warm state" in diags[0].message


def test_lint006_worker_assignment_into_warm_state_fires():
    source = """
        class _WorkerCore:
            def run(self, unit):
                self.adb.lookup = unit.lookup
    """
    assert codes(lint(source)) == {"LINT006"}


def test_lint006_read_only_worker_is_clean():
    source = """
        def _fork_unit(adb, unit):
            relation = adb.db.relation("movies")
            return relation.row(0)
    """
    assert lint(source) == []


def test_lint006_parent_scope_mutations_are_fine():
    source = """
        def parent_refresh(adb, rows):
            adb.db.bulk_load("movies", rows)
    """
    assert lint(source) == []


# -- driver ---------------------------------------------------------------
def test_findings_sort_by_location():
    source = """
        import random

        def late():
            return random.random()

        def early(relation):
            return relation.version
    """
    diags = lint(source, path="src/repro/synth/mixed.py")
    lines = [int(d.span.rsplit(":", 1)[1]) for d in diags]
    assert lines == sorted(lines)
    assert codes(diags) == {"LINT003", "LINT005"}
