"""Plan-verifier unit tests: one positive and one negative case per
PLAN code (the code catalog is a public contract — see docs/analysis.md).

All cases run on the Figure 1 academics database from the shared
conftest: small enough that the statistics provider computes *exact*
column statistics, which is what arms the PLAN007 domain check.
"""

from __future__ import annotations

from repro.analysis import PLAN_CODES, Severity, errors_of, verify_query
from repro.analysis.plan import SQLITE_MAX_JOIN_TABLES
from repro.sql.ast import (
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)
from repro.sql.estimator import StatisticsProvider


def col(table: str, column: str) -> ColumnRef:
    return ColumnRef(table, column)


def base_query(**overrides) -> Query:
    """A clean two-table join over the academics schema."""
    fields = dict(
        select=(col("a", "name"),),
        tables=(TableRef("academics", "a"), TableRef("research", "r")),
        joins=(JoinCondition(col("r", "aid"), col("a", "id")),),
        predicates=(
            Predicate(col("r", "interest"), Op.EQ, "data management"),
        ),
    )
    fields.update(overrides)
    return Query(**fields)


def codes(diagnostics) -> set:
    return {d.code for d in diagnostics}


def test_code_catalog_is_stable():
    assert PLAN_CODES == tuple(f"PLAN{i:03d}" for i in range(1, 11))


def test_clean_query_verifies_clean(academics_db):
    assert verify_query(academics_db, base_query()) == []


# -- PLAN001: unknown table ---------------------------------------------
def test_plan001_unknown_table_fires(academics_db):
    query = Query(
        select=(col("x", "name"),), tables=(TableRef("nosuch", "x"),)
    )
    diags = verify_query(academics_db, query)
    assert codes(diags) == {"PLAN001"}
    assert diags[0].is_error
    assert diags[0].span == "tables[0]"


def test_plan001_known_tables_clean(academics_db):
    assert verify_query(academics_db, base_query()) == []


# -- PLAN002: unknown column --------------------------------------------
def test_plan002_unknown_column_fires(academics_db):
    query = base_query(
        predicates=(Predicate(col("a", "nope"), Op.EQ, "x"),)
    )
    diags = verify_query(academics_db, query)
    assert codes(diags) == {"PLAN002"}
    assert "no column 'nope'" in diags[0].message


def test_plan002_known_columns_clean(academics_db):
    query = base_query(
        select=(col("a", "name"), col("r", "interest"))
    )
    assert verify_query(academics_db, query) == []


# -- PLAN003: join type compatibility -----------------------------------
def test_plan003_text_int_join_fires(academics_db):
    query = base_query(
        joins=(JoinCondition(col("a", "name"), col("r", "aid")),)
    )
    diags = verify_query(academics_db, query)
    assert codes(diags) == {"PLAN003"}
    assert "text" in diags[0].message and "int" in diags[0].message


def test_plan003_int_int_join_clean(academics_db):
    assert verify_query(academics_db, base_query()) == []


# -- PLAN004: predicate value types -------------------------------------
def test_plan004_int_on_text_fires(academics_db):
    query = base_query(
        predicates=(Predicate(col("a", "name"), Op.GE, 5),)
    )
    diags = verify_query(academics_db, query)
    assert codes(diags) == {"PLAN004"}


def test_plan004_bool_is_not_an_int(academics_db):
    query = base_query(
        predicates=(Predicate(col("a", "id"), Op.EQ, True),)
    )
    assert codes(verify_query(academics_db, query)) == {"PLAN004"}


def test_plan004_matching_types_clean(academics_db):
    query = base_query(
        predicates=(
            Predicate(col("a", "id"), Op.BETWEEN, (100, 105)),
            Predicate(
                col("r", "interest"),
                Op.IN,
                frozenset({"algorithms", "data mining"}),
            ),
        )
    )
    assert verify_query(academics_db, query) == []


# -- PLAN005: join-graph connectivity -----------------------------------
def test_plan005_cartesian_block_warns(academics_db):
    query = base_query(joins=())
    diags = verify_query(academics_db, query)
    assert codes(diags) == {"PLAN005"}
    assert diags[0].severity is Severity.WARNING
    assert errors_of(diags) == []


def test_plan005_connected_block_clean(academics_db):
    assert verify_query(academics_db, base_query()) == []


# -- PLAN006: unsatisfiable conjunctions --------------------------------
def test_plan006_empty_range_fires(academics_db):
    query = base_query(
        predicates=(
            Predicate(col("a", "id"), Op.GE, 10),
            Predicate(col("a", "id"), Op.LE, 5),
        )
    )
    diags = verify_query(academics_db, query)
    assert codes(diags) == {"PLAN006"}
    assert "empty range" in diags[0].message


def test_plan006_conflicting_equalities_fire(academics_db):
    query = base_query(
        predicates=(
            Predicate(col("a", "id"), Op.EQ, 1),
            Predicate(col("a", "id"), Op.EQ, 2),
        )
    )
    assert codes(verify_query(academics_db, query)) == {"PLAN006"}


def test_plan006_impossible_having_fires(academics_db):
    query = base_query(
        select=(col("a", "id"),),
        group_by=(col("a", "id"),),
        having=HavingCount(Op.LE, 0),
    )
    diags = verify_query(academics_db, query)
    assert codes(diags) == {"PLAN006"}
    assert diags[0].span == "having"


def test_plan006_satisfiable_conjunction_clean(academics_db):
    query = base_query(
        predicates=(
            Predicate(col("a", "id"), Op.GE, 100),
            Predicate(col("a", "id"), Op.LE, 105),
            Predicate(col("a", "id"), Op.EQ, 103),
        )
    )
    assert verify_query(academics_db, query) == []


# -- PLAN007: exact-statistics domain emptiness -------------------------
def test_plan007_absent_value_warns_with_exact_stats(academics_db):
    stats = StatisticsProvider(academics_db)
    query = base_query(
        predicates=(Predicate(col("a", "name"), Op.EQ, "Nobody Atall"),)
    )
    diags = verify_query(academics_db, query, statistics=stats)
    assert codes(diags) == {"PLAN007"}
    assert diags[0].severity is Severity.WARNING


def test_plan007_out_of_range_bound_warns(academics_db):
    stats = StatisticsProvider(academics_db)
    query = base_query(
        predicates=(Predicate(col("a", "id"), Op.GE, 10_000),)
    )
    assert codes(verify_query(academics_db, query, statistics=stats)) == {
        "PLAN007"
    }


def test_plan007_live_value_clean(academics_db):
    stats = StatisticsProvider(academics_db)
    query = base_query(
        predicates=(Predicate(col("a", "name"), Op.EQ, "Dan Suciu"),)
    )
    assert verify_query(academics_db, query, statistics=stats) == []


def test_plan007_needs_a_statistics_provider(academics_db):
    query = base_query(
        predicates=(Predicate(col("a", "name"), Op.EQ, "Nobody Atall"),)
    )
    assert verify_query(academics_db, query) == []


def test_plan007_never_fires_on_sampled_statistics(academics_db):
    # A tiny sample budget forces sampled (non-exact) statistics on the
    # research table (8 rows > budget 2... budgets are floored at 1 in
    # the provider; use the smallest legal budget below the row count).
    stats = StatisticsProvider(academics_db, sample_budget=2)
    query = base_query(
        predicates=(
            Predicate(col("r", "interest"), Op.EQ, "underwater basketry"),
        )
    )
    assert verify_query(academics_db, query, statistics=stats) == []


# -- PLAN008: SQLite join-width hazard ----------------------------------
def _star(width: int) -> Query:
    tables = tuple(TableRef("academics", f"t{i}") for i in range(width))
    joins = tuple(
        JoinCondition(col(f"t{i}", "id"), col(f"t{i + 1}", "id"))
        for i in range(width - 1)
    )
    return Query(select=(col("t0", "name"),), tables=tables, joins=joins)


def test_plan008_wide_block_warns(academics_db):
    diags = verify_query(academics_db, _star(SQLITE_MAX_JOIN_TABLES + 1))
    assert codes(diags) == {"PLAN008"}
    assert errors_of(diags) == []


def test_plan008_at_the_limit_clean(academics_db):
    assert verify_query(academics_db, _star(SQLITE_MAX_JOIN_TABLES)) == []


# -- PLAN009: GROUP BY projection shape ---------------------------------
def test_plan009_undetermined_projection_fires(academics_db):
    query = base_query(
        select=(col("r", "interest"),),
        group_by=(col("a", "name"),),
    )
    diags = verify_query(academics_db, query)
    assert codes(diags) == {"PLAN009"}
    assert "engine-defined" in diags[0].message


def test_plan009_primary_key_determines_the_row(academics_db):
    # Grouping by the alias's PK functionally determines every column of
    # that alias — the checked-in workloads' keyed queries rely on this.
    query = base_query(
        select=(col("a", "id"), col("a", "name")),
        group_by=(col("a", "id"),),
        having=HavingCount(Op.GE, 2),
    )
    assert verify_query(academics_db, query) == []


# -- PLAN010: INTERSECT column types ------------------------------------
def test_plan010_mismatched_intersect_fires(academics_db):
    blocks = (
        base_query(select=(col("a", "id"),)),
        base_query(select=(col("a", "name"),)),
    )
    diags = verify_query(academics_db, IntersectQuery(blocks))
    assert codes(diags) == {"PLAN010"}
    assert diags[0].span == "blocks[1].select[0]"


def test_plan010_compatible_intersect_clean(academics_db):
    blocks = (
        base_query(select=(col("a", "id"),)),
        base_query(select=(col("r", "aid"),)),
    )
    assert verify_query(academics_db, IntersectQuery(blocks)) == []


def test_intersect_spans_carry_block_prefixes(academics_db):
    blocks = (
        base_query(),
        base_query(
            predicates=(Predicate(col("a", "nope"), Op.EQ, "x"),)
        ),
    )
    diags = verify_query(academics_db, IntersectQuery(blocks))
    assert [d.code for d in diags] == ["PLAN002"]
    assert diags[0].span.startswith("blocks[1].")
