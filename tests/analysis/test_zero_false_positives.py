"""The verifier's no-false-positive contract, plus self-lint and the
pinning regressions for the violations the linter originally surfaced.

Zero-false-positive sweep: every checked-in workload query, every
checked-in corpus scenario's intent queries, and a differential fuzz
sweep (whose harness now runs every engine behind the gate and asserts
a fully clean verdict per sampled/abduced query) must produce no
verifier findings.  CI's fuzz job extends the sweep to 200 seeds.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import errors_of, format_diagnostics, verify_query
from repro.analysis.lint import lint_paths
from repro.core.workers import WorkerPool
from repro.datasets import adult, dblp, imdb
from repro.sql.engine import available_backends, create_backend
from repro.sql.estimator import StatisticsProvider
from repro.synth import ScenarioMaskError, generate_scenario, load_corpus
from repro.synth.harness import KIND_ANALYSIS, fuzz_seeds
from repro.workloads import adult_queries, dblp_queries, imdb_queries

SRC = Path(__file__).resolve().parents[2] / "src"


# -- the codebase passes its own linter ----------------------------------
def test_src_tree_lints_clean():
    findings = lint_paths([str(SRC)])
    assert findings == [], "\n" + format_diagnostics(findings)


# -- pinning regressions for the violations the linter caught ------------
def test_every_engine_exposes_stats():
    # LINT004 originally flagged interpreted/vectorized/sqlite (and the
    # caching wrapper) as stats-less; the full surface is now mandatory.
    db = imdb.generate(imdb.ImdbSize.small())
    for name in available_backends():
        backend = create_backend(name, db)
        stats = backend.stats()
        assert isinstance(stats, dict), name
        backend.close()


def test_worker_pool_counter_mutates_through_a_locked_method():
    # LINT001 originally flagged `pool.batches_served += 1` in
    # session.py — a reach-around of the pool's lock.  The locked
    # accessor is now the only path.
    pool = WorkerPool.__new__(WorkerPool)
    pool.batches_served = 0
    import threading

    pool._lock = threading.Lock()
    pool.note_batch_served()
    pool.note_batch_served()
    assert pool.batches_served == 2


# -- zero false positives over checked-in workloads ----------------------
def _sweep(db, workloads):
    provider = StatisticsProvider(db)
    for workload in workloads:
        if workload.query is None:
            continue
        diags = verify_query(db, workload.query, statistics=provider)
        assert errors_of(diags) == [], (
            f"{workload.qid}:\n{format_diagnostics(diags)}"
        )
        if workload.cardinality(db) > 0:
            # A non-empty ground truth means every predicate matched at
            # least one row, so even the domain warnings must stay quiet.
            assert diags == [], (
                f"{workload.qid}:\n{format_diagnostics(diags)}"
            )


def test_imdb_workloads_verify_clean():
    db = imdb.generate(imdb.ImdbSize.small())
    _sweep(db, imdb_queries.build_registry().all())


def test_dblp_workloads_verify_clean():
    db = dblp.generate(dblp.DblpSize.small())
    _sweep(db, dblp_queries.build_registry().all())


def test_adult_workloads_verify_clean():
    db = adult.generate(adult.AdultSize.small())
    registry = adult_queries.generate_queries(db, count=10)
    _sweep(db, registry.all())


# -- zero false positives over the checked-in corpus ---------------------
def test_corpus_scenario_intents_verify_clean():
    entries = load_corpus()
    assert entries, "checked-in corpus is missing"
    for entry in entries:
        try:
            scenario = generate_scenario(entry.config)
        except ScenarioMaskError:
            continue
        provider = StatisticsProvider(scenario.db)
        for intent in scenario.intents:
            diags = verify_query(
                scenario.db, intent.query, statistics=provider
            )
            assert diags == [], (
                f"{entry.entry_id} intent {intent.index}:\n"
                f"{format_diagnostics(diags)}"
            )


# -- the fuzz harness asserts the same thing end-to-end ------------------
def test_fuzz_sweep_reports_no_analysis_failures():
    report = fuzz_seeds(range(0, 6))
    analysis = [f for f in report.failures if f.kind == KIND_ANALYSIS]
    assert analysis == [], "\n".join(str(f) for f in analysis)
    assert report.ok, "\n".join(str(f) for f in report.failures)
