"""Regression: SQLite blocks wider than the 64-table join limit.

QRE-style abduced queries (optimistic config, one αDB alias per kept
filter) routinely exceed ``sqlite3``'s hard 64-tables-in-a-join limit;
the backend now compiles such blocks to chained, materialised CTEs.
These tests pin the chained plan's results to the interpreted reference
engine on star-shaped queries of 70–130 aliases — including GROUP
BY/HAVING (where intermediate row multiplicity is semantics and must
survive the chain) and INTERSECT with a wide block.
"""

from __future__ import annotations

import pytest

from repro.relational import (
    ColumnDef,
    ColumnType,
    Database,
    ForeignKey,
    TableSchema,
)
from repro.sql.ast import (
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)
from repro.sql.engine import create_backend
from repro.sql.engine.sqlite import CHAIN_STAGE_TABLES, MAX_JOIN_TABLES

INT, TEXT = ColumnType.INT, ColumnType.TEXT

PERSONS = 12
TAGS = 8


@pytest.fixture(scope="module")
def star_db() -> Database:
    """person ⟕ fact star with exactly one fact per (person, tag) — the
    multiplicity-1 shape of materialised αDB relations."""
    db = Database("star")
    db.create_table(
        TableSchema(
            "person",
            [ColumnDef("id", INT, nullable=False), ColumnDef("name", TEXT)],
            primary_key="id",
        )
    )
    db.create_table(
        TableSchema(
            "fact",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("pid", INT),
                ColumnDef("tag", TEXT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("pid", "person", "id")],
        )
    )
    fact_id = 0
    for pid in range(1, PERSONS + 1):
        db.insert("person", (pid, f"P{pid:02d}"))
        # person pid has tags t0..t_{pid % TAGS} — so wider stars narrow
        # the result set and every alias count stays meaningful
        for tag in range(1 + pid % TAGS):
            fact_id += 1
            db.insert("fact", (fact_id, pid, f"t{tag}"))
    return db


def star_query(num_aliases: int, having=None, group=False) -> Query:
    """The abduced shape: every alias joins back to the entity key."""
    tables = [TableRef("person")]
    joins, predicates = [], []
    for i in range(num_aliases):
        alias = f"fact_{i}"
        tables.append(TableRef("fact", alias))
        joins.append(
            JoinCondition(ColumnRef(alias, "pid"), ColumnRef("person", "id"))
        )
        predicates.append(
            Predicate(ColumnRef(alias, "tag"), Op.EQ, f"t{i % TAGS}")
        )
    return Query(
        select=(ColumnRef("person", "name"),),
        tables=tuple(tables),
        joins=tuple(joins),
        predicates=tuple(predicates),
        group_by=(ColumnRef("person", "id"),) if group else (),
        having=having,
        distinct=not group,
    )


@pytest.fixture(scope="module")
def engines(star_db):
    return (
        create_backend("interpreted", star_db),
        create_backend("sqlite", star_db),
    )


class TestChainedCompilation:
    @pytest.mark.parametrize("num_aliases", [3, 65, 70, 130])
    def test_wide_star_matches_reference(self, engines, num_aliases):
        interpreted, sqlite = engines
        query = star_query(num_aliases)
        expected = sorted(interpreted.execute(query).rows)
        actual = sorted(sqlite.execute(query).rows)
        assert actual == expected
        if num_aliases <= TAGS:
            assert expected, "narrow star should keep some rows"

    def test_wide_group_by_having_counts(self, engines):
        """Multiplicity must survive the chain when count(*) needs it."""
        interpreted, sqlite = engines
        for threshold in (1, 40):
            query = star_query(
                70, having=HavingCount(Op.GE, threshold), group=True
            )
            assert sorted(sqlite.execute(query).rows) == sorted(
                interpreted.execute(query).rows
            ), threshold

    def test_intersect_with_wide_block(self, engines):
        interpreted, sqlite = engines
        query = IntersectQuery((star_query(70), star_query(2)))
        assert sorted(sqlite.execute(query).rows) == sorted(
            interpreted.execute(query).rows
        )

    def test_chain_constants_sane(self):
        # the chained plan must never hand sqlite3 an over-wide join
        assert CHAIN_STAGE_TABLES + 1 <= MAX_JOIN_TABLES <= 64

    def test_flat_path_untouched_below_limit(self, engines, star_db):
        """Blocks at or below the limit still compile as one plain join
        (no WITH clause), so existing plans and their performance hold."""
        _, sqlite = engines
        compiled = sqlite._compile_block(star_query(10))
        assert compiled.ctes == []
        assert "WITH" not in compiled.select_sql

    def test_chained_path_engaged_above_limit(self, engines):
        _, sqlite = engines
        compiled = sqlite._compile_block(star_query(MAX_JOIN_TABLES + 5))
        assert len(compiled.ctes) >= 2
