"""Unit tests for the query AST: validation and predicate semantics."""

from __future__ import annotations

import pytest

from repro.sql import (
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)


def simple_query(**kwargs) -> Query:
    defaults = dict(
        select=(ColumnRef("person", "name"),),
        tables=(TableRef("person"),),
    )
    defaults.update(kwargs)
    return Query(**defaults)


class TestTableRef:
    def test_default_alias_is_name(self):
        ref = TableRef("person")
        assert ref.alias == "person"
        assert not ref.is_aliased

    def test_explicit_alias(self):
        ref = TableRef("persontogenre", "pg1")
        assert ref.alias == "pg1"
        assert ref.is_aliased


class TestPredicate:
    def test_eq(self):
        pred = Predicate(ColumnRef("p", "gender"), Op.EQ, "Male")
        assert pred.matches("Male")
        assert not pred.matches("Female")

    def test_null_never_matches(self):
        for op, value in [(Op.EQ, 1), (Op.GE, 1), (Op.LE, 1), (Op.BETWEEN, (0, 2))]:
            assert not Predicate(ColumnRef("p", "a"), op, value).matches(None)

    def test_ge_le(self):
        ge = Predicate(ColumnRef("p", "age"), Op.GE, 50)
        le = Predicate(ColumnRef("p", "age"), Op.LE, 50)
        assert ge.matches(50) and ge.matches(51) and not ge.matches(49)
        assert le.matches(50) and le.matches(49) and not le.matches(51)

    def test_between_inclusive(self):
        pred = Predicate(ColumnRef("p", "age"), Op.BETWEEN, (50, 90))
        assert pred.matches(50) and pred.matches(90) and pred.matches(60)
        assert not pred.matches(49) and not pred.matches(91)

    def test_between_requires_pair(self):
        with pytest.raises(ValueError):
            Predicate(ColumnRef("p", "age"), Op.BETWEEN, 50)

    def test_in_coerces_to_frozenset(self):
        pred = Predicate(ColumnRef("p", "g"), Op.IN, ["Male", "Female"])
        assert isinstance(pred.value, frozenset)
        assert pred.matches("Male") and not pred.matches("Other")

    def test_atom_count(self):
        assert Predicate(ColumnRef("p", "a"), Op.EQ, 1).atom_count() == 1
        assert Predicate(ColumnRef("p", "a"), Op.BETWEEN, (0, 1)).atom_count() == 2
        assert Predicate(ColumnRef("p", "a"), Op.IN, [1, 2, 3]).atom_count() == 3


class TestHavingCount:
    def test_ops(self):
        assert HavingCount(Op.GE, 3).matches(3)
        assert not HavingCount(Op.GE, 3).matches(2)
        assert HavingCount(Op.LE, 3).matches(3)
        assert HavingCount(Op.EQ, 3).matches(3)
        assert not HavingCount(Op.EQ, 3).matches(4)

    def test_rejects_bad_op(self):
        with pytest.raises(ValueError):
            HavingCount(Op.BETWEEN, 3)


class TestQueryValidation:
    def test_duplicate_alias_rejected(self):
        with pytest.raises(ValueError):
            Query(
                select=(ColumnRef("person", "name"),),
                tables=(TableRef("person"), TableRef("person")),
            )

    def test_same_table_distinct_aliases_allowed(self):
        query = Query(
            select=(ColumnRef("a", "name"),),
            tables=(TableRef("person", "a"), TableRef("person", "b")),
        )
        assert query.alias_map() == {"a": "person", "b": "person"}

    def test_select_unknown_alias_rejected(self):
        with pytest.raises(ValueError):
            simple_query(select=(ColumnRef("movie", "title"),))

    def test_join_unknown_alias_rejected(self):
        with pytest.raises(ValueError):
            simple_query(
                joins=(
                    JoinCondition(
                        ColumnRef("person", "id"), ColumnRef("castinfo", "pid")
                    ),
                )
            )

    def test_predicate_unknown_alias_rejected(self):
        with pytest.raises(ValueError):
            simple_query(
                predicates=(Predicate(ColumnRef("movie", "year"), Op.EQ, 2000),)
            )

    def test_having_requires_group_by(self):
        with pytest.raises(ValueError):
            simple_query(having=HavingCount(Op.GE, 2))

    def test_with_predicates_copies(self):
        base = simple_query()
        pred = Predicate(ColumnRef("person", "name"), Op.EQ, "Ann")
        derived = base.with_predicates([pred])
        assert derived.predicates == (pred,)
        assert base.predicates == ()


class TestJoinCondition:
    def test_touches_and_sides(self):
        join = JoinCondition(ColumnRef("a", "id"), ColumnRef("b", "aid"))
        assert join.touches("a") and join.touches("b") and not join.touches("c")
        assert join.other_side("a") == ColumnRef("b", "aid")
        assert join.side_of("b") == ColumnRef("b", "aid")
        with pytest.raises(ValueError):
            join.other_side("c")


class TestIntersectQuery:
    def test_requires_two_blocks(self):
        with pytest.raises(ValueError):
            IntersectQuery((simple_query(),))

    def test_requires_equal_arity(self):
        q1 = simple_query()
        q2 = Query(
            select=(ColumnRef("person", "name"), ColumnRef("person", "name")),
            tables=(TableRef("person"),),
        )
        with pytest.raises(ValueError):
            IntersectQuery((q1, q2))
