"""Differential property tests: hash-join executor vs brute-force oracle.

Random tiny databases and random SPJ(A) queries are evaluated by both the
production executor and the nested-loop reference; their result sets must
be identical.  This covers join ordering, predicate pushdown, residual
joins, aggregation, and DISTINCT semantics in one sweep.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import ColumnDef, ColumnType, Database, ForeignKey, TableSchema
from repro.sql import (
    ColumnRef,
    HavingCount,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
    execute,
)
from repro.sql.reference import execute_reference

INT = ColumnType.INT
TEXT = ColumnType.TEXT


def build_db(parents, children):
    """parent(id, tag, score) and child(id, parent_id, label)."""
    db = Database("prop")
    db.create_table(
        TableSchema(
            "parent",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("tag", TEXT),
                ColumnDef("score", INT),
            ],
            primary_key="id",
        )
    )
    db.create_table(
        TableSchema(
            "child",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("parent_id", INT),
                ColumnDef("label", TEXT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("parent_id", "parent", "id")],
        )
    )
    db.bulk_load(
        "parent",
        [(i, tag, score) for i, (tag, score) in enumerate(parents)],
    )
    db.bulk_load(
        "child",
        [
            (i, pid % max(1, len(parents)) if parents else None, label)
            for i, (pid, label) in enumerate(children)
        ],
    )
    return db


parents_strategy = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 9)),
    min_size=1,
    max_size=6,
)
children_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.sampled_from(["x", "y", "z"])),
    max_size=8,
)


class TestSingleTableEquivalence:
    @given(
        parents=parents_strategy,
        tag=st.sampled_from(["a", "b", "c"]),
        low=st.integers(0, 9),
        high=st.integers(0, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_predicates(self, parents, tag, low, high):
        db = build_db(parents, [])
        lo, hi = min(low, high), max(low, high)
        query = Query(
            select=(ColumnRef("parent", "id"),),
            tables=(TableRef("parent"),),
            predicates=(
                Predicate(ColumnRef("parent", "tag"), Op.EQ, tag),
                Predicate(ColumnRef("parent", "score"), Op.BETWEEN, (lo, hi)),
            ),
        )
        assert execute(db, query).as_set() == execute_reference(db, query).as_set()

    @given(parents=parents_strategy, members=st.sets(st.integers(0, 9), max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_in_predicate(self, parents, members):
        db = build_db(parents, [])
        query = Query(
            select=(ColumnRef("parent", "id"), ColumnRef("parent", "tag")),
            tables=(TableRef("parent"),),
            predicates=(
                Predicate(
                    ColumnRef("parent", "score"), Op.IN, frozenset(members)
                ),
            ),
        )
        assert execute(db, query).as_set() == execute_reference(db, query).as_set()


class TestJoinEquivalence:
    @given(
        parents=parents_strategy,
        children=children_strategy,
        label=st.sampled_from(["x", "y", "z"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_way_join(self, parents, children, label):
        db = build_db(parents, children)
        query = Query(
            select=(ColumnRef("parent", "id"),),
            tables=(TableRef("parent"), TableRef("child")),
            joins=(
                JoinCondition(
                    ColumnRef("child", "parent_id"), ColumnRef("parent", "id")
                ),
            ),
            predicates=(Predicate(ColumnRef("child", "label"), Op.EQ, label),),
        )
        assert execute(db, query).as_set() == execute_reference(db, query).as_set()

    @given(parents=parents_strategy, children=children_strategy)
    @settings(max_examples=40, deadline=None)
    def test_self_join_aliases(self, parents, children):
        db = build_db(parents, children)
        query = Query(
            select=(ColumnRef("parent", "id"),),
            tables=(
                TableRef("parent"),
                TableRef("child", "c1"),
                TableRef("child", "c2"),
            ),
            joins=(
                JoinCondition(ColumnRef("c1", "parent_id"), ColumnRef("parent", "id")),
                JoinCondition(ColumnRef("c2", "parent_id"), ColumnRef("parent", "id")),
            ),
            predicates=(
                Predicate(ColumnRef("c1", "label"), Op.EQ, "x"),
                Predicate(ColumnRef("c2", "label"), Op.EQ, "y"),
            ),
        )
        assert execute(db, query).as_set() == execute_reference(db, query).as_set()


class TestAggregationEquivalence:
    @given(
        parents=parents_strategy,
        children=children_strategy,
        threshold=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_group_by_having(self, parents, children, threshold):
        db = build_db(parents, children)
        query = Query(
            select=(ColumnRef("parent", "id"),),
            tables=(TableRef("parent"), TableRef("child")),
            joins=(
                JoinCondition(
                    ColumnRef("child", "parent_id"), ColumnRef("parent", "id")
                ),
            ),
            group_by=(ColumnRef("parent", "id"),),
            having=HavingCount(Op.GE, threshold),
        )
        assert execute(db, query).as_set() == execute_reference(db, query).as_set()


class TestCrossProductEquivalence:
    @given(parents=parents_strategy, children=children_strategy)
    @settings(max_examples=30, deadline=None)
    def test_no_join_condition(self, parents, children):
        db = build_db(parents, children)
        query = Query(
            select=(ColumnRef("parent", "tag"), ColumnRef("child", "label")),
            tables=(TableRef("parent"), TableRef("child")),
        )
        assert execute(db, query).as_set() == execute_reference(db, query).as_set()
