"""Integration tests for the SPJ(A, intersect) executor on tiny databases."""

from __future__ import annotations

import pytest

from repro.relational.errors import QueryError
from repro.sql import (
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
    execute,
)


def col(table, column):
    return ColumnRef(table, column)


class TestSingleTable:
    def test_project_all(self, people_db):
        query = Query(select=(col("person", "name"),), tables=(TableRef("person"),))
        result = execute(people_db, query)
        assert len(result) == 6
        assert result.columns == ("person.name",)

    def test_eq_predicate(self, people_db):
        query = Query(
            select=(col("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(Predicate(col("person", "gender"), Op.EQ, "Male"),),
        )
        assert sorted(execute(people_db, query).single_column()) == [
            "Clint Eastwood",
            "Tom Cruise",
            "Tom Hanks",
        ]

    def test_between_predicate(self, people_db):
        query = Query(
            select=(col("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(Predicate(col("person", "age"), Op.BETWEEN, (50, 90)),),
        )
        assert len(execute(people_db, query)) == 5

    def test_conjunction(self, people_db):
        query = Query(
            select=(col("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(
                Predicate(col("person", "gender"), Op.EQ, "Male"),
                Predicate(col("person", "age"), Op.BETWEEN, (50, 90)),
            ),
        )
        assert len(execute(people_db, query)) == 3

    def test_in_predicate(self, people_db):
        query = Query(
            select=(col("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(
                Predicate(col("person", "age"), Op.IN, frozenset({29, 90})),
            ),
        )
        assert sorted(execute(people_db, query).single_column()) == [
            "Clint Eastwood",
            "Emma Stone",
        ]

    def test_empty_result(self, people_db):
        query = Query(
            select=(col("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(Predicate(col("person", "age"), Op.GE, 1000),),
        )
        assert len(execute(people_db, query)) == 0

    def test_distinct(self, people_db):
        query = Query(
            select=(col("person", "gender"),),
            tables=(TableRef("person"),),
        )
        assert sorted(execute(people_db, query).single_column()) == ["Female", "Male"]

    def test_no_distinct(self, people_db):
        query = Query(
            select=(col("person", "gender"),),
            tables=(TableRef("person"),),
            distinct=False,
        )
        assert len(execute(people_db, query)) == 6

    def test_unknown_column_raises(self, people_db):
        query = Query(
            select=(col("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(Predicate(col("person", "bogus"), Op.EQ, 1),),
        )
        with pytest.raises(QueryError):
            execute(people_db, query)

    def test_unknown_table_raises(self, people_db):
        query = Query(select=(col("movie", "title"),), tables=(TableRef("movie"),))
        with pytest.raises(QueryError):
            execute(people_db, query)


class TestJoins:
    def paper_q2(self):
        """Q2 from Example 1.1: data management academics."""
        return Query(
            select=(col("academics", "name"),),
            tables=(TableRef("academics"), TableRef("research")),
            joins=(
                JoinCondition(col("research", "aid"), col("academics", "id")),
            ),
            predicates=(
                Predicate(col("research", "interest"), Op.EQ, "data management"),
            ),
        )

    def test_key_fk_join_with_filter(self, academics_db):
        result = execute(academics_db, self.paper_q2())
        assert sorted(result.single_column()) == [
            "Dan Suciu",
            "Joseph Hellerstein",
            "Sam Madden",
        ]

    def test_join_without_filter(self, academics_db):
        query = Query(
            select=(col("academics", "name"),),
            tables=(TableRef("academics"), TableRef("research")),
            joins=(JoinCondition(col("research", "aid"), col("academics", "id")),),
        )
        # every academic has at least one interest; DISTINCT collapses dups
        assert len(execute(academics_db, query)) == 6

    def test_three_way_join(self, mini_movies_db):
        query = Query(
            select=(col("person", "name"),),
            tables=(
                TableRef("person"),
                TableRef("castinfo"),
                TableRef("movie"),
            ),
            joins=(
                JoinCondition(col("castinfo", "person_id"), col("person", "id")),
                JoinCondition(col("castinfo", "movie_id"), col("movie", "id")),
            ),
            predicates=(Predicate(col("movie", "title"), Op.EQ, "Big Fish"),),
        )
        assert sorted(execute(mini_movies_db, query).single_column()) == [
            "Ewan McGregor",
            "Jim Carrey",
            "Meryl Streep",
        ]

    def test_four_way_join_genre(self, mini_movies_db):
        query = Query(
            select=(col("person", "name"),),
            tables=(
                TableRef("person"),
                TableRef("castinfo"),
                TableRef("movietogenre"),
                TableRef("genre"),
            ),
            joins=(
                JoinCondition(col("castinfo", "person_id"), col("person", "id")),
                JoinCondition(
                    col("castinfo", "movie_id"), col("movietogenre", "movie_id")
                ),
                JoinCondition(col("movietogenre", "genre_id"), col("genre", "id")),
            ),
            predicates=(Predicate(col("genre", "name"), Op.EQ, "Action"),),
        )
        assert sorted(execute(mini_movies_db, query).single_column()) == [
            "Arnold Schwarzenegger",
            "Sylvester Stallone",
        ]

    def test_self_join_with_aliases(self, academics_db):
        # academics with both data management AND distributed systems
        query = Query(
            select=(col("academics", "name"),),
            tables=(
                TableRef("academics"),
                TableRef("research", "r1"),
                TableRef("research", "r2"),
            ),
            joins=(
                JoinCondition(col("r1", "aid"), col("academics", "id")),
                JoinCondition(col("r2", "aid"), col("academics", "id")),
            ),
            predicates=(
                Predicate(col("r1", "interest"), Op.EQ, "data management"),
                Predicate(col("r2", "interest"), Op.EQ, "distributed systems"),
            ),
        )
        assert sorted(execute(academics_db, query).single_column()) == [
            "Joseph Hellerstein",
            "Sam Madden",
        ]

    def test_cross_product_fallback(self, academics_db):
        query = Query(
            select=(col("academics", "name"), col("research", "interest")),
            tables=(TableRef("academics"), TableRef("research")),
        )
        assert len(execute(academics_db, query)) == 6 * 5  # distinct pairs


class TestAggregation:
    def test_group_by_having(self, academics_db):
        # academics with >= 2 research interests
        query = Query(
            select=(col("academics", "name"),),
            tables=(TableRef("academics"), TableRef("research")),
            joins=(JoinCondition(col("research", "aid"), col("academics", "id")),),
            group_by=(col("academics", "id"),),
            having=HavingCount(Op.GE, 2),
        )
        assert sorted(execute(academics_db, query).single_column()) == [
            "Joseph Hellerstein",
            "Sam Madden",
        ]

    def test_group_by_having_eq(self, academics_db):
        query = Query(
            select=(col("academics", "name"),),
            tables=(TableRef("academics"), TableRef("research")),
            joins=(JoinCondition(col("research", "aid"), col("academics", "id")),),
            group_by=(col("academics", "id"),),
            having=HavingCount(Op.EQ, 1),
        )
        assert len(execute(academics_db, query)) == 4

    def test_group_by_with_predicate(self, mini_movies_db):
        # persons with >= 2 comedy movies
        query = Query(
            select=(col("person", "name"),),
            tables=(
                TableRef("person"),
                TableRef("castinfo"),
                TableRef("movietogenre"),
                TableRef("genre"),
            ),
            joins=(
                JoinCondition(col("castinfo", "person_id"), col("person", "id")),
                JoinCondition(
                    col("castinfo", "movie_id"), col("movietogenre", "movie_id")
                ),
                JoinCondition(col("movietogenre", "genre_id"), col("genre", "id")),
            ),
            predicates=(Predicate(col("genre", "name"), Op.EQ, "Comedy"),),
            group_by=(col("person", "id"),),
            having=HavingCount(Op.GE, 2),
        )
        assert sorted(execute(mini_movies_db, query).single_column()) == [
            "Eddie Murphy",
            "Jim Carrey",
        ]


class TestIntersect:
    def block(self, interest):
        return Query(
            select=(col("academics", "name"),),
            tables=(TableRef("academics"), TableRef("research")),
            joins=(JoinCondition(col("research", "aid"), col("academics", "id")),),
            predicates=(Predicate(col("research", "interest"), Op.EQ, interest),),
        )

    def test_intersection(self, academics_db):
        query = IntersectQuery(
            (self.block("data management"), self.block("distributed systems"))
        )
        result = execute(academics_db, query)
        assert sorted(result.single_column()) == [
            "Joseph Hellerstein",
            "Sam Madden",
        ]

    def test_empty_intersection(self, academics_db):
        query = IntersectQuery(
            (self.block("algorithms"), self.block("data management"))
        )
        assert len(execute(academics_db, query)) == 0

    def test_three_way(self, academics_db):
        query = IntersectQuery(
            (
                self.block("data management"),
                self.block("distributed systems"),
                self.block("data management"),
            )
        )
        assert len(execute(academics_db, query)) == 2


class TestResultSet:
    def test_single_column_requires_one(self, academics_db):
        query = Query(
            select=(col("academics", "id"), col("academics", "name")),
            tables=(TableRef("academics"),),
        )
        result = execute(academics_db, query)
        with pytest.raises(QueryError):
            result.single_column()

    def test_as_set(self, academics_db):
        query = Query(
            select=(col("academics", "name"),), tables=(TableRef("academics"),)
        )
        result = execute(academics_db, query)
        assert ("Dan Suciu",) in result.as_set()
