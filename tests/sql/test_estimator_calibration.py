"""Estimator calibration battery over the synthetic corpus.

For every SPJ(A) block of every ground-truth intent across 100 synth
scenario seeds, the v2 estimator's safety interval must contain the true
block cardinality (coverage ≥ 99%), and the point estimates must stay
under pinned q-error ceilings.  Failures name the offending
(seed, intent, block) triples so a regression is reproducible with
``generate_scenario(default_scenario_config(seed))``.

The battery is the contract the misroute guard relies on: the guard
budget is anchored on ``hi``, so interval coverage here is what makes a
guard trip mean "the model was catastrophically wrong" rather than
"the model was a little noisy".
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.sql.ast import IntersectQuery
from repro.sql.engine import create_backend
from repro.sql.engine.dispatch import DispatchBackend
from repro.sql.estimator import BlockEstimate, q_error
from repro.synth import default_scenario_config, generate_scenario

SEEDS = range(100)

#: Fraction of blocks whose true cardinality must fall inside [lo, hi].
MIN_COVERAGE = 0.99

#: Ceilings on the point-estimate q-error distribution (smoothed, so
#: empty blocks stay finite).  Observed at pin time: median ≈ 1.95,
#: p95 ≈ 3.8, max ≈ 10.6 over 322 blocks.
MAX_MEDIAN_Q_ERROR = 2.5
MAX_P95_Q_ERROR = 6.0


def scenario_blocks(seed: int):
    """(intent index, block) pairs of one scenario's ground-truth intents."""
    scenario = generate_scenario(default_scenario_config(seed))
    out = []
    for intent in scenario.intents:
        query = intent.query
        blocks = query.blocks if isinstance(query, IntersectQuery) else [query]
        for block_index, block in enumerate(blocks):
            out.append((intent.index, block_index, block))
    return scenario, out


def run_battery() -> Tuple[int, List[tuple], List[float]]:
    """(total blocks, bound misses, q-errors) over all seeds."""
    total = 0
    misses: List[tuple] = []
    q_errors: List[float] = []
    for seed in SEEDS:
        scenario, blocks = scenario_blocks(seed)
        backend = create_backend("dispatch", scenario.db)
        assert isinstance(backend, DispatchBackend)
        try:
            for intent_index, block_index, block in blocks:
                estimate = backend.estimate_block(block)
                assert isinstance(estimate, BlockEstimate), (
                    f"seed {seed} intent {intent_index} block {block_index}: "
                    "estimator returned no estimate for a known-good block"
                )
                truth = len(backend.vectorized.execute(block).rows)
                total += 1
                q_errors.append(q_error(estimate.rows.point, truth))
                if not estimate.rows.contains(truth):
                    misses.append(
                        (
                            seed,
                            intent_index,
                            block_index,
                            estimate.rows.lo,
                            estimate.rows.hi,
                            truth,
                        )
                    )
        finally:
            backend.close()
    return total, misses, q_errors


@pytest.fixture(scope="module")
def battery():
    return run_battery()


def format_misses(misses) -> str:
    lines = [
        f"  seed={seed} intent={intent} block={block} "
        f"[{lo:.3f}, {hi:.3f}] true={truth}"
        for seed, intent, block, lo, hi, truth in misses
    ]
    return "\n".join(lines)


def test_corpus_is_substantial(battery):
    total, _, _ = battery
    assert total >= 200, f"only {total} blocks — corpus shrank?"


def test_interval_coverage(battery):
    total, misses, _ = battery
    coverage = 1.0 - len(misses) / total
    assert coverage >= MIN_COVERAGE, (
        f"coverage {coverage:.4f} < {MIN_COVERAGE} "
        f"({len(misses)}/{total} blocks outside their safety interval):\n"
        + format_misses(misses)
    )


def test_point_estimate_q_error(battery):
    _, _, q_errors = battery
    ordered = sorted(q_errors)
    median = ordered[len(ordered) // 2]
    p95 = ordered[int(len(ordered) * 0.95)]
    assert median <= MAX_MEDIAN_Q_ERROR, (
        f"median q-error {median:.3f} > {MAX_MEDIAN_Q_ERROR}"
    )
    assert p95 <= MAX_P95_Q_ERROR, f"p95 q-error {p95:.3f} > {MAX_P95_Q_ERROR}"


def test_estimates_are_deterministic():
    """Same seed, fresh backend: bit-identical intervals (the sampler
    seeds from column names, never process state)."""
    scenario, blocks = scenario_blocks(7)
    first = create_backend("dispatch", scenario.db)
    second = create_backend("dispatch", scenario.db)
    try:
        for _, _, block in blocks:
            a = first.estimate_block(block)
            b = second.estimate_block(block)
            assert (a.rows, a.work, a.features) == (b.rows, b.work, b.features)
    finally:
        first.close()
        second.close()
