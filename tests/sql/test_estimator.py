"""Estimator unit battery: interval arithmetic, column statistics,
stamped memoization, selectivity, and telemetry round-trips.

The per-stamp memoization tests pin the dispatch cardinality-refresh
fix: repeated mutations inside one batch bump the relation version many
times but trigger at most one statistics rebuild per column — at the
next read — and reads under an unchanged stamp never rescan.
"""

from __future__ import annotations

import io
import json
import math

import pytest

from repro.relational import (
    ColumnDef,
    ColumnType,
    Database,
    ForeignKey,
    TableSchema,
    column_statistics,
    sample_seed,
)
from repro.sql.ast import (
    ColumnRef,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
)
from repro.sql.estimator import (
    CLASS_EQ,
    CLASS_RANGE,
    CLASS_SCAN,
    CardinalityEstimator,
    DecisionRecord,
    Estimate,
    SelectivityModel,
    StatisticsProvider,
    TelemetryLog,
    conjoin,
    fraction_estimate,
    predicate_class,
    q_error,
    refit,
)

INT, TEXT = ColumnType.INT, ColumnType.TEXT


def build_db(rows: int = 50, *, nulls: int = 0) -> Database:
    """One ``item`` table: id (PK), grp cycling 0..4, val = id, tag text."""
    db = Database("est")
    db.create_table(
        TableSchema(
            "item",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("grp", INT),
                ColumnDef("val", INT),
                ColumnDef("tag", TEXT),
            ],
            primary_key="id",
        )
    )
    for i in range(rows):
        grp = None if i < nulls else i % 5
        db.insert("item", (i, grp, i, f"t{i % 3}"))
    return db


# ----------------------------------------------------------------------
# interval arithmetic
# ----------------------------------------------------------------------
class TestEstimate:
    def test_exact_is_degenerate(self):
        e = Estimate.exact(7)
        assert (e.lo, e.point, e.hi) == (7.0, 7.0, 7.0)

    def test_between_clamps_point(self):
        e = Estimate.between(2.0, 99.0, 5.0)
        assert (e.lo, e.point, e.hi) == (2.0, 5.0, 5.0)

    def test_invalid_ordering_raises(self):
        with pytest.raises(ValueError):
            Estimate(point=1.0, lo=2.0, hi=3.0)
        with pytest.raises(ValueError):
            Estimate(point=-1.0, lo=-1.0, hi=0.0)

    def test_product_and_sum(self):
        a = Estimate.between(1.0, 2.0, 3.0)
        b = Estimate.between(2.0, 4.0, 5.0)
        prod = a.times(b)
        assert (prod.lo, prod.point, prod.hi) == (2.0, 8.0, 15.0)
        total = a.plus(b)
        assert (total.lo, total.point, total.hi) == (3.0, 6.0, 8.0)

    def test_contains_tolerates_float_noise(self):
        # 0.07 * 100 = 7.000000000000001 — the exact estimate must still
        # contain the true integer cardinality.
        noisy = 0.07 * 100
        assert noisy != 7.0
        assert Estimate.exact(noisy).contains(7)

    def test_with_point_stays_in_bounds(self):
        e = Estimate.between(2.0, 3.0, 4.0)
        assert e.with_point(100.0).point == 4.0
        assert e.with_point(0.0).point == 2.0

    def test_conjoin_frechet_floor(self):
        sels = [Estimate.between(0.9, 0.9, 0.9), Estimate.between(0.8, 0.8, 0.8)]
        c = conjoin(sels)
        assert c.point == pytest.approx(0.72)
        assert c.hi == pytest.approx(0.8)  # min of the operands
        assert c.lo == pytest.approx(0.7)  # 0.9 + 0.8 - 1

    def test_conjoin_empty_is_one(self):
        assert conjoin([]).point == 1.0

    def test_fraction_estimate_exact(self):
        f = fraction_estimate(3, 10, exact=True)
        assert (f.lo, f.point, f.hi) == (0.3, 0.3, 0.3)

    def test_fraction_estimate_hoeffding_band(self):
        f = fraction_estimate(30, 100, exact=False)
        eps = math.sqrt(math.log(2.0 / 0.005) / 200.0)
        assert f.point == pytest.approx(0.3)
        assert f.lo == pytest.approx(max(0.0, 0.3 - eps))
        assert f.hi == pytest.approx(min(1.0, 0.3 + eps))
        # More trials tighten the band.
        g = fraction_estimate(300, 1000, exact=False)
        assert g.hi - g.lo < f.hi - f.lo

    def test_q_error_symmetric_and_smoothed(self):
        assert q_error(0.0, 0.0) == 1.0
        assert q_error(9.0, 4.0) == pytest.approx(2.0)
        assert q_error(4.0, 9.0) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# column statistics
# ----------------------------------------------------------------------
class TestColumnStatistics:
    def test_exact_small_column(self):
        db = build_db(rows=40)
        stats = column_statistics(db.relation("item"), "grp")
        assert stats.exact
        assert stats.rows == 40
        assert stats.non_null == 40
        assert stats.distinct == 5
        assert stats.max_multiplicity == 8
        assert stats.null_fraction == 0.0
        assert stats.value_counts is not None
        assert stats.value_counts[0] == 8

    def test_null_fraction(self):
        db = build_db(rows=40, nulls=10)
        stats = column_statistics(db.relation("item"), "grp")
        assert stats.non_null == 30
        assert stats.null_fraction == pytest.approx(0.25)

    def test_primary_key_is_unique(self):
        db = build_db(rows=40)
        stats = column_statistics(db.relation("item"), "id")
        assert stats.distinct == 40
        assert stats.max_multiplicity == 1
        assert stats.mean_multiplicity() == 1.0

    def test_sampled_large_column(self):
        db = build_db(rows=500)
        stats = column_statistics(
            db.relation("item"), "grp", sample_budget=100
        )
        assert not stats.exact
        assert stats.sample_size == 100
        assert stats.rows == 500
        # GEE-style scale-up lands in a plausible range for 5 values.
        assert 1 <= stats.distinct <= 500

    def test_sampling_is_deterministic(self):
        db = build_db(rows=500)
        a = column_statistics(db.relation("item"), "val", sample_budget=64)
        b = column_statistics(db.relation("item"), "val", sample_budget=64)
        assert a.sample == b.sample
        assert a.distinct == b.distinct

    def test_sample_seed_is_name_stable(self):
        assert sample_seed("item", "val") == sample_seed("item", "val")
        assert sample_seed("item", "val") != sample_seed("item", "grp")


# ----------------------------------------------------------------------
# stamped memoization (the dispatch cardinality-refresh fix)
# ----------------------------------------------------------------------
class TestStatisticsProvider:
    def test_repeated_reads_hit_the_memo(self):
        db = build_db()
        provider = StatisticsProvider(db)
        for _ in range(5):
            provider.column("item", "grp")
            provider.cardinality("item")
        counters = provider.counters()
        assert counters["stats_rebuilds"] == 1
        assert counters["cardinality_refreshes"] == 1

    def test_many_mutations_one_rebuild(self):
        """A burst of mutations bumps the version per insert but costs at
        most one rescan per column — at the next read."""
        db = build_db(rows=20)
        provider = StatisticsProvider(db)
        provider.column("item", "grp")
        assert provider.counters()["stats_rebuilds"] == 1
        for i in range(20, 40):
            db.insert("item", (i, i % 5, i, f"t{i % 3}"))
        # The burst itself triggered nothing.
        assert provider.counters()["stats_rebuilds"] == 1
        provider.column("item", "grp")
        provider.column("item", "grp")
        assert provider.counters()["stats_rebuilds"] == 2

    def test_mutating_one_table_keeps_the_other_memo(self):
        db = build_db(rows=20)
        db.create_table(
            TableSchema(
                "other",
                [ColumnDef("id", INT, nullable=False), ColumnDef("x", INT)],
                primary_key="id",
            )
        )
        db.insert("other", (1, 10))
        provider = StatisticsProvider(db)
        provider.column("item", "grp")
        provider.column("other", "x")
        db.insert("other", (2, 20))
        provider.column("item", "grp")  # untouched table: memo hit
        assert provider.counters()["stats_rebuilds"] == 2
        provider.column("other", "x")  # mutated table: one rebuild
        assert provider.counters()["stats_rebuilds"] == 3

    def test_cached_column_never_rebuilds(self):
        db = build_db(rows=20)
        provider = StatisticsProvider(db)
        assert provider.cached_column("item", "grp") is None
        provider.column("item", "grp")
        assert provider.cached_column("item", "grp") is not None
        db.insert("item", (99, 4, 99, "t0"))
        assert provider.cached_column("item", "grp") is None
        assert provider.counters()["stats_rebuilds"] == 1


# ----------------------------------------------------------------------
# selectivity and block estimation
# ----------------------------------------------------------------------
def item_query(*preds: Predicate, distinct: bool = False) -> Query:
    return Query(
        select=(ColumnRef("item", "tag"),),
        tables=(TableRef("item"),),
        predicates=tuple(preds),
        distinct=distinct,
    )


class TestCardinalityEstimator:
    def test_exact_eq_selectivity(self):
        db = build_db(rows=40)
        est = CardinalityEstimator(db)
        pred = Predicate(ColumnRef("item", "grp"), Op.EQ, 0)
        sel = est.predicate_selectivity("item", pred)
        assert sel.point == pytest.approx(8 / 40)
        assert sel.lo == sel.hi == sel.point  # exact stats: degenerate

    def test_range_selectivity_brackets_truth(self):
        db = build_db(rows=600)
        est = CardinalityEstimator(db, sample_budget=128)
        pred = Predicate(ColumnRef("item", "val"), Op.GE, 300)
        sel = est.predicate_selectivity("item", pred)
        assert sel.lo <= 0.5 <= sel.hi

    def test_nulls_never_match(self):
        db = build_db(rows=40, nulls=20)
        est = CardinalityEstimator(db)
        pred = Predicate(ColumnRef("item", "grp"), Op.GE, 0)
        sel = est.predicate_selectivity("item", pred)
        assert sel.hi <= 0.5 + 1e-9

    def test_block_estimate_contains_truth(self):
        db = build_db(rows=40)
        est = CardinalityEstimator(db)
        block = item_query(Predicate(ColumnRef("item", "grp"), Op.EQ, 0))
        out = est.estimate_block(block)
        assert out is not None
        assert out.block_class == CLASS_EQ
        assert out.rows.contains(8)
        assert out.work.point >= out.rows.point

    def test_unknown_table_returns_none(self):
        db = build_db()
        est = CardinalityEstimator(db)
        q = Query(
            select=(ColumnRef("ghost", "x"),),
            tables=(TableRef("ghost"),),
        )
        assert est.estimate_block(q) is None

    def test_unknown_column_returns_none(self):
        db = build_db()
        est = CardinalityEstimator(db)
        q = item_query(Predicate(ColumnRef("item", "ghost"), Op.EQ, 1))
        assert est.estimate_block(q) is None

    def test_join_fanout_bounds_star(self):
        db = Database("star")
        db.create_table(
            TableSchema(
                "person",
                [ColumnDef("id", INT, nullable=False)],
                primary_key="id",
            )
        )
        db.create_table(
            TableSchema(
                "fact",
                [
                    ColumnDef("id", INT, nullable=False),
                    ColumnDef("pid", INT),
                ],
                primary_key="id",
                foreign_keys=[ForeignKey("pid", "person", "id")],
            )
        )
        fid = 0
        for pid in range(1, 11):
            db.insert("person", (pid,))
            for _ in range(3):
                fid += 1
                db.insert("fact", (fid, pid))
        est = CardinalityEstimator(db)
        q = Query(
            select=(ColumnRef("person", "id"),),
            tables=(TableRef("person"), TableRef("fact")),
            joins=(
                JoinCondition(
                    ColumnRef("fact", "pid"), ColumnRef("person", "id")
                ),
            ),
        )
        out = est.estimate_block(q)
        assert out is not None
        # The block is DISTINCT over person.id: 10 output rows from 30
        # join bindings — the distinct cap bounds the output, the work
        # proxy still accounts for the full binding stream.
        assert out.rows.contains(10)
        assert out.work.hi >= 30

    def test_model_coefficient_moves_point_inside_bounds(self):
        db = build_db(rows=600)
        est = CardinalityEstimator(db, sample_budget=64)
        block = item_query(Predicate(ColumnRef("item", "val"), Op.GE, 300))
        base = est.estimate_block(block)
        est.set_model(SelectivityModel(range=4.0))
        scaled = est.estimate_block(block)
        assert scaled.rows.lo == base.rows.lo
        assert scaled.rows.hi == base.rows.hi
        assert scaled.rows.point >= base.rows.point
        assert scaled.rows.lo <= scaled.rows.point <= scaled.rows.hi

    def test_predicate_class(self):
        eq = Predicate(ColumnRef("item", "grp"), Op.EQ, 0)
        ge = Predicate(ColumnRef("item", "val"), Op.GE, 5)
        assert predicate_class([eq, ge]) == CLASS_EQ
        assert predicate_class([ge]) == CLASS_RANGE
        assert predicate_class([]) == CLASS_SCAN


# ----------------------------------------------------------------------
# telemetry: JSON-lines round trip + deterministic refit
# ----------------------------------------------------------------------
def make_record(cls: str, estimate: float, actual: int) -> DecisionRecord:
    return DecisionRecord(
        route="interpreted",
        outcome="ok",
        estimate=estimate,
        lo=0.0,
        hi=max(estimate, float(actual)) * 2 + 1,
        work=estimate,
        actual=actual,
        features={"class": cls, "aliases": 1},
    )


class TestTelemetry:
    def test_json_lines_round_trip(self):
        log = TelemetryLog(capacity=8)
        log.record(make_record(CLASS_EQ, 3.0, 5))
        log.record(make_record(CLASS_RANGE, 10.0, 2))
        buf = io.StringIO()
        assert log.dump(buf) == 2
        loaded = TelemetryLog.load(io.StringIO(buf.getvalue()))
        assert loaded == log.records()
        # Each line is standalone JSON with stable key order.
        lines = buf.getvalue().splitlines()
        assert all(json.loads(line) for line in lines)
        assert lines[0] == log.records()[0].to_json()

    def test_ring_buffer_caps_retention(self):
        log = TelemetryLog(capacity=3)
        for i in range(10):
            log.record(make_record(CLASS_EQ, float(i), i))
        assert len(log) == 3
        assert log.recorded == 10
        assert [r.estimate for r in log.records()] == [7.0, 8.0, 9.0]

    def test_refit_is_deterministic(self):
        records = [
            make_record(CLASS_EQ, 1.0, 9),
            make_record(CLASS_EQ, 2.0, 17),
            make_record(CLASS_RANGE, 100.0, 10),
        ]
        first = refit(records)
        second = refit(records)
        assert first == second
        assert first.to_dict() == second.to_dict()

    def test_refit_replayed_from_disk_matches(self, tmp_path):
        log = TelemetryLog()
        for i in range(20):
            log.record(make_record(CLASS_EQ, float(i + 1), (i + 1) * 3))
            log.record(make_record(CLASS_SCAN, 50.0, 40 + i))
        path = str(tmp_path / "decisions.jsonl")
        log.dump(path)
        replayed = TelemetryLog.load(path)
        assert refit(replayed) == refit(log.records())

    def test_refit_direction_and_untouched_classes(self):
        # Systematic 4x underestimation of eq blocks.
        records = [make_record(CLASS_EQ, 4.0, 19) for _ in range(10)]
        model = refit(records)
        assert model.eq == pytest.approx(4.0)
        assert model.range == 1.0 and model.scan == 1.0

    def test_refit_corrections_are_clamped(self):
        records = [make_record(CLASS_EQ, 0.0, 10**9) for _ in range(5)]
        model = refit(records)
        assert model.eq <= 16.0
        # And composing refits can never leave the model bounds.
        for _ in range(10):
            model = refit(records, model)
        assert model.eq <= 64.0

    def test_within_bounds_tolerates_float_noise(self):
        record = DecisionRecord(
            route="interpreted",
            outcome="ok",
            estimate=(7 / 40) * 40,
            lo=(7 / 40) * 40,
            hi=(7 / 40) * 40,
            work=7.0,
            actual=7,
            features={"class": CLASS_EQ, "aliases": 1},
        )
        assert record.within_bounds

    def test_model_dict_round_trip(self):
        model = SelectivityModel(eq=2.0, range=0.5, scan=1.5)
        assert SelectivityModel.from_dict(model.to_dict()) == model


class TestDispatchTelemetryLoop:
    """End to end: dispatch decisions -> persisted log -> refit."""

    def test_recorded_log_replays_to_identical_model(self, tmp_path):
        from repro.sql.engine.dispatch import DispatchBackend

        db = build_db(rows=200)
        backend = DispatchBackend(db)
        try:
            for grp in range(5):
                backend.execute(
                    item_query(Predicate(ColumnRef("item", "grp"), Op.EQ, grp))
                )
            backend.execute(
                item_query(Predicate(ColumnRef("item", "val"), Op.GE, 100))
            )
            assert len(backend.telemetry) == 6
            path = str(tmp_path / "decisions.jsonl")
            backend.telemetry.dump(path)

            live = backend.refit()
            replayed_once = refit(TelemetryLog.load(path))
            replayed_twice = refit(TelemetryLog.load(path))
            assert replayed_once == replayed_twice == live
            # The fitted model is installed on the estimator.
            assert backend.estimator.model is live
        finally:
            backend.close()

    def test_refit_requires_v2(self):
        from repro.sql.engine.dispatch import DispatchBackend

        backend = DispatchBackend(build_db(), use_estimator=False)
        try:
            with pytest.raises(RuntimeError):
                backend.refit()
        finally:
            backend.close()
