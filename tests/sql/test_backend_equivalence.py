"""Cross-backend equivalence: all engines must return identical results.

A fixed suite of SPJ / SPJA / intersect queries runs on every registered
backend over the shared fixture databases; result sets must match the
interpreted reference engine exactly.  A hypothesis sweep additionally
checks the vectorized and SQLite engines against the brute-force oracle
on randomised databases containing NULLs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import ColumnDef, ColumnType, Database, ForeignKey, TableSchema
from repro.sql import (
    BACKENDS,
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
    available_backends,
    create_backend,
)
from repro.sql.engine.interpreted import InterpretedBackend
from repro.sql.reference import execute_reference

INT = ColumnType.INT
TEXT = ColumnType.TEXT

BACKEND_NAMES = available_backends()

#: The equivalence sweep covers every registered engine plus both of the
#: dispatch router's cost models (v2 estimator-driven is the default;
#: ``dispatch-v1`` pins the fixed-heuristic baseline).
EQUIVALENCE_BACKENDS = BACKEND_NAMES + ["dispatch-v1"]


def make_backend(name, database):
    if name == "dispatch-v1":
        return create_backend("dispatch", database, use_estimator=False)
    return create_backend(name, database)


def _ref(alias, column):
    return ColumnRef(alias, column)


def suite_queries():
    """SPJ / SPJAI queries with known behaviour over mini_movies_db."""
    person = TableRef("person", "p")
    movie = TableRef("movie", "m")
    cast = TableRef("castinfo", "c")
    mtg = TableRef("movietogenre", "mg")
    genre = TableRef("genre", "g")
    cast_join = JoinCondition(_ref("c", "person_id"), _ref("p", "id"))
    movie_join = JoinCondition(_ref("c", "movie_id"), _ref("m", "id"))
    genre_movie_join = JoinCondition(_ref("mg", "movie_id"), _ref("m", "id"))
    genre_join = JoinCondition(_ref("mg", "genre_id"), _ref("g", "id"))
    return [
        # projection only
        Query(select=(_ref("p", "name"),), tables=(person,)),
        # single-table selections: EQ, ranges, IN, conjunctions
        Query(
            select=(_ref("p", "name"),),
            tables=(person,),
            predicates=(Predicate(_ref("p", "gender"), Op.EQ, "Male"),),
        ),
        Query(
            select=(_ref("p", "id"), _ref("p", "name")),
            tables=(person,),
            predicates=(Predicate(_ref("p", "birth_year"), Op.GE, 1950),),
        ),
        Query(
            select=(_ref("p", "name"),),
            tables=(person,),
            predicates=(
                Predicate(_ref("p", "birth_year"), Op.BETWEEN, (1946, 1961)),
                Predicate(_ref("p", "gender"), Op.EQ, "Male"),
            ),
        ),
        Query(
            select=(_ref("p", "name"),),
            tables=(person,),
            predicates=(
                Predicate(
                    _ref("p", "name"),
                    Op.IN,
                    frozenset(["Jim Carrey", "Meryl Streep", "Nobody"]),
                ),
            ),
        ),
        # empty result
        Query(
            select=(_ref("p", "name"),),
            tables=(person,),
            predicates=(Predicate(_ref("p", "gender"), Op.EQ, "Unknown"),),
        ),
        # two-way and five-way joins
        Query(
            select=(_ref("p", "name"), _ref("m", "title")),
            tables=(person, cast, movie),
            joins=(cast_join, movie_join),
        ),
        Query(
            select=(_ref("p", "name"), _ref("g", "name")),
            tables=(person, cast, movie, mtg, genre),
            joins=(cast_join, movie_join, genre_movie_join, genre_join),
            predicates=(Predicate(_ref("g", "name"), Op.EQ, "Comedy"),),
        ),
        # cross product (no join condition)
        Query(
            select=(_ref("g", "name"), _ref("p", "gender")),
            tables=(genre, person),
        ),
        # aggregation with HAVING
        Query(
            select=(_ref("p", "id"),),
            tables=(person, cast),
            joins=(cast_join,),
            group_by=(_ref("p", "id"),),
            having=HavingCount(Op.GE, 2),
        ),
        Query(
            select=(_ref("p", "id"), _ref("p", "name")),
            tables=(person, cast),
            joins=(cast_join,),
            group_by=(_ref("p", "id"), _ref("p", "name")),
            having=HavingCount(Op.EQ, 1),
        ),
        # intersect of aggregate blocks (the paper's SPJAI form)
        IntersectQuery(
            (
                Query(
                    select=(_ref("p", "id"),),
                    tables=(person, cast),
                    joins=(cast_join,),
                    group_by=(_ref("p", "id"),),
                    having=HavingCount(Op.GE, 1),
                ),
                Query(
                    select=(_ref("p", "id"),),
                    tables=(person,),
                    predicates=(Predicate(_ref("p", "gender"), Op.EQ, "Male"),),
                ),
            )
        ),
        # non-distinct projection
        Query(
            select=(_ref("g", "name"),),
            tables=(mtg, genre),
            joins=(genre_join,),
            distinct=False,
        ),
    ]


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_suite_matches_interpreted(self, backend_name, mini_movies_db):
        reference = InterpretedBackend(mini_movies_db)
        backend = make_backend(backend_name, mini_movies_db)
        for query in suite_queries():
            expected = reference.execute(query)
            actual = backend.execute(query)
            assert actual.columns == expected.columns
            assert actual.as_set() == expected.as_set(), query
            if not getattr(query, "distinct", True):
                # multiset semantics: row counts must also agree
                assert len(actual) == len(expected)

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_results_reflect_mutations(self, backend_name, people_db):
        backend = make_backend(backend_name, people_db)
        query = Query(
            select=(_ref("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(Predicate(_ref("person", "gender"), Op.EQ, "Female"),),
        )
        before = len(backend.execute(query))
        people_db.insert("person", (100, "Ada Lovelace", "Female", 36))
        after = len(backend.execute(query))
        assert after == before + 1

    @pytest.mark.parametrize("backend_name", EQUIVALENCE_BACKENDS)
    def test_type_mismatched_constants(self, backend_name, people_db):
        """SQLite affinity must not coerce '50' to match an INT column,
        and mixed-type IN lists keep Python equality semantics."""
        backend = make_backend(backend_name, people_db)
        string_on_int = Query(
            select=(_ref("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(Predicate(_ref("person", "age"), Op.EQ, "50"),),
        )
        assert len(backend.execute(string_on_int)) == 0
        mixed_in = Query(
            select=(_ref("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(
                Predicate(
                    _ref("person", "age"), Op.IN, frozenset([50, "60"])
                ),
            ),
        )
        assert backend.execute(mixed_in).as_set() == {
            ("Tom Cruise",),
            ("Julia Roberts",),
        }

    def test_all_backends_registered(self):
        assert set(BACKENDS) == {
            "interpreted",
            "vectorized",
            "sqlite",
            "dispatch",
            "sharded",
        }

    def test_dispatch_matches_vectorized(self, mini_movies_db):
        """The router must be invisible: identical results to the
        vectorized engine on the whole battery, with both engines
        actually exercised across it."""
        from repro.sql.engine.dispatch import DispatchBackend
        from repro.sql.engine.vectorized import VectorizedBackend

        dispatch = DispatchBackend(mini_movies_db, small_work_rows=8)
        vectorized = VectorizedBackend(mini_movies_db)
        for query in suite_queries():
            assert (
                dispatch.execute(query).as_set()
                == vectorized.execute(query).as_set()
            ), query
        decisions = dispatch.stats()
        assert decisions["interpreted"] > 0
        assert decisions["vectorized"] > 0

    def test_dispatch_routes_point_lookups_to_interpreted(self, people_db):
        from repro.sql.engine.dispatch import DispatchBackend

        dispatch = DispatchBackend(people_db, small_work_rows=0)
        point = Query(
            select=(_ref("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(Predicate(_ref("person", "id"), Op.EQ, 1),),
        )
        scan = Query(select=(_ref("person", "name"),), tables=(TableRef("person"),))
        assert dispatch.choose(point).name == "vectorized"  # threshold 0
        dispatch.small_work_rows = 4
        assert dispatch.choose(point).name == "interpreted"
        assert dispatch.choose(scan).name == "vectorized"


# ----------------------------------------------------------------------
# randomized differential testing against the brute-force oracle
# ----------------------------------------------------------------------

def build_db(parents, children):
    """parent(id, tag, score) and child(id, parent_id, label) with NULLs."""
    db = Database("prop")
    db.create_table(
        TableSchema(
            "parent",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("tag", TEXT),
                ColumnDef("score", INT),
            ],
            primary_key="id",
        )
    )
    db.create_table(
        TableSchema(
            "child",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("parent_id", INT),
                ColumnDef("label", TEXT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("parent_id", "parent", "id")],
        )
    )
    db.bulk_load(
        "parent", [(i, tag, score) for i, (tag, score) in enumerate(parents)]
    )
    db.bulk_load(
        "child",
        [
            (
                i,
                None if pid is None else pid % max(1, len(parents)),
                label,
            )
            for i, (pid, label) in enumerate(children)
        ],
    )
    return db


parents_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
        st.one_of(st.none(), st.integers(0, 9)),
    ),
    min_size=1,
    max_size=6,
)
children_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(0, 5)),
        st.sampled_from(["x", "y", "z"]),
    ),
    max_size=8,
)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("backend_name", ["vectorized", "sqlite"])
    @given(parents=parents_strategy, children=children_strategy)
    @settings(max_examples=40, deadline=None)
    def test_join_with_nulls(self, backend_name, parents, children):
        db = build_db(parents, children)
        query = Query(
            select=(_ref("parent", "tag"), _ref("child", "label")),
            tables=(TableRef("parent"), TableRef("child")),
            joins=(
                JoinCondition(_ref("child", "parent_id"), _ref("parent", "id")),
            ),
        )
        backend = create_backend(backend_name, db)
        assert backend.execute(query).as_set() == execute_reference(db, query).as_set()

    @pytest.mark.parametrize("backend_name", ["vectorized", "sqlite"])
    @given(
        parents=parents_strategy,
        low=st.integers(0, 9),
        high=st.integers(0, 9),
        threshold=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_aggregate_with_nulls(self, backend_name, parents, low, high, threshold):
        db = build_db(parents, [(i, "x") for i in range(4)])
        lo, hi = min(low, high), max(low, high)
        query = Query(
            select=(_ref("parent", "id"),),
            tables=(TableRef("parent"), TableRef("child")),
            joins=(
                JoinCondition(_ref("child", "parent_id"), _ref("parent", "id")),
            ),
            predicates=(
                Predicate(_ref("parent", "score"), Op.BETWEEN, (lo, hi)),
            ),
            group_by=(_ref("parent", "id"),),
            having=HavingCount(Op.GE, threshold),
        )
        backend = create_backend(backend_name, db)
        assert backend.execute(query).as_set() == execute_reference(db, query).as_set()
