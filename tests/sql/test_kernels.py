"""Edge-case unit tests for the numpy join/grouping kernels.

The kernels back every vectorized (and sharded) execution; these tests
pin the corners the equivalence battery reaches only incidentally:
empty probe/build sides, all-NULL masks, single-element joins, the
``combine_codes`` int64-overflow guard, and the reusable
:class:`~repro.sql.engine.kernels.JoinBuild` matching the one-shot join
paths hit for hit.
"""

from __future__ import annotations

import numpy as np

from repro.sql.engine.kernels import (
    JoinBuild,
    combine_codes,
    equi_join,
    factorize,
    hash_join,
    join_sorted,
)


class TestFactorize:
    def test_empty_values(self):
        codes, uniques = factorize(np.empty(0, dtype=np.int64))
        assert codes.size == 0
        assert uniques == []

    def test_all_null_mask(self):
        values = np.array([10, 20, 30], dtype=np.int64)
        mask = np.zeros(3, dtype=bool)
        codes, uniques = factorize(values, mask)
        assert codes.tolist() == [-1, -1, -1]
        assert uniques == []

    def test_partial_mask_null_codes(self):
        values = np.array([5, 7, 5, 9], dtype=np.int64)
        mask = np.array([True, False, True, True])
        codes, uniques = factorize(values, mask)
        assert uniques == [5, 9]  # ascending
        assert codes.tolist() == [0, -1, 0, 1]

    def test_sortable_values_ascending_uniques(self):
        codes, uniques = factorize(np.array([3, 1, 2, 1], dtype=np.int64))
        assert uniques == [1, 2, 3]
        assert codes.tolist() == [2, 0, 1, 0]

    def test_unsortable_values_first_seen_order(self):
        values = np.array(["b", 1, "b", None], dtype=object)
        codes, uniques = factorize(values)
        assert uniques == ["b", 1, None]
        assert codes.tolist() == [0, 1, 0, 2]

    def test_single_element(self):
        codes, uniques = factorize(np.array([42], dtype=np.int64))
        assert codes.tolist() == [0]
        assert uniques == [42]


class TestCombineCodes:
    def test_empty_parts(self):
        assert combine_codes([]) is None

    def test_single_part_shifts_null_to_zero(self):
        codes = np.array([-1, 0, 2], dtype=np.int64)
        combined = combine_codes([(codes, 3)])
        assert combined.tolist() == [0, 1, 3]

    def test_composite_keys_are_injective(self):
        a = np.array([0, 0, 1, 1, -1], dtype=np.int64)
        b = np.array([0, 1, 0, 1, 0], dtype=np.int64)
        combined = combine_codes([(a, 2), (b, 2)])
        assert len(set(combined.tolist())) == 5

    def test_overflow_near_int64_returns_none(self):
        # Three 21-bit columns: 63 bits of key space > the 62-bit guard.
        k = (1 << 21) - 1
        codes = np.array([0, 1], dtype=np.int64)
        assert combine_codes([(codes, k)] * 3) is None

    def test_at_boundary_still_combines(self):
        # Two 31-bit columns: exactly 62 bits, the widest allowed key.
        k = (1 << 31) - 1
        codes = np.array([0, k - 1], dtype=np.int64)
        combined = combine_codes([(codes, k), (codes, k)])
        assert combined is not None
        assert len(set(combined.tolist())) == 2


class TestJoinSorted:
    def test_empty_probe(self):
        probe_idx, pos = join_sorted(
            np.empty(0, dtype=np.int64), np.array([1, 2], dtype=np.int64)
        )
        assert probe_idx.size == 0 and pos.size == 0

    def test_empty_build(self):
        probe_idx, pos = join_sorted(
            np.array([1], dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert probe_idx.size == 0 and pos.size == 0

    def test_single_element_match(self):
        probe_idx, pos = join_sorted(
            np.array([7], dtype=np.int64), np.array([7], dtype=np.int64)
        )
        assert probe_idx.tolist() == [0]
        assert pos.tolist() == [0]

    def test_single_element_miss(self):
        probe_idx, pos = join_sorted(
            np.array([7], dtype=np.int64), np.array([8], dtype=np.int64)
        )
        assert probe_idx.size == 0 and pos.size == 0

    def test_duplicate_build_keys_expand(self):
        probe = np.array([5, 6, 5], dtype=np.int64)
        build = np.array([5, 5, 6], dtype=np.int64)
        probe_idx, pos = join_sorted(probe, build)
        # probe order preserved; both build positions per duplicate key
        assert probe_idx.tolist() == [0, 0, 1, 2, 2]
        assert pos.tolist() == [0, 1, 2, 0, 1]

    def test_mixed_numeric_dtypes_promote(self):
        probe_idx, pos = join_sorted(
            np.array([1.0, 2.5], dtype=np.float64),
            np.array([1, 2], dtype=np.int64),
        )
        assert probe_idx.tolist() == [0]
        assert pos.tolist() == [0]


class TestEquiJoin:
    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        keys = np.array([1], dtype=np.int64)
        for probe, build in ((empty, keys), (keys, empty), (empty, empty)):
            probe_idx, build_idx = equi_join(probe, build)
            assert probe_idx.size == 0 and build_idx.size == 0

    def test_single_element_join(self):
        probe_idx, build_idx = equi_join(
            np.array([3], dtype=np.int64), np.array([3], dtype=np.int64)
        )
        assert probe_idx.tolist() == [0]
        assert build_idx.tolist() == [0]

    def test_matches_point_into_unsorted_build(self):
        probe = np.array([2, 9], dtype=np.int64)
        build = np.array([9, 2, 2], dtype=np.int64)
        probe_idx, build_idx = equi_join(probe, build)
        assert probe.take(probe_idx).tolist() == build.take(build_idx).tolist()
        assert sorted(zip(probe_idx.tolist(), build_idx.tolist())) == [
            (0, 1),
            (0, 2),
            (1, 0),
        ]

    def test_object_dtype_falls_back_to_hash(self):
        probe = np.array(["x", "y", "x"], dtype=object)
        build = np.array(["x", "z", "x"], dtype=object)
        got = equi_join(probe, build)
        want = hash_join(probe, build)
        assert got[0].tolist() == want[0].tolist()
        assert got[1].tolist() == want[1].tolist()


class TestJoinBuild:
    def test_empty_build_side(self):
        build = JoinBuild(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        probe_idx, rids = build.probe(np.array([1], dtype=np.int64))
        assert probe_idx.size == 0 and rids.size == 0

    def test_empty_probe(self):
        build = JoinBuild(
            np.array([1, 2], dtype=np.int64), np.array([0, 1], dtype=np.int64)
        )
        probe_idx, rids = build.probe(np.empty(0, dtype=np.int64))
        assert probe_idx.size == 0 and rids.size == 0

    def test_sorted_path_matches_equi_join(self):
        keys = np.array([4, 1, 4, 2], dtype=np.int64)
        rids = np.arange(4, dtype=np.int64)
        probe = np.array([4, 2, 3], dtype=np.int64)
        probe_idx, build_rids = JoinBuild(keys, rids).probe(probe)
        want_idx, want_pos = equi_join(probe, keys)
        assert probe_idx.tolist() == want_idx.tolist()
        assert build_rids.tolist() == rids[want_pos].tolist()

    def test_hash_path_matches_hash_join(self):
        keys = np.array(["a", "b", "a"], dtype=object)
        rids = np.array([10, 11, 12], dtype=np.int64)
        probe = np.array(["a", "c", "b"], dtype=object)
        probe_idx, build_rids = JoinBuild(keys, rids).probe(probe)
        want_idx, want_pos = hash_join(probe, keys)
        assert probe_idx.tolist() == want_idx.tolist()
        assert build_rids.tolist() == rids[want_pos].tolist()

    def test_presorted_view_skips_resort(self):
        # keys already ascending (a relation's sorted view): the build
        # must trust them as-is and map hits through the given row ids.
        keys = np.array([1, 2, 2, 5], dtype=np.int64)
        rids = np.array([3, 0, 2, 1], dtype=np.int64)
        build = JoinBuild(keys, rids, presorted=True)
        probe_idx, build_rids = build.probe(np.array([2], dtype=np.int64))
        assert probe_idx.tolist() == [0, 0]
        assert build_rids.tolist() == [0, 2]

    def test_probe_reuse_is_stable(self):
        keys = np.array([1, 1, 2], dtype=np.int64)
        rids = np.arange(3, dtype=np.int64)
        build = JoinBuild(keys, rids)
        first = build.probe(np.array([1, 2], dtype=np.int64))
        second = build.probe(np.array([1, 2], dtype=np.int64))
        assert first[0].tolist() == second[0].tolist()
        assert first[1].tolist() == second[1].tolist()
