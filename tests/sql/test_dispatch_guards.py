"""Misroute guard regression battery.

A forced misestimate — the sampler monkeypatched to swear a hot value
never occurs — sends a big block down the interpreted path with a tiny
guard budget.  The guard must abort mid-flight, reroute to the safe
engine, return a byte-identical result, and count the event in
``guard_trips`` — visible all the way up through ``session.stats()``,
the serving tier's GET /stats snapshot, and the CLI ``--stats`` report.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import SquidConfig, SquidSystem
from repro.datasets import adult
from repro.relational import ColumnDef, ColumnType, Database, TableSchema
from repro.relational.statistics import ColumnStatistics
from repro.sql.ast import ColumnRef, Op, Predicate, Query, TableRef
from repro.sql.engine.dispatch import DispatchBackend
from repro.sql.estimator import (
    OUTCOME_GUARD_TRIP,
    Estimate,
    MisrouteAbort,
    RowBudgetGuard,
    StatisticsProvider,
    guard_budget,
)

INT, TEXT = ColumnType.INT, ColumnType.TEXT

ROWS = 200
HOT = "hot"


def build_hot_db() -> Database:
    """200 rows, every one tagged ``hot`` — the worst case for an
    estimator that believes the tag never occurs."""
    db = Database("hot")
    db.create_table(
        TableSchema(
            "item",
            [
                ColumnDef("id", INT, nullable=False),
                ColumnDef("tag", TEXT),
                ColumnDef("val", INT),
            ],
            primary_key="id",
        )
    )
    for i in range(ROWS):
        db.insert("item", (i, HOT, i))
    return db


def hot_query() -> Query:
    return Query(
        select=(ColumnRef("item", "val"),),
        tables=(TableRef("item"),),
        predicates=(Predicate(ColumnRef("item", "tag"), Op.EQ, HOT),),
    )


def lying_column_stats(self, table: str, column: str) -> ColumnStatistics:
    """Exact-looking statistics claiming ``hot`` does not exist."""
    relation = self.db.relation(table)
    return ColumnStatistics(
        table=table,
        column=column,
        rows=len(relation),
        non_null=len(relation),
        distinct=1,
        max_multiplicity=len(relation),
        min_value=None,
        max_value=None,
        histogram=None,
        sample=("cold",) * len(relation),
        value_counts={"cold": len(relation)},
        exact=True,
    )


@pytest.fixture
def misled_backend(monkeypatch):
    """Dispatch with the sampler forced into a catastrophic misestimate
    and a tight guard (budget = small_work_rows × factor = 4)."""
    monkeypatch.setattr(StatisticsProvider, "column", lying_column_stats)
    db = build_hot_db()
    backend = DispatchBackend(db, small_work_rows=4, guard_factor=1.0)
    yield backend
    backend.close()


class TestRowBudgetGuard:
    def test_trips_past_budget(self):
        guard = RowBudgetGuard(10)
        guard.observe(10)
        with pytest.raises(MisrouteAbort) as err:
            guard.observe(11)
        assert err.value.observed == 11
        assert err.value.budget == 10

    def test_budget_anchors_on_upper_bounds(self):
        from repro.sql.estimator import BlockEstimate

        estimate = BlockEstimate(
            rows=Estimate.between(0, 5, 50),
            work=Estimate.between(0, 8, 30),
            features={"class": "eq", "aliases": 1},
        )
        assert guard_budget(estimate, 2.0, 10) == 100.0  # rows.hi wins
        assert guard_budget(estimate, 2.0, 1000) == 2000.0  # floor wins

    def test_guard_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            DispatchBackend(build_hot_db(), guard_factor=0.5)


class TestForcedMisroute:
    def test_guard_aborts_and_reroutes(self, misled_backend):
        query = hot_query()
        # The lie routes the block to the interpreted engine...
        engine, estimate = misled_backend._route(query)
        assert engine is misled_backend.interpreted
        assert estimate.rows.hi < 1.0
        # ...but execution must survive it, on the safe engine.
        result = misled_backend.execute(query)
        assert len(result.rows) == ROWS
        stats = misled_backend.stats()
        assert stats["guard_trips"] == 1
        assert stats["vectorized"] == 1
        assert stats["interpreted"] == 0

    def test_rerouted_result_is_byte_identical(self, misled_backend):
        query = hot_query()
        guarded = misled_backend.execute(query)
        reference = misled_backend.vectorized.execute(query)
        assert guarded.columns == reference.columns
        assert guarded.rows == reference.rows

    def test_trip_is_recorded_in_telemetry(self, misled_backend):
        misled_backend.execute(hot_query())
        [record] = misled_backend.telemetry.records()
        assert record.outcome == OUTCOME_GUARD_TRIP
        assert record.route == "vectorized"
        assert record.actual == ROWS
        assert not record.within_bounds

    def test_accurate_estimates_never_trip(self):
        """Same workload, honest sampler: interpreted runs to completion
        under the guard without tripping."""
        db = build_hot_db()
        backend = DispatchBackend(db, small_work_rows=1024)
        try:
            result = backend.execute(hot_query())
            assert len(result.rows) == ROWS
            stats = backend.stats()
            assert stats["guard_trips"] == 0
            assert stats["interpreted"] == 1
        finally:
            backend.close()


class TestCounterVisibility:
    @pytest.fixture(scope="class")
    def dispatch_squid(self):
        db = adult.generate(adult.AdultSize.small())
        return SquidSystem.build(
            db, adult.metadata(), SquidConfig(backend="dispatch")
        )

    def test_session_stats_expose_guard_trips(self, dispatch_squid):
        with dispatch_squid.session(jobs=1) as session:
            result = session.discover(
                ["Resident 000001", "Resident 000002"]
            )
            # Materialise the abduced query so the router takes at least
            # one recorded decision (discovery alone may not execute).
            dispatch_squid.result_values(result)
            stats = session.stats()
        assert "engine_guard_trips" in stats
        assert "engine_estimated_blocks" in stats
        assert stats["engine_estimated_blocks"] > 0

    def test_serve_stats_expose_guard_trips(self, dispatch_squid):
        from repro.serve import DiscoveryServer

        server = DiscoveryServer(dispatch_squid, jobs=1)
        try:
            asyncio.run(
                server.handle(
                    {"examples": ["Resident 000001", "Resident 000002"]}
                )
            )
            stats = server.stats_snapshot()
            assert "engine_guard_trips" in stats
            assert "engine_telemetry_records" in stats
        finally:
            server.close()

    def test_cli_stats_expose_guard_trips(self, capsys):
        from repro.cli import main

        code = main(
            [
                "discover", "--dataset", "adult",
                "--examples", "Resident 000001;Resident 000002",
                "--backend", "dispatch", "--stats", "--limit", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine_guard_trips" in out
        assert "engine_estimated_blocks" in out

    def test_cli_no_estimator_flag_disables_v2(self, capsys):
        from repro.cli import main

        code = main(
            [
                "discover", "--dataset", "adult",
                "--examples", "Resident 000001;Resident 000002",
                "--backend", "dispatch", "--no-estimator", "--stats",
                "--limit", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine_estimator" in out
