"""Tests for SQL rendering, predicate counting, and the round-trip parser."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.errors import QueryError
from repro.sql import (
    ColumnRef,
    HavingCount,
    IntersectQuery,
    JoinCondition,
    Op,
    Predicate,
    Query,
    TableRef,
    count_join_predicates,
    count_predicates,
    count_selection_predicates,
    format_query,
    format_value,
    parse_query,
)


def col(table, column):
    return ColumnRef(table, column)


def paper_q2() -> Query:
    return Query(
        select=(col("academics", "name"),),
        tables=(TableRef("academics"), TableRef("research")),
        joins=(JoinCondition(col("research", "aid"), col("academics", "id")),),
        predicates=(
            Predicate(col("research", "interest"), Op.EQ, "data management"),
        ),
        distinct=False,
    )


def paper_q5() -> Query:
    """Q5 on the αDB from Example 2.2."""
    return Query(
        select=(col("person", "name"),),
        tables=(
            TableRef("person"),
            TableRef("persontogenre"),
            TableRef("genre"),
        ),
        joins=(
            JoinCondition(col("person", "id"), col("persontogenre", "person_id")),
            JoinCondition(col("persontogenre", "genre_id"), col("genre", "id")),
        ),
        predicates=(
            Predicate(col("genre", "name"), Op.EQ, "Comedy"),
            Predicate(col("persontogenre", "count"), Op.GE, 40),
        ),
        distinct=False,
    )


class TestFormatValue:
    def test_string_quoted_and_escaped(self):
        assert format_value("Comedy") == "'Comedy'"
        assert format_value("O'Brien") == "'O''Brien'"

    def test_ints_and_floats(self):
        assert format_value(40) == "40"
        assert format_value(2.5) == "2.5"
        assert format_value(2.0) == "2"

    def test_bools(self):
        assert format_value(True) == "TRUE"
        assert format_value(False) == "FALSE"


class TestFormatQuery:
    def test_q2_text(self):
        text = format_query(paper_q2())
        assert "SELECT academics.name" in text
        assert "FROM academics, research" in text
        assert "research.aid = academics.id" in text
        assert "research.interest = 'data management'" in text

    def test_q5_text(self):
        text = format_query(paper_q5())
        assert "persontogenre.count >= 40" in text

    def test_between_renders_two_atoms(self):
        query = Query(
            select=(col("person", "name"),),
            tables=(TableRef("person"),),
            predicates=(Predicate(col("person", "age"), Op.BETWEEN, (50, 90)),),
        )
        text = format_query(query)
        assert "person.age >= 50" in text and "person.age <= 90" in text

    def test_group_by_having(self):
        query = Query(
            select=(col("person", "name"),),
            tables=(TableRef("person"), TableRef("castinfo")),
            joins=(JoinCondition(col("castinfo", "person_id"), col("person", "id")),),
            group_by=(col("person", "id"),),
            having=HavingCount(Op.GE, 40),
        )
        text = format_query(query)
        assert "GROUP BY person.id" in text
        assert "HAVING count(*) >= 40" in text

    def test_alias_rendering(self):
        query = Query(
            select=(col("pg1", "count"),),
            tables=(TableRef("persontogenre", "pg1"),),
        )
        assert "FROM persontogenre pg1" in format_query(query)

    def test_intersect_rendering(self):
        query = IntersectQuery((paper_q2(), paper_q2()))
        assert "INTERSECT" in format_query(query)


class TestCounting:
    def test_q2_counts(self):
        assert count_join_predicates(paper_q2()) == 1
        assert count_selection_predicates(paper_q2()) == 1
        assert count_predicates(paper_q2()) == 2

    def test_between_counts_two(self):
        query = Query(
            select=(col("p", "name"),),
            tables=(TableRef("person", "p"),),
            predicates=(Predicate(col("p", "age"), Op.BETWEEN, (1, 2)),),
        )
        assert count_selection_predicates(query) == 2

    def test_having_counts_one(self):
        query = Query(
            select=(col("p", "name"),),
            tables=(TableRef("person", "p"),),
            group_by=(col("p", "id"),),
            having=HavingCount(Op.GE, 3),
        )
        assert count_selection_predicates(query) == 1

    def test_intersect_sums(self):
        query = IntersectQuery((paper_q2(), paper_q2()))
        assert count_predicates(query) == 4


class TestParser:
    def test_parse_simple(self):
        query = parse_query("SELECT person.name FROM person")
        assert isinstance(query, Query)
        assert query.select == (col("person", "name"),)
        assert not query.distinct

    def test_parse_distinct(self):
        query = parse_query("SELECT DISTINCT name FROM adult")
        assert query.distinct
        assert query.select == (col("adult", "name"),)

    def test_parse_unqualified_columns_get_table_alias(self):
        query = parse_query(
            "SELECT DISTINCT name FROM adult WHERE age >= 40 AND age <= 44"
        )
        assert query.predicates == (
            Predicate(col("adult", "age"), Op.BETWEEN, (40, 44)),
        )

    def test_parse_join_vs_predicate(self):
        query = parse_query(
            "SELECT academics.name FROM academics, research "
            "WHERE research.aid = academics.id "
            "AND research.interest = 'data management'"
        )
        assert len(query.joins) == 1
        assert len(query.predicates) == 1

    def test_parse_alias(self):
        query = parse_query(
            "SELECT p.name FROM person p, persontogenre pg "
            "WHERE p.id = pg.person_id AND pg.count >= 40"
        )
        assert query.tables == (TableRef("person", "p"), TableRef("persontogenre", "pg"))

    def test_parse_group_by_having(self):
        query = parse_query(
            "SELECT person.name FROM person, castinfo "
            "WHERE castinfo.person_id = person.id "
            "GROUP BY person.id HAVING count(*) >= 40"
        )
        assert query.group_by == (col("person", "id"),)
        assert query.having == HavingCount(Op.GE, 40)

    def test_parse_in(self):
        query = parse_query(
            "SELECT person.name FROM person WHERE person.gender IN ('Male', 'Female')"
        )
        assert query.predicates[0].op is Op.IN
        assert query.predicates[0].value == frozenset({"Male", "Female"})

    def test_parse_between(self):
        query = parse_query(
            "SELECT person.name FROM person WHERE person.age BETWEEN 50 AND 90"
        )
        assert query.predicates[0].op is Op.BETWEEN
        assert query.predicates[0].value == (50, 90)

    def test_parse_intersect(self):
        query = parse_query(
            "SELECT a.name FROM academics a INTERSECT SELECT b.name FROM academics b"
        )
        assert isinstance(query, IntersectQuery)
        assert len(query.blocks) == 2

    def test_parse_string_escape(self):
        query = parse_query(
            "SELECT person.name FROM person WHERE person.name = 'O''Brien'"
        )
        assert query.predicates[0].value == "O'Brien"

    def test_parse_rejects_garbage(self):
        with pytest.raises(QueryError):
            parse_query("SELEKT foo FROM bar")
        with pytest.raises(QueryError):
            parse_query("SELECT a.b FROM t WHERE ???")

    def test_parse_rejects_trailing(self):
        with pytest.raises(QueryError):
            parse_query("SELECT person.name FROM person extra garbage tokens =")


class TestRoundTrip:
    CASES = [
        "SELECT person.name FROM person",
        "SELECT DISTINCT adult.name FROM adult WHERE adult.age >= 40",
        (
            "SELECT academics.name FROM academics, research "
            "WHERE research.aid = academics.id AND research.interest = 'x'"
        ),
        (
            "SELECT person.name FROM person, persontogenre pg1 "
            "WHERE person.id = pg1.person_id AND pg1.count >= 40"
        ),
        (
            "SELECT person.name FROM person, castinfo "
            "WHERE castinfo.person_id = person.id "
            "GROUP BY person.id HAVING count(*) >= 3"
        ),
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        query = parse_query(text)
        assert parse_query(format_query(query)) == query

    def test_round_trip_executes_identically(self, academics_db):
        from repro.sql import execute

        query = paper_q2()
        reparsed = parse_query(format_query(query))
        original = execute(academics_db, query)
        again = execute(academics_db, reparsed)
        assert original.rows == again.rows

    @given(
        low=st.integers(-50, 50),
        span=st.integers(0, 50),
        name=st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll"), max_codepoint=127),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_predicates(self, low, span, name):
        query = Query(
            select=(col("t", "a"),),
            tables=(TableRef("t"),),
            predicates=(
                Predicate(col("t", "a"), Op.BETWEEN, (low, low + span)),
                Predicate(col("t", "b"), Op.EQ, name),
            ),
        )
        assert parse_query(format_query(query)) == query
